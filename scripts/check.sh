#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "OK"
