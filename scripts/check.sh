#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; operates on the workspace root.
#   --bench   additionally run the BENCH regression gate against the
#             committed BENCH_baseline.json (what CI's bench-gate job does)
set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

if [[ "$run_bench" == 1 ]]; then
  echo "== BENCH regression gate (fresh run vs. committed baseline) =="
  tmp=$(mktemp -t BENCH_fresh.XXXXXX.json)
  ./target/release/music-sim profile --seed 7 --mode all \
    --out "$tmp" --compare BENCH_baseline.json --tolerance 10
  rm -f "$tmp"
fi

echo "OK"
