#!/usr/bin/env bash
# Brings up a 3-node `music-node` cluster on localhost and drives critical
# sections through it with `music-load` over real TCP sockets.
#
# Environment overrides:
#   SECTIONS (default 120)  total critical sections to complete (>= 100
#                           for the CI acceptance gate)
#   CLIENTS  (default 3)    concurrent load clients
#   KEYS     (default 4)    distinct counter keys under contention
#   BASE_PORT (default 7401) first node port (nodes use three consecutive)
#   LOG_DIR  (default mktemp) where node/load logs land
#   SKIP_BUILD=1            reuse existing target/release binaries
#   ONLINE_SAMPLE (default 1) online-checker key sampling for the first
#                           pass (0 turns the streaming checker off)
#   KILL9=0                 skip the second pass (kill -9 one node while
#                           sections are in flight; the survivors' 2/3
#                           quorum must finish the run and verify clean)
#   FLASH=0                 skip the third pass (flash crowd: every client
#                           converges on one hot key with the contention-
#                           adaptive controller on; the run must finish
#                           clean and the counters must verify)
set -euo pipefail

SECTIONS="${SECTIONS:-120}"
CLIENTS="${CLIENTS:-3}"
KEYS="${KEYS:-4}"
BASE_PORT="${BASE_PORT:-7401}"
LOG_DIR="${LOG_DIR:-$(mktemp -d /tmp/music-cluster.XXXXXX)}"
ONLINE_SAMPLE="${ONLINE_SAMPLE:-1}"
KILL9="${KILL9:-1}"
FLASH="${FLASH:-1}"

cd "$(dirname "$0")/.."
mkdir -p "$LOG_DIR"

if [[ "${SKIP_BUILD:-0}" != "1" ]]; then
  echo "local_cluster: building music-node / music-load (release)..."
  cargo build --release -p music --bins
fi
BIN=target/release

PEERS="1=127.0.0.1:${BASE_PORT},2=127.0.0.1:$((BASE_PORT + 1)),3=127.0.0.1:$((BASE_PORT + 2))"

pids=()
cleanup() {
  for p in "${pids[@]}"; do
    kill "$p" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

for i in 1 2 3; do
  port=$((BASE_PORT + i - 1))
  "$BIN/music-node" --id "$i" --listen "127.0.0.1:${port}" --peers "$PEERS" \
    >"$LOG_DIR/node$i.log" 2>&1 &
  pids+=("$!")
done

# Wait (up to ~10s per node) for each listener to accept connections.
for i in 1 2 3; do
  port=$((BASE_PORT + i - 1))
  up=0
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/${port}") 2>/dev/null; then
      exec 3>&- 3<&- || true
      up=1
      break
    fi
    sleep 0.1
  done
  if [[ "$up" != "1" ]]; then
    echo "local_cluster: node $i never listened on port $port" >&2
    cat "$LOG_DIR/node$i.log" >&2 || true
    exit 1
  fi
done

echo "local_cluster: 3 nodes up on ports ${BASE_PORT}-$((BASE_PORT + 2)) (logs in $LOG_DIR)"
echo "local_cluster: driving $SECTIONS sections ($CLIENTS clients, $KEYS keys)..."

if "$BIN/music-load" --peers "$PEERS" --sections "$SECTIONS" \
    --clients "$CLIENTS" --keys "$KEYS" \
    --online-sample "$ONLINE_SAMPLE" 2>&1 | tee "$LOG_DIR/load.log"; then
  # Extract the machine-readable throughput line into the BENCH
  # trajectory artifact (sections/sec over real TCP sockets).
  grep '"kind":"benchLoad"' "$LOG_DIR/load.log" >"$LOG_DIR/BENCH_load.json" || true
  echo "local_cluster: wrote $LOG_DIR/BENCH_load.json"
  echo "local_cluster: OK"
else
  status=$?
  echo "local_cluster: FAILED (exit $status); node logs:" >&2
  tail -n 40 "$LOG_DIR"/node*.log >&2 || true
  exit "$status"
fi

if [[ "$KILL9" != "1" ]]; then
  exit 0
fi

# ---------------------------------------------------------------------------
# Pass 2: kill -9 one storage node while sections are in flight. With RF=3
# the surviving 2/3 quorum keeps every store operation live; quorum peeks
# keep lock-grant polling off the dead primary; the bounded retry budget
# absorbs the operations that were talking to the victim when it died. The
# load must still complete every section, verify the counters, and keep
# the streaming checker clean.
# ---------------------------------------------------------------------------
# Several times the first pass's work so the victim dies with plenty of
# sections still to go, even on a fast machine.
KILL9_SECTIONS="${KILL9_SECTIONS:-$((SECTIONS * 4))}"
echo "local_cluster: kill-9 pass: driving $KILL9_SECTIONS sections, then killing node 3..."

"$BIN/music-load" --peers "$PEERS" --sections "$KILL9_SECTIONS" \
  --clients "$CLIENTS" --keys "$KEYS" \
  --key-prefix kill9 --online-sample 1 --retries 40 --peek quorum \
  >"$LOG_DIR/load-kill9.log" 2>&1 &
load_pid=$!

# Let the load reach steady state, then hard-kill the last node (nodes 1
# and 2 stay up; node 1 also serves the key scans). No SIGTERM grace — the
# point is an abrupt process death mid-section.
sleep 0.5
victim="${pids[2]}"
kill -9 "$victim" 2>/dev/null || true
echo "local_cluster: killed node 3 (pid $victim)"

if wait "$load_pid"; then
  cat "$LOG_DIR/load-kill9.log"
  echo "local_cluster: kill-9 pass OK"
else
  status=$?
  echo "local_cluster: kill-9 pass FAILED (exit $status); load log:" >&2
  cat "$LOG_DIR/load-kill9.log" >&2 || true
  echo "local_cluster: surviving node logs:" >&2
  tail -n 40 "$LOG_DIR"/node[12].log >&2 || true
  exit "$status"
fi

if [[ "$FLASH" != "1" ]]; then
  exit 0
fi

# ---------------------------------------------------------------------------
# Pass 3: flash crowd over real sockets. Every client converges on one hot
# key for the middle half of its quota (the edges stay Zipfian θ=1.2), with
# the contention-adaptive controller on: enqueue combining collapses the
# same-site waiter storm into single LWT rounds and the admission guard
# fast-rejects overflow instead of letting the enqueue LWTs livelock. The
# run must complete every section against the surviving 2/3 quorum from
# pass 2, verify the counters key by key, and keep the streaming checker
# clean.
# ---------------------------------------------------------------------------
FLASH_SECTIONS="${FLASH_SECTIONS:-$SECTIONS}"
FLASH_CLIENTS="${FLASH_CLIENTS:-$((CLIENTS * 2))}"
echo "local_cluster: flash-crowd pass: $FLASH_SECTIONS sections, $FLASH_CLIENTS clients on one hot key..."

if "$BIN/music-load" --peers "$PEERS" --sections "$FLASH_SECTIONS" \
    --clients "$FLASH_CLIENTS" --keys "$KEYS" \
    --key-prefix flash --zipf-theta 1.2 --flash-crowd \
    --online-sample 1 --retries 40 --peek quorum 2>&1 | tee "$LOG_DIR/load-flash.log"; then
  echo "local_cluster: flash-crowd pass OK"
else
  status=$?
  echo "local_cluster: flash-crowd pass FAILED (exit $status); load log:" >&2
  cat "$LOG_DIR/load-flash.log" >&2 || true
  exit "$status"
fi
