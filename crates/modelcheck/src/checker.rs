//! A generic bounded explicit-state model checker: BFS over the state
//! graph, invariant checks on every reached state, counterexample trace
//! reconstruction.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A state-transition system with checkable invariants.
pub trait Model {
    /// A system state. Keep it small: the checker stores every distinct
    /// state reached.
    type State: Clone + Eq + Hash + std::fmt::Debug;

    /// Initial states.
    fn initial(&self) -> Vec<Self::State>;

    /// All enabled transitions from `state`, as `(event label, successor)`.
    fn successors(&self, state: &Self::State) -> Vec<(String, Self::State)>;

    /// Checks every invariant in `state`; returns the violated invariant's
    /// description if any.
    fn check(&self, state: &Self::State) -> Result<(), String>;
}

/// Result of a bounded exploration.
#[derive(Clone, Debug)]
pub enum CheckOutcome<S> {
    /// Every reachable state (within bounds) satisfies the invariants.
    Ok {
        /// Distinct states explored.
        states: usize,
        /// Maximum BFS depth reached.
        depth: usize,
        /// Whether the bound cut exploration short.
        truncated: bool,
    },
    /// A violation, with the event trace from an initial state.
    Violation {
        /// The invariant that failed.
        message: String,
        /// Event labels leading to the violating state.
        trace: Vec<String>,
        /// The violating state.
        state: S,
        /// Distinct states explored before the violation.
        states: usize,
    },
}

impl<S> CheckOutcome<S> {
    /// Whether no violation was found.
    pub fn is_ok(&self) -> bool {
        matches!(self, CheckOutcome::Ok { .. })
    }

    /// Distinct states explored.
    pub fn states_explored(&self) -> usize {
        match self {
            CheckOutcome::Ok { states, .. } | CheckOutcome::Violation { states, .. } => *states,
        }
    }
}

/// The breadth-first checker.
#[derive(Clone, Debug)]
pub struct Checker {
    /// Stop after this many distinct states (bounded scopes, as in Alloy).
    pub max_states: usize,
    /// Stop expanding beyond this depth.
    pub max_depth: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            max_states: 3_000_000,
            max_depth: 64,
        }
    }
}

impl Checker {
    /// Explores `model` breadth-first and checks invariants on every state.
    pub fn run<M: Model>(&self, model: &M) -> CheckOutcome<M::State> {
        // state -> (parent index, event label); roots have usize::MAX.
        let mut seen: HashMap<M::State, usize> = HashMap::new();
        let mut parents: Vec<(usize, String)> = Vec::new();
        let mut order: Vec<M::State> = Vec::new();
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new(); // (idx, depth)
        let mut max_depth_seen = 0;
        let mut truncated = false;

        let push = |state: M::State,
                    parent: usize,
                    label: String,
                    seen: &mut HashMap<M::State, usize>,
                    parents: &mut Vec<(usize, String)>,
                    order: &mut Vec<M::State>|
         -> Option<usize> {
            if seen.contains_key(&state) {
                return None;
            }
            let idx = order.len();
            seen.insert(state.clone(), idx);
            parents.push((parent, label));
            order.push(state);
            Some(idx)
        };

        for s in model.initial() {
            if let Some(idx) = push(
                s,
                usize::MAX,
                "init".to_string(),
                &mut seen,
                &mut parents,
                &mut order,
            ) {
                queue.push_back((idx, 0));
            }
        }

        let trace_of = |mut idx: usize, parents: &[(usize, String)]| -> Vec<String> {
            let mut trace = Vec::new();
            while idx != usize::MAX {
                let (p, label) = &parents[idx];
                trace.push(label.clone());
                idx = *p;
            }
            trace.reverse();
            trace
        };

        let mut cursor = 0;
        while let Some((idx, depth)) = queue.pop_front() {
            cursor += 1;
            let _ = cursor;
            max_depth_seen = max_depth_seen.max(depth);
            let state = order[idx].clone();
            if let Err(message) = model.check(&state) {
                return CheckOutcome::Violation {
                    message,
                    trace: trace_of(idx, &parents),
                    state,
                    states: order.len(),
                };
            }
            if depth >= self.max_depth {
                truncated = true;
                continue;
            }
            for (label, succ) in model.successors(&state) {
                if order.len() >= self.max_states {
                    truncated = true;
                    break;
                }
                if let Some(new_idx) = push(succ, idx, label, &mut seen, &mut parents, &mut order) {
                    queue.push_back((new_idx, depth + 1));
                }
            }
        }

        CheckOutcome::Ok {
            states: order.len(),
            depth: max_depth_seen,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that must stay below a limit; incrementing beyond it is a
    /// violation reachable in exactly `limit` steps.
    struct Counter {
        limit: u32,
        violation_at: Option<u32>,
    }

    impl Model for Counter {
        type State = u32;

        fn initial(&self) -> Vec<u32> {
            vec![0]
        }

        fn successors(&self, s: &u32) -> Vec<(String, u32)> {
            if *s >= self.limit {
                vec![]
            } else {
                vec![(format!("inc->{}", s + 1), s + 1)]
            }
        }

        fn check(&self, s: &u32) -> Result<(), String> {
            match self.violation_at {
                Some(v) if *s == v => Err(format!("counter hit {v}")),
                _ => Ok(()),
            }
        }
    }

    #[test]
    fn clean_model_explores_fully() {
        let out = Checker::default().run(&Counter {
            limit: 10,
            violation_at: None,
        });
        match out {
            CheckOutcome::Ok {
                states,
                depth,
                truncated,
            } => {
                assert_eq!(states, 11);
                assert_eq!(depth, 10);
                assert!(!truncated);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn violation_reports_shortest_trace() {
        let out = Checker::default().run(&Counter {
            limit: 10,
            violation_at: Some(3),
        });
        match out {
            CheckOutcome::Violation {
                message,
                trace,
                state,
                ..
            } => {
                assert_eq!(state, 3);
                assert!(message.contains("3"));
                assert_eq!(trace, vec!["init", "inc->1", "inc->2", "inc->3"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn depth_bound_truncates() {
        let out = Checker {
            max_states: 1_000,
            max_depth: 4,
        }
        .run(&Counter {
            limit: 100,
            violation_at: Some(50), // beyond the bound: not found
        });
        match out {
            CheckOutcome::Ok { truncated, .. } => assert!(truncated),
            other => panic!("{other:?}"),
        }
    }

    /// Branching model to check deduplication: many paths, few states.
    struct Diamond;

    impl Model for Diamond {
        type State = (u8, u8);

        fn initial(&self) -> Vec<(u8, u8)> {
            vec![(0, 0)]
        }

        fn successors(&self, &(a, b): &(u8, u8)) -> Vec<(String, (u8, u8))> {
            let mut out = Vec::new();
            if a < 4 {
                out.push(("a".to_string(), (a + 1, b)));
            }
            if b < 4 {
                out.push(("b".to_string(), (a, b + 1)));
            }
            out
        }

        fn check(&self, _: &(u8, u8)) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn states_are_deduplicated_across_paths() {
        let out = Checker::default().run(&Diamond);
        match out {
            CheckOutcome::Ok { states, .. } => assert_eq!(states, 25), // 5x5 grid
            other => panic!("{other:?}"),
        }
    }
}
