//! # music-modelcheck
//!
//! An executable reproduction of the paper's formal verification (§V).
//! The paper models MUSIC as a state-transition system in Alloy and checks
//! its invariants by bounded exhaustive analysis; this crate does the same
//! in Rust: a small explicit-state [`checker`] (breadth-first exploration
//! with counterexample traces) runs over an abstract [`model`] of MUSIC
//! that follows §V's modeling decisions:
//!
//! * the **lock store** is sequentially consistent, so its events are
//!   larger-grained (atomic enqueue/dequeue);
//! * the **data store** (and the `synchFlag`) are modeled only through the
//!   properties MUSIC relies on (§V-C): a history of attempted write pairs
//!   partitioned into *pending* and *succeeded*, where the *true pair* is
//!   the one with the latest vector timestamp and the store is *defined*
//!   iff the true pair succeeded;
//! * clients can crash at any step; pending writes then stay pending
//!   forever; a replica daemon can force-release any queue head at any
//!   time (imperfect failure detection).
//!
//! Checked invariants (§IV, §V):
//!
//! * **Critical-Section Invariant** — if the lockholding client is in a
//!   `Critical` or `Getting` state, the data store is defined as the true
//!   value;
//! * **SynchFlag Invariant** — a preempted-but-active client whose lockRef
//!   is ≥ the true timestamp's lockRef implies the `synchFlag` is true;
//! * **Latest-State Property** — a completed `criticalGet` by the
//!   lockholder carries the true value;
//! * queue sanity (unique, increasing lock references bounded by the
//!   guard).
//!
//! The tests also check three *mutants* the way one probes an Alloy model:
//! setting the `forcedRelease` timestamp bump δ to zero, skipping the
//! synchronization in `acquireLock`, and dequeuing a forced reference
//! before its `synchFlag` write is acknowledged must all produce
//! counterexamples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod model;

pub use checker::{CheckOutcome, Checker, Model};
pub use model::{MusicModel, Scope};
