//! # music-modelcheck
//!
//! An executable reproduction of the paper's formal verification (§V).
//! The paper models MUSIC as a state-transition system in Alloy and checks
//! its invariants by bounded exhaustive analysis; this crate does the same
//! in Rust: a small explicit-state [`checker`] (breadth-first exploration
//! with counterexample traces) runs over an abstract [`model`] of MUSIC
//! that follows §V's modeling decisions:
//!
//! * the **lock store** is sequentially consistent, so its events are
//!   larger-grained (atomic enqueue/dequeue);
//! * the **data store** (and the `synchFlag`) are modeled only through the
//!   properties MUSIC relies on (§V-C): a history of attempted write pairs
//!   partitioned into *pending* and *succeeded*, where the *true pair* is
//!   the one with the latest vector timestamp and the store is *defined*
//!   iff the true pair succeeded;
//! * clients can crash at any step; pending writes then stay pending
//!   forever; a replica daemon can force-release any queue head at any
//!   time (imperfect failure detection).
//!
//! Checked invariants (§IV, §V):
//!
//! * **Critical-Section Invariant** — if the lockholding client is in a
//!   `Critical` or `Getting` state, the data store is defined as the true
//!   value;
//! * **SynchFlag Invariant** — a preempted-but-active client whose lockRef
//!   is ≥ the true timestamp's lockRef implies the `synchFlag` is true;
//! * **Latest-State Property** — a completed `criticalGet` by the
//!   lockholder carries the true value;
//! * queue sanity (unique, increasing lock references bounded by the
//!   guard);
//! * **lease-floor invariant** (adaptive scopes) — the auto-tuned lease
//!   window never drops below the safety floor that keeps the ε
//!   claim/break guards disjoint.
//!
//! The tests also check a family of *mutants* the way one probes an Alloy
//! model: δ = 0 forced releases, skipped synchronization, dequeue before
//! flag ack, pipelined flush-barrier skips, lease reuse-after-break and
//! one-step revocations, >ε clock-drift claims/revokes, reverse-order
//! enqueue combining, and a window tuner that forgets the safety floor —
//! every one must produce a counterexample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod model;

pub use checker::{CheckOutcome, Checker, Model};
pub use model::{MusicModel, Scope};
