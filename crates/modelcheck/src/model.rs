//! The abstract MUSIC model (§V): clients, the sequentially consistent
//! lock queue, and pending/succeeded write-pair views of the data store
//! and `synchFlag`.

use crate::checker::Model;

/// A vector timestamp `(lockRef, time)`; lockRef dominates.
pub type Ts = (u8, u8);

/// One attempted data-store write (§V-C).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Pair {
    /// Vector timestamp of the write.
    pub ts: Ts,
    /// Written value.
    pub value: u8,
    /// Writing client (255 = initialization).
    pub writer: u8,
    /// Pending (false) or succeeded (true).
    pub acked: bool,
}

/// One attempted `synchFlag` write.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct FlagPair {
    /// Vector timestamp of the write.
    pub ts: Ts,
    /// Flag value written.
    pub value: bool,
    /// Pending or succeeded.
    pub acked: bool,
}

/// Client protocol phase.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Phase {
    /// Not yet started.
    Idle,
    /// Holds a lockRef, waiting to become queue head.
    HasRef,
    /// Acquire saw `synchFlag = true`; choosing the quorum-read result.
    SyncRead,
    /// Sync rewrite outstanding.
    SyncWriteWait,
    /// Flag reset outstanding.
    FlagResetWait,
    /// Inside the critical section.
    Critical,
    /// `criticalPut` outstanding.
    PutWait,
    /// `criticalGet` reply in flight, carrying the read value.
    GetWait(u8),
    /// Released with a lease retained: `lock_ref` is the pre-minted leased
    /// reference (the queue head), claimable without the lock protocol.
    Leased,
    /// Wants to enqueue but found an unclaimed lease on this ref; the
    /// break's `synchFlag := true` write is outstanding.
    BreakFlagWait(u8),
    /// Break flag acked; the break LWT (dequeue lease + enqueue own ref)
    /// is pending.
    BreakReady(u8),
    /// Released and finished.
    Done,
    /// Crashed; pending writes stay pending forever.
    Crashed,
}

/// Per-client state.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Client {
    /// Protocol phase.
    pub phase: Phase,
    /// Held lockRef (0 = none).
    pub lock_ref: u8,
    /// Puts started so far.
    pub puts: u8,
    /// Time component of the next put.
    pub next_t: u8,
    /// Issued-but-unacked pipelined puts (always 0 in the sync model).
    pub pending: u8,
}

/// Forced-release daemon progress.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Daemon {
    /// Not forcing.
    Idle,
    /// `synchFlag := true` write outstanding for this ref.
    FlagWait(u8),
    /// Flag acked; dequeue pending.
    Dequeue(u8),
}

/// A full system state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct State {
    /// Lock-reference mint counter.
    pub guard: u8,
    /// The per-key lock queue (ascending lockRefs).
    pub queue: Vec<u8>,
    /// Clients.
    pub clients: Vec<Client>,
    /// Attempted data writes.
    pub data: Vec<Pair>,
    /// Attempted flag writes.
    pub flag: Vec<FlagPair>,
    /// Forced-release daemon.
    pub daemon: Daemon,
    /// Forced releases used (bound).
    pub forced_used: u8,
    /// Fresh-value counter for puts.
    pub next_value: u8,
    /// The standing lease, if any: `(owner client, leased lockRef)`. Set
    /// by `releaseLease`, cleared whenever the leased reference leaves the
    /// queue (break, revocation, relinquish, or the owner's own release).
    pub lease: Option<(u8, u8)>,
    /// Leases minted so far (bound — each mints a fresh lockRef).
    pub leases_used: u8,
    /// Whether the standing lease's `lease_until` has passed in *true*
    /// time (drift scopes only). Set by the `time:leaseExpire` event while
    /// the lease is unclaimed; cleared whenever the lease itself clears.
    /// With per-node skew bounded by ε, the claim guard (`local + ε <
    /// until`) admits claims only strictly before this event and the break
    /// guard (`local − ε > until`) admits revocations only strictly after
    /// it — the model encodes exactly that disjointness.
    pub lease_expired: bool,
    /// The standing lease's *tuned window* (adaptive scopes only; 0 when
    /// no lease stands or the tuner is off). The contention controller may
    /// shrink or stretch it, but never below [`MusicModel::WINDOW_FLOOR`]:
    /// the floor is what keeps the ε claim/break guards disjoint, so
    /// "window ≥ floor whenever a lease stands" is itself an invariant.
    pub lease_window: u8,
}

/// Exploration bounds, in the spirit of Alloy scopes.
#[derive(Copy, Clone, Debug)]
pub struct Scope {
    /// Number of clients.
    pub clients: usize,
    /// Maximum `criticalPut`s per client.
    pub max_puts: u8,
    /// Maximum client crashes overall.
    pub max_crashes: u8,
    /// Maximum forced releases overall.
    pub max_forced: u8,
    /// Allow preempted clients to keep issuing puts (stale local lock
    /// store view — the false-failure-detection scenario of §IV-B).
    pub stale_puts: bool,
    /// In-flight window for pipelined `criticalPut`s (0 = synchronous
    /// puts, the unextended model). With a window, a client may issue up
    /// to this many puts without awaiting their acks; `criticalGet` and
    /// `release` are flush barriers (enabled only at zero pending).
    pub pipeline_window: u8,
    /// Enable the lease extension: a release with nothing queued behind it
    /// may retain a lease (pre-minted next lockRef at the queue head),
    /// claimable by the owner without the lock protocol and breakable by
    /// competitors through a flag-first break.
    pub lease: bool,
    /// Maximum leases minted overall (each mints a fresh lockRef, so this
    /// bounds the state space).
    pub max_leases: u8,
    /// Enable bounded clock drift (the ε-guard model): a standing
    /// *unclaimed* lease may expire in true time (`time:leaseExpire`);
    /// once it has, the ε claim guard turns the owner's fast re-entry
    /// away, and the watchdog may garbage-collect the reference in a
    /// single step (`daemon:driftRevoke`) — safe precisely because the
    /// two guards are disjoint around the expiry instant.
    pub drift: bool,
    /// Enable enqueue combining: two idle clients may enqueue together in
    /// one batch LWT, minting consecutive lockRefs in arrival order. The
    /// combiner is an optimization, so the clean scope must satisfy every
    /// invariant exactly as the singles-only scope does.
    pub combine: bool,
    /// Enable the lease-window auto-tuner: while a lease stands, the
    /// controller may halve or double its window, clamped to
    /// [`MusicModel::WINDOW_FLOOR`] / the initial window.
    pub adaptive_window: bool,
}

impl Default for Scope {
    fn default() -> Self {
        Scope {
            clients: 2,
            max_puts: 1,
            max_crashes: 1,
            max_forced: 2,
            stale_puts: true,
            pipeline_window: 0,
            lease: false,
            max_leases: 0,
            drift: false,
            combine: false,
            adaptive_window: false,
        }
    }
}

/// The MUSIC model, with optional *mutations* used to validate that the
/// checker actually catches bugs (as one would probe an Alloy model).
#[derive(Clone, Debug)]
pub struct MusicModel {
    /// Bounds.
    pub scope: Scope,
    /// Mutant: `forcedRelease` stamps the flag with δ = 0, racing the
    /// holder's own flag reset at the same timestamp (§IV-B says δ must be
    /// > 0).
    pub delta_zero: bool,
    /// Mutant: `acquireLock` skips the synchronization even when the
    /// `synchFlag` is set.
    pub skip_sync: bool,
    /// Mutant: `forcedRelease` dequeues the reference *before* its
    /// `synchFlag` write is acknowledged. §IV-B argues the quorum write
    /// must complete first — otherwise the next holder can read a stale
    /// `false` flag and skip the synchronization.
    pub dequeue_before_flag_ack: bool,
    /// Mutant: a pipelined `criticalGet` skips the flush barrier and may
    /// read while own puts are still in flight — must break Latest-State.
    pub get_without_flush: bool,
    /// Mutant: a pipelined `release` skips the flush barrier, handing the
    /// lock off with puts still in flight — must break the
    /// critical-section invariant for the next holder.
    pub release_without_flush: bool,
    /// Mutant: lease breaks skip the flag-first protocol (the break is a
    /// bare dequeue-and-enqueue LWT) *and* the owner claims without
    /// revalidating against the queue — so a broken lease can still be
    /// reused. Must break the synchFlag invariant: the stale claimant's
    /// writes carry a lockRef at or above the true timestamp with no flag
    /// raised (§IV-B's undefined-store hazard).
    pub reuse_after_break: bool,
    /// Mutant: the daemon revokes a leased queue head in a single step,
    /// without writing the `synchFlag` first — i.e. *not* "exactly like a
    /// preempted holder". An invisibly claimed lease (the claim is a
    /// consistency-ONE write the daemon's view may lack) then loses its
    /// flag cover mid-put.
    pub stale_lease: bool,
    /// Mutant: a holder whose clock runs slow by more than ε claims its
    /// lease even after true-time expiry — the claim guard's `local + ε <
    /// until` check passes on the skewed clock although the watchdog is
    /// already entitled to collect the reference. The claim races the
    /// one-step GC and the resurrected holder writes with no flag cover.
    pub drift_slow_claim: bool,
    /// Mutant: a watchdog whose clock runs fast by more than ε collects a
    /// lease *before* true-time expiry — the break guard's `local − ε >
    /// until` check passes on the skewed clock although the owner may
    /// still legitimately claim (or already has, invisibly). The one-step
    /// GC then revokes a live holder with no resynchronizing flag write.
    pub drift_fast_revoke: bool,
    /// Mutant: the enqueue combiner writes the batch in reverse arrival
    /// order — the batch LWT's refs no longer ascend, breaking the queue's
    /// strictly-increasing sanity (and with it FIFO-with-preemption).
    pub combine_unordered: bool,
    /// Mutant: the window tuner shrinks without clamping to the safety
    /// floor. A window below the floor collapses the ε guard margin, so
    /// the lease-floor invariant must flag it.
    pub window_below_floor: bool,
}

impl Default for MusicModel {
    fn default() -> Self {
        MusicModel::new(Scope::default())
    }
}

impl MusicModel {
    /// The smallest lease window the tuner may ever set: below this the
    /// ε claim/break guards are no longer disjoint around expiry.
    pub const WINDOW_FLOOR: u8 = 1;
    /// The window a fresh lease starts with in adaptive scopes.
    pub const WINDOW_INIT: u8 = 3;

    /// Model with the given scope, no mutations.
    pub fn new(scope: Scope) -> Self {
        MusicModel {
            scope,
            delta_zero: false,
            skip_sync: false,
            dequeue_before_flag_ack: false,
            get_without_flush: false,
            release_without_flush: false,
            reuse_after_break: false,
            stale_lease: false,
            drift_slow_claim: false,
            drift_fast_revoke: false,
            combine_unordered: false,
            window_below_floor: false,
        }
    }

    /// The true data pair: latest timestamp over *all* attempted writes.
    fn true_pair(s: &State) -> Pair {
        *s.data
            .iter()
            .max_by_key(|p| p.ts)
            .expect("data store is initialized")
    }

    /// Whether the data store is defined (§V-C): the true pair succeeded.
    fn data_defined(s: &State) -> bool {
        Self::true_pair(s).acked
    }

    /// Values a data quorum read can return: the latest succeeded value,
    /// plus (when the store is undefined) any pending value at or above
    /// that timestamp.
    fn data_read_candidates(s: &State) -> Vec<u8> {
        let amax = s
            .data
            .iter()
            .filter(|p| p.acked)
            .max_by_key(|p| p.ts)
            .expect("initial write is acked");
        let mut out = vec![amax.value];
        for p in &s.data {
            if !p.acked && p.ts >= amax.ts && !out.contains(&p.value) {
                out.push(p.value);
            }
        }
        out
    }

    /// Flag values a quorum read can return (same structure as data).
    fn flag_read_candidates(s: &State) -> Vec<bool> {
        let amax_ts = s
            .flag
            .iter()
            .filter(|p| p.acked)
            .map(|p| p.ts)
            .max()
            .expect("initial flag is acked");
        let mut out: Vec<bool> = s
            .flag
            .iter()
            .filter(|p| p.acked && p.ts == amax_ts)
            .map(|p| p.value)
            .collect();
        for p in &s.flag {
            if !p.acked && p.ts >= amax_ts && !out.contains(&p.value) {
                out.push(p.value);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All values the flag's *true pair(s)* carry (ties possible only in
    /// the δ = 0 mutant).
    fn flag_true_values(s: &State) -> Vec<bool> {
        let max_ts = s.flag.iter().map(|p| p.ts).max().expect("initialized");
        let mut out: Vec<bool> = s
            .flag
            .iter()
            .filter(|p| p.ts == max_ts)
            .map(|p| p.value)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn head(s: &State) -> Option<u8> {
        s.queue.first().copied()
    }

    fn crashes_used(s: &State) -> u8 {
        s.clients
            .iter()
            .filter(|c| c.phase == Phase::Crashed)
            .count() as u8
    }

    fn push_flag(s: &mut State, pair: FlagPair) {
        if !s.flag.contains(&pair) {
            s.flag.push(pair);
        }
    }

    /// Removes `r` from the queue, clearing the standing lease if `r` is
    /// the leased reference — every dequeue site must keep the lease view
    /// consistent with the queue.
    fn remove_ref(s: &mut State, r: u8) {
        s.queue.retain(|q| *q != r);
        if s.lease.is_some_and(|(_, lr)| lr == r) {
            s.lease = None;
            s.lease_expired = false;
            s.lease_window = 0;
        }
    }
}

impl Model for MusicModel {
    type State = State;

    fn initial(&self) -> Vec<State> {
        vec![State {
            guard: 0,
            queue: Vec::new(),
            clients: vec![
                Client {
                    phase: Phase::Idle,
                    lock_ref: 0,
                    puts: 0,
                    next_t: 1,
                    pending: 0,
                };
                self.scope.clients
            ],
            data: vec![Pair {
                ts: (0, 0),
                value: 0,
                writer: 255,
                acked: true,
            }],
            flag: vec![FlagPair {
                ts: (0, 0),
                value: false,
                acked: true,
            }],
            daemon: Daemon::Idle,
            forced_used: 0,
            next_value: 1,
            lease: None,
            leases_used: 0,
            lease_expired: false,
            lease_window: 0,
        }]
    }

    #[allow(clippy::too_many_lines)]
    fn successors(&self, s: &State) -> Vec<(String, State)> {
        let mut out: Vec<(String, State)> = Vec::new();
        let head = Self::head(s);

        for (ci, c) in s.clients.iter().enumerate() {
            let is_head = head == Some(c.lock_ref) && c.lock_ref != 0;
            match c.phase {
                Phase::Idle => {
                    // Plain enqueue, behind whatever is queued (including a
                    // visibly claimed lease) — always safe.
                    let mut n = s.clone();
                    n.guard += 1;
                    n.queue.push(n.guard);
                    n.clients[ci].lock_ref = n.guard;
                    n.clients[ci].phase = Phase::HasRef;
                    out.push((format!("c{ci}:createLockRef({})", n.guard), n));
                    // Enqueue combining: a co-located idle peer joins this
                    // client's round and the leader writes both refs in one
                    // batch LWT, consecutive and in arrival order. (With a
                    // standing lease the break path governs instead.)
                    if self.scope.combine && s.lease.is_none() {
                        for cj in (ci + 1)..s.clients.len() {
                            if s.clients[cj].phase != Phase::Idle {
                                continue;
                            }
                            let mut n = s.clone();
                            let first = n.guard + 1;
                            let second = n.guard + 2;
                            n.guard += 2;
                            if self.combine_unordered {
                                // Mutant: the batch lands in reverse
                                // arrival order.
                                n.queue.push(second);
                                n.queue.push(first);
                            } else {
                                n.queue.push(first);
                                n.queue.push(second);
                            }
                            n.clients[ci].lock_ref = first;
                            n.clients[ci].phase = Phase::HasRef;
                            n.clients[cj].lock_ref = second;
                            n.clients[cj].phase = Phase::HasRef;
                            out.push((format!("c{ci}+c{cj}:enqueueBatch({first},{second})"), n));
                        }
                    }
                    // A standing lease is broken rather than queued behind.
                    // The break is allowed even when the owner has already
                    // claimed: the claim is a consistency-ONE write the
                    // break LWT's snapshot may not have seen yet.
                    if let Some((_, r)) = s.lease {
                        if self.reuse_after_break {
                            // Mutant: the break is a bare dequeue+enqueue
                            // with no flag cover.
                            let mut n = s.clone();
                            Self::remove_ref(&mut n, r);
                            n.guard += 1;
                            n.queue.push(n.guard);
                            n.clients[ci].lock_ref = n.guard;
                            n.clients[ci].phase = Phase::HasRef;
                            out.push((format!("c{ci}:leaseBreakUnflagged({r})"), n));
                        } else {
                            let mut n = s.clone();
                            let delta = if self.delta_zero { 0 } else { 1 };
                            Self::push_flag(
                                &mut n,
                                FlagPair {
                                    ts: (r, delta),
                                    value: true,
                                    acked: false,
                                },
                            );
                            n.clients[ci].phase = Phase::BreakFlagWait(r);
                            out.push((format!("c{ci}:breakFlag({r})"), n));
                        }
                    }
                }
                Phase::HasRef if is_head => {
                    for flag_val in Self::flag_read_candidates(s) {
                        let mut n = s.clone();
                        if flag_val && !self.skip_sync {
                            n.clients[ci].phase = Phase::SyncRead;
                            out.push((format!("c{ci}:acquire(flag=true)"), n));
                        } else {
                            n.clients[ci].phase = Phase::Critical;
                            out.push((format!("c{ci}:acquire(flag={flag_val})"), n));
                        }
                    }
                }
                Phase::SyncRead => {
                    for v in Self::data_read_candidates(s) {
                        let mut n = s.clone();
                        n.data.push(Pair {
                            ts: (c.lock_ref, 0),
                            value: v,
                            writer: ci as u8,
                            acked: false,
                        });
                        n.clients[ci].phase = Phase::SyncWriteWait;
                        out.push((format!("c{ci}:syncRead({v})"), n));
                    }
                }
                Phase::SyncWriteWait => {
                    let mut n = s.clone();
                    if let Some(p) = n
                        .data
                        .iter_mut()
                        .find(|p| !p.acked && p.writer == ci as u8 && p.ts == (c.lock_ref, 0))
                    {
                        p.acked = true;
                    }
                    Self::push_flag(
                        &mut n,
                        FlagPair {
                            ts: (c.lock_ref, 0),
                            value: false,
                            acked: false,
                        },
                    );
                    n.clients[ci].phase = Phase::FlagResetWait;
                    out.push((format!("c{ci}:syncWriteAck"), n));
                }
                Phase::FlagResetWait => {
                    let mut n = s.clone();
                    if let Some(p) = n
                        .flag
                        .iter_mut()
                        .find(|p| !p.acked && p.ts == (c.lock_ref, 0) && !p.value)
                    {
                        p.acked = true;
                    }
                    n.clients[ci].phase = Phase::Critical;
                    out.push((format!("c{ci}:flagResetAck"), n));
                }
                Phase::Critical => {
                    let window = self.scope.pipeline_window;
                    // criticalPut — allowed while (apparently) the holder.
                    let may_put =
                        is_head || (self.scope.stale_puts && !s.queue.contains(&c.lock_ref));
                    if may_put
                        && c.puts < self.scope.max_puts
                        && (window == 0 || c.pending < window)
                    {
                        let mut n = s.clone();
                        n.data.push(Pair {
                            ts: (c.lock_ref, c.next_t),
                            value: n.next_value,
                            writer: ci as u8,
                            acked: false,
                        });
                        n.next_value += 1;
                        n.clients[ci].puts += 1;
                        n.clients[ci].next_t += 1;
                        if window == 0 {
                            n.clients[ci].phase = Phase::PutWait;
                        } else {
                            // Pipelined: stay in the critical section with
                            // one more put in flight.
                            n.clients[ci].pending += 1;
                        }
                        out.push((format!("c{ci}:startPut"), n));
                    }
                    // Pipelined acks arrive in any order, one at a time.
                    if c.pending > 0 {
                        for (pi, p) in s.data.iter().enumerate() {
                            if !p.acked
                                && p.writer == ci as u8
                                && p.ts.0 == c.lock_ref
                                && p.ts.1 >= 1
                            {
                                let mut n = s.clone();
                                n.data[pi].acked = true;
                                n.clients[ci].pending -= 1;
                                out.push((format!("c{ci}:ackPut(t={})", p.ts.1), n));
                            }
                        }
                    }
                    // criticalGet — only the true holder's gets are modeled
                    // (a preempted client's get carries no guarantee). With
                    // pipelining the get is a flush barrier: enabled only
                    // once every own put is acked.
                    if is_head && (c.pending == 0 || self.get_without_flush) {
                        for v in Self::data_read_candidates(s) {
                            let mut n = s.clone();
                            n.clients[ci].phase = Phase::GetWait(v);
                            out.push((format!("c{ci}:startGet({v})"), n));
                        }
                    }
                    // releaseLock — also a flush barrier under pipelining.
                    if c.pending == 0 || self.release_without_flush {
                        let mut n = s.clone();
                        Self::remove_ref(&mut n, c.lock_ref);
                        n.clients[ci].phase = Phase::Done;
                        out.push((format!("c{ci}:release"), n));
                        // Lease-retaining release: only when nothing is
                        // queued behind us — the release LWT then dequeues
                        // our ref and pre-mints the successor as a lease,
                        // atomically.
                        if self.scope.lease
                            && s.leases_used < self.scope.max_leases
                            && s.queue.len() == 1
                            && s.queue[0] == c.lock_ref
                        {
                            let mut n = s.clone();
                            Self::remove_ref(&mut n, c.lock_ref);
                            n.guard += 1;
                            n.queue.push(n.guard);
                            n.lease = Some((ci as u8, n.guard));
                            n.leases_used += 1;
                            if self.scope.adaptive_window {
                                n.lease_window = Self::WINDOW_INIT;
                            }
                            n.clients[ci].lock_ref = n.guard;
                            n.clients[ci].phase = Phase::Leased;
                            out.push((format!("c{ci}:releaseLease({})", n.guard), n));
                        }
                    }
                }
                Phase::PutWait => {
                    let mut n = s.clone();
                    if let Some(p) = n
                        .data
                        .iter_mut()
                        .filter(|p| !p.acked && p.writer == ci as u8)
                        .max_by_key(|p| p.ts)
                    {
                        p.acked = true;
                    }
                    n.clients[ci].phase = Phase::Critical;
                    out.push((format!("c{ci}:ackPut"), n));
                }
                Phase::GetWait(_) => {
                    let mut n = s.clone();
                    n.clients[ci].phase = Phase::Critical;
                    out.push((format!("c{ci}:getDone"), n));
                }
                Phase::Leased => {
                    let standing =
                        s.lease == Some((ci as u8, c.lock_ref)) && s.queue.contains(&c.lock_ref);
                    // The ε claim guard: once the lease has expired in true
                    // time, every ≤ε-skewed clock reads it as expired or
                    // within the rejection margin — a correct owner never
                    // claims. The slow-clock mutant claims anyway.
                    let fresh = !s.lease_expired || self.drift_slow_claim;
                    if (standing && fresh) || self.reuse_after_break {
                        // Fast re-entry: revalidate (still queued, still
                        // leased) and claim — no LWT, no flag read. The
                        // mutant claims on the stale cached grant alone.
                        let mut n = s.clone();
                        n.clients[ci].phase = Phase::Critical;
                        out.push((format!("c{ci}:leaseClaim({})", c.lock_ref), n));
                    }
                    if standing {
                        // Voluntary surrender: release the pre-minted ref
                        // through the normal LWT path.
                        let mut n = s.clone();
                        Self::remove_ref(&mut n, c.lock_ref);
                        n.clients[ci].phase = Phase::Done;
                        out.push((format!("c{ci}:leaseRelinquish({})", c.lock_ref), n));
                    } else {
                        // Broken or revoked under us: the slow path would
                        // re-enter from scratch; model it as done.
                        let mut n = s.clone();
                        n.clients[ci].phase = Phase::Done;
                        out.push((format!("c{ci}:leaseLost({})", c.lock_ref), n));
                    }
                }
                Phase::BreakFlagWait(r) => {
                    let mut n = s.clone();
                    let delta = if self.delta_zero { 0 } else { 1 };
                    if let Some(p) = n
                        .flag
                        .iter_mut()
                        .find(|p| !p.acked && p.ts == (r, delta) && p.value)
                    {
                        p.acked = true;
                    }
                    n.clients[ci].phase = Phase::BreakReady(r);
                    out.push((format!("c{ci}:breakFlagAck({r})"), n));
                }
                Phase::BreakReady(r) => {
                    // The break LWT: dequeue the leased ref (if still
                    // there — it may have been revoked or relinquished
                    // meanwhile) and enqueue a fresh one atomically.
                    let mut n = s.clone();
                    Self::remove_ref(&mut n, r);
                    n.guard += 1;
                    n.queue.push(n.guard);
                    n.clients[ci].lock_ref = n.guard;
                    n.clients[ci].phase = Phase::HasRef;
                    out.push((format!("c{ci}:leaseBreak({r})"), n));
                }
                _ => {}
            }
            // Crash: any live phase, bounded.
            if !matches!(c.phase, Phase::Done | Phase::Crashed | Phase::Idle)
                && Self::crashes_used(s) < self.scope.max_crashes
            {
                let mut n = s.clone();
                n.clients[ci].phase = Phase::Crashed;
                out.push((format!("c{ci}:crash"), n));
            }
        }

        // Lease-window auto-tuning (adaptive scopes): while a lease
        // stands, the contention controller may halve the window (clamped
        // to the safety floor — the mutant forgets the clamp) or double it
        // back toward the initial ceiling.
        if self.scope.adaptive_window {
            if let Some((_, r)) = s.lease {
                let w = s.lease_window;
                let shrunk = if self.window_below_floor {
                    w / 2
                } else {
                    (w / 2).max(Self::WINDOW_FLOOR)
                };
                if shrunk != w {
                    let mut n = s.clone();
                    n.lease_window = shrunk;
                    out.push((format!("tuner:shrinkWindow({r},{w}->{shrunk})"), n));
                }
                let grown = (w.saturating_mul(2)).min(Self::WINDOW_INIT);
                if grown != w {
                    let mut n = s.clone();
                    n.lease_window = grown;
                    out.push((format!("tuner:growWindow({r},{w}->{grown})"), n));
                }
            }
        }

        // True-time lease expiry (drift scopes). Only an *unclaimed* lease
        // expires: claiming rewrites `start_time`, moving the entry from
        // lease-GC jurisdiction to the ordinary staleness timeout — and the
        // ε claim guard guarantees every claim lands strictly before this
        // instant in true time.
        if self.scope.drift && !s.lease_expired {
            if let Some((o, r)) = s.lease {
                if s.clients[o as usize].phase == Phase::Leased {
                    let mut n = s.clone();
                    n.lease_expired = true;
                    out.push((format!("time:leaseExpire({r})"), n));
                }
            }
        }

        // Forced-release daemon (imperfect failure detection: may fire on
        // any current head at any time).
        match s.daemon {
            Daemon::Idle => {
                if s.forced_used < self.scope.max_forced {
                    if let Some(r) = head {
                        let mut n = s.clone();
                        let delta = if self.delta_zero { 0 } else { 1 };
                        Self::push_flag(
                            &mut n,
                            FlagPair {
                                ts: (r, delta),
                                value: true,
                                acked: false,
                            },
                        );
                        if self.dequeue_before_flag_ack {
                            // Mutant: pop the queue immediately; the flag
                            // write is still in flight.
                            Self::remove_ref(&mut n, r);
                        }
                        n.daemon = Daemon::FlagWait(r);
                        n.forced_used += 1;
                        out.push((format!("daemon:forceFlag({r})"), n));
                    }
                    // Mutant: an (apparently expired, apparently
                    // unclaimed) leased head is garbage-collected in one
                    // step, with no resynchronizing flag write.
                    if self.stale_lease && s.forced_used < self.scope.max_forced {
                        if let Some((_, r)) = s.lease {
                            if head == Some(r) {
                                let mut n = s.clone();
                                Self::remove_ref(&mut n, r);
                                n.forced_used += 1;
                                out.push((format!("daemon:staleRevoke({r})"), n));
                            }
                        }
                    }
                }
                // Watchdog lease GC under drift: an expired, unclaimed
                // leased head is collected in one step — no flag write,
                // because the pre-minted reference never stamped a data
                // write and the ε guards put every claim strictly before
                // the expiry instant. The daemon does NOT re-check the
                // owner's phase (the claim is a consistency-ONE write its
                // view may lack); disjointness alone makes this safe.
                if let Some((_, r)) = s.lease {
                    if head == Some(r) {
                        if self.scope.drift && s.lease_expired {
                            let mut n = s.clone();
                            Self::remove_ref(&mut n, r);
                            out.push((format!("daemon:driftRevoke({r})"), n));
                        }
                        // Mutant: a >ε-fast clock reads a live lease as
                        // expired and collects it while the owner may still
                        // claim — or invisibly already has.
                        if self.drift_fast_revoke && !s.lease_expired {
                            let mut n = s.clone();
                            Self::remove_ref(&mut n, r);
                            out.push((format!("daemon:driftFastRevoke({r})"), n));
                        }
                    }
                }
            }
            Daemon::FlagWait(r) => {
                let mut n = s.clone();
                let delta = if self.delta_zero { 0 } else { 1 };
                if let Some(p) = n
                    .flag
                    .iter_mut()
                    .find(|p| !p.acked && p.ts == (r, delta) && p.value)
                {
                    p.acked = true;
                }
                n.daemon = Daemon::Dequeue(r);
                out.push((format!("daemon:forceFlagAck({r})"), n));
            }
            Daemon::Dequeue(r) => {
                let mut n = s.clone();
                Self::remove_ref(&mut n, r);
                n.daemon = Daemon::Idle;
                out.push((format!("daemon:forceDequeue({r})"), n));
            }
        }

        out
    }

    fn check(&self, s: &State) -> Result<(), String> {
        // I1: queue sanity.
        for w in s.queue.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("queue not strictly increasing: {:?}", s.queue));
            }
        }
        if s.queue.iter().any(|r| *r == 0 || *r > s.guard) {
            return Err(format!("queue outside minted refs: {:?}", s.queue));
        }

        // Lease sanity: a standing lease names a minted, still-queued
        // reference owned by a real client — every dequeue site must have
        // cleared it otherwise.
        if let Some((o, r)) = s.lease {
            if o as usize >= s.clients.len() || r == 0 || r > s.guard || !s.queue.contains(&r) {
                return Err(format!(
                    "lease sanity: lease ({o}, {r}) inconsistent with queue {:?} / guard {}",
                    s.queue, s.guard
                ));
            }
        }
        if s.lease_expired && s.lease.is_none() {
            return Err("lease sanity: expiry bit set with no standing lease".to_string());
        }

        // Lease-floor invariant (adaptive scopes): the auto-tuned window
        // never drops below the safety floor while a lease stands — the
        // floor is what keeps the ε claim/break guards disjoint.
        if self.scope.adaptive_window {
            if s.lease.is_some() && s.lease_window < Self::WINDOW_FLOOR {
                return Err(format!(
                    "lease-floor invariant: tuned window {} below safety floor {}",
                    s.lease_window,
                    Self::WINDOW_FLOOR
                ));
            }
            if s.lease.is_none() && s.lease_window != 0 {
                return Err(format!(
                    "lease-floor invariant: dangling window {} with no standing lease",
                    s.lease_window
                ));
            }
        }

        let true_pair = Self::true_pair(s);
        let head = Self::head(s);

        for (ci, c) in s.clients.iter().enumerate() {
            let is_head = head == Some(c.lock_ref) && c.lock_ref != 0;

            // I2: Critical-Section Invariant — the lockholder in Critical
            // or Getting state implies the data store is defined. A holder
            // with pipelined puts still in flight is mid-put (the analogue
            // of PutWait), so the invariant applies only at zero pending.
            if is_head
                && matches!(c.phase, Phase::Critical | Phase::GetWait(_))
                && c.pending == 0
                && !Self::data_defined(s)
            {
                return Err(format!(
                    "critical-section invariant: holder c{ci} in {:?} but store undefined (true pair {:?})",
                    c.phase, true_pair
                ));
            }

            // Latest-State Property: a get reply waiting at the lockholder
            // carries the true value.
            if is_head {
                if let Phase::GetWait(v) = c.phase {
                    if v != true_pair.value {
                        return Err(format!(
                            "latest-state: holder c{ci} read {v} but true value is {}",
                            true_pair.value
                        ));
                    }
                }
            }

            // I3: SynchFlag Invariant — a preempted, still-active client
            // whose ref is past and ≥ the true timestamp's lockRef implies
            // the flag is true.
            let active_cs = matches!(
                c.phase,
                Phase::Critical | Phase::PutWait | Phase::GetWait(_)
            );
            if active_cs
                && c.lock_ref != 0
                && !s.queue.contains(&c.lock_ref)
                && c.lock_ref >= true_pair.ts.0
            {
                let tv = Self::flag_true_values(s);
                if tv != vec![true] {
                    return Err(format!(
                        "synchFlag invariant: preempted c{ci} (ref {}) >= true lockRef {} but flag true-values are {tv:?}",
                        c.lock_ref, true_pair.ts.0
                    ));
                }
            }
        }

        // I3b: a pending true pair whose writer's ref left the queue means
        // traces of a preempted write exist — the flag must be true.
        if !true_pair.acked && true_pair.writer != 255 {
            let writer = &s.clients[true_pair.writer as usize];
            if !s.queue.contains(&writer.lock_ref) {
                let tv = Self::flag_true_values(s);
                if tv != vec![true] {
                    return Err(format!(
                        "synchFlag invariant (traces): pending true pair {:?} by dequeued writer but flag true-values are {tv:?}",
                        true_pair
                    ));
                }
            }
        }

        Ok(())
    }
}
