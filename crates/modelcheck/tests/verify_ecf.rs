//! Bounded verification of the ECF invariants (the §V reproduction), plus
//! mutation tests showing the checker has teeth.

use music_modelcheck::{CheckOutcome, Checker, MusicModel, Scope};

#[test]
fn default_scope_satisfies_all_invariants() {
    let model = MusicModel::default();
    let out = Checker::default().run(&model);
    match &out {
        CheckOutcome::Ok {
            states, truncated, ..
        } => {
            assert!(!truncated, "scope must be fully explored");
            assert!(*states > 10_000, "non-trivial state space, got {states}");
        }
        CheckOutcome::Violation { message, trace, .. } => {
            panic!(
                "unexpected violation: {message}\ntrace:\n  {}",
                trace.join("\n  ")
            );
        }
    }
}

#[test]
fn two_puts_per_client_scope_is_clean() {
    let model = MusicModel::new(Scope {
        max_puts: 2,
        ..Scope::default()
    });
    let out = Checker::default().run(&model);
    assert!(
        out.is_ok(),
        "violation in 2-put scope: {:?}",
        match out {
            CheckOutcome::Violation { message, trace, .. } =>
                format!("{message}\n{}", trace.join("\n")),
            _ => unreachable!(),
        }
    );
}

#[test]
fn more_forced_releases_stay_safe() {
    let model = MusicModel::new(Scope {
        max_forced: 3,
        max_crashes: 2,
        ..Scope::default()
    });
    let out = Checker::default().run(&model);
    assert!(out.is_ok(), "{out:?}");
}

#[test]
fn mutant_delta_zero_is_caught() {
    // §IV-B: δ must be strictly positive so a forcedRelease's flag write
    // overrides the holder's concurrent flag reset. With δ = 0 the two
    // writes tie and the flag may read false when it must be true.
    let model = MusicModel {
        delta_zero: true,
        ..MusicModel::default()
    };
    let out = Checker::default().run(&model);
    match out {
        CheckOutcome::Violation { message, trace, .. } => {
            assert!(
                message.contains("synchFlag")
                    || message.contains("latest-state")
                    || message.contains("critical-section"),
                "unexpected violation kind: {message}"
            );
            assert!(!trace.is_empty());
        }
        CheckOutcome::Ok { .. } => panic!("δ=0 mutant must violate an invariant"),
    }
}

#[test]
fn mutant_skipping_synchronization_is_caught() {
    // Without the acquireLock synchronization, a holder can enter its
    // critical section over an undefined data store (a predecessor's
    // unacknowledged put still haunting it).
    let model = MusicModel {
        skip_sync: true,
        ..MusicModel::default()
    };
    let out = Checker::default().run(&model);
    match out {
        CheckOutcome::Violation { message, .. } => {
            assert!(
                message.contains("critical-section") || message.contains("latest-state"),
                "unexpected violation kind: {message}"
            );
        }
        CheckOutcome::Ok { .. } => panic!("skip-sync mutant must violate an invariant"),
    }
}

#[test]
fn mutant_dequeue_before_flag_ack_is_caught() {
    // §IV-B: "the quorum write is completed before the last lockRef is
    // dequeued". Violating that ordering lets the next holder read a
    // stale false flag, skip the synchronization, and enter a critical
    // section over an undefined store.
    let model = MusicModel {
        dequeue_before_flag_ack: true,
        ..MusicModel::default()
    };
    let out = Checker::default().run(&model);
    match out {
        CheckOutcome::Violation { message, trace, .. } => {
            assert!(
                message.contains("critical-section") || message.contains("latest-state"),
                "unexpected violation kind: {message}"
            );
            assert!(!trace.is_empty());
        }
        CheckOutcome::Ok { .. } => {
            panic!("dequeue-before-flag-ack mutant must violate an invariant")
        }
    }
}

#[test]
fn scope_without_stale_views_is_clean_and_smaller() {
    // Disabling the stale-local-view events shrinks the space; the
    // invariants must of course still hold.
    let with_stale = MusicModel::new(Scope::default());
    let without_stale = MusicModel::new(Scope {
        stale_puts: false,
        ..Scope::default()
    });
    let a = Checker::default().run(&with_stale);
    let b = Checker::default().run(&without_stale);
    assert!(a.is_ok() && b.is_ok());
    assert!(
        b.states_explored() < a.states_explored(),
        "stale views add states: {} !< {}",
        b.states_explored(),
        a.states_explored()
    );
}

/// The big scope (3 clients). Expensive — run with `--ignored` when
/// touching the core algorithms.
#[test]
#[ignore = "large scope: minutes of exploration"]
fn three_client_scope_is_clean() {
    let model = MusicModel::new(Scope {
        clients: 3,
        ..Scope::default()
    });
    let out = Checker {
        max_states: 20_000_000,
        max_depth: 80,
    }
    .run(&model);
    assert!(out.is_ok(), "{out:?}");
}

#[test]
fn pipelined_scope_satisfies_all_invariants() {
    // Pipelined puts: up to 2 in flight, acks in any order, flush barriers
    // on get and release. The invariants must hold exactly as in the sync
    // model.
    let model = MusicModel::new(Scope {
        max_puts: 2,
        pipeline_window: 2,
        ..Scope::default()
    });
    let out = Checker::default().run(&model);
    match &out {
        CheckOutcome::Ok {
            states, truncated, ..
        } => {
            assert!(!truncated, "scope must be fully explored");
            assert!(*states > 10_000, "non-trivial state space, got {states}");
        }
        CheckOutcome::Violation { message, trace, .. } => {
            panic!(
                "unexpected violation: {message}\ntrace:\n  {}",
                trace.join("\n  ")
            );
        }
    }
}

#[test]
fn mutant_get_without_flush_is_caught() {
    // A pipelined criticalGet that skips the flush barrier can read a
    // value older than an own in-flight put — breaking Latest-State.
    let model = MusicModel {
        get_without_flush: true,
        ..MusicModel::new(Scope {
            max_puts: 2,
            pipeline_window: 2,
            ..Scope::default()
        })
    };
    let out = Checker::default().run(&model);
    match out {
        CheckOutcome::Violation { message, trace, .. } => {
            assert!(
                message.contains("latest-state"),
                "unexpected violation kind: {message}"
            );
            assert!(!trace.is_empty());
        }
        CheckOutcome::Ok { .. } => panic!("get-without-flush mutant must violate Latest-State"),
    }
}

#[test]
fn mutant_release_without_flush_is_caught() {
    // A pipelined release that skips the flush barrier hands the lock off
    // while a put is still unacknowledged: the next holder enters a
    // critical section over an undefined store.
    let model = MusicModel {
        release_without_flush: true,
        ..MusicModel::new(Scope {
            max_puts: 2,
            pipeline_window: 2,
            ..Scope::default()
        })
    };
    let out = Checker::default().run(&model);
    match out {
        CheckOutcome::Violation { message, trace, .. } => {
            // The earliest manifestation is the synchFlag-traces invariant:
            // an unacknowledged write left behind by a dequeued writer with
            // no flag raised; deeper in the space the next holder's
            // critical-section invariant breaks too.
            assert!(
                message.contains("critical-section")
                    || message.contains("latest-state")
                    || message.contains("synchFlag"),
                "unexpected violation kind: {message}"
            );
            assert!(!trace.is_empty());
        }
        CheckOutcome::Ok { .. } => {
            panic!("release-without-flush mutant must violate an invariant")
        }
    }
}

fn lease_scope() -> Scope {
    Scope {
        lease: true,
        max_leases: 2,
        ..Scope::default()
    }
}

#[test]
fn lease_scope_satisfies_all_invariants() {
    // The lease extension: clean releases retain a pre-minted leased ref
    // at the queue head; owners claim it with no LWT and no flag read;
    // competitors break it flag-first; the daemon may force-release a
    // leased head like any other. ECF must survive every interleaving,
    // including breaks racing invisible claims.
    let model = MusicModel::new(lease_scope());
    let out = Checker::default().run(&model);
    match &out {
        CheckOutcome::Ok {
            states, truncated, ..
        } => {
            assert!(!truncated, "scope must be fully explored");
            assert!(*states > 10_000, "non-trivial state space, got {states}");
        }
        CheckOutcome::Violation { message, trace, .. } => {
            panic!(
                "unexpected violation: {message}\ntrace:\n  {}",
                trace.join("\n  ")
            );
        }
    }
}

#[test]
fn mutant_reuse_after_break_is_caught() {
    // If breaks skip the flag-first protocol and owners claim without
    // revalidating, a broken lease can be reused: the stale claimant
    // writes at a lockRef at/above the true timestamp with no flag
    // raised — exactly §IV-B's undefined-store hazard.
    let model = MusicModel {
        reuse_after_break: true,
        ..MusicModel::new(lease_scope())
    };
    let out = Checker::default().run(&model);
    match out {
        CheckOutcome::Violation { message, trace, .. } => {
            assert!(
                message.contains("synchFlag")
                    || message.contains("critical-section")
                    || message.contains("latest-state"),
                "unexpected violation kind: {message}"
            );
            assert!(!trace.is_empty());
        }
        CheckOutcome::Ok { .. } => panic!("reuse-after-break mutant must violate an invariant"),
    }
}

#[test]
fn mutant_stale_lease_revocation_is_caught() {
    // The watchdog must revoke expired leases *exactly like preempted
    // holders* (resynchronizing flag write first). A one-step revocation
    // drops the flag cover of an invisibly claimed lease mid-put.
    let model = MusicModel {
        stale_lease: true,
        ..MusicModel::new(lease_scope())
    };
    let out = Checker::default().run(&model);
    match out {
        CheckOutcome::Violation { message, trace, .. } => {
            assert!(
                message.contains("synchFlag")
                    || message.contains("critical-section")
                    || message.contains("latest-state"),
                "unexpected violation kind: {message}"
            );
            assert!(!trace.is_empty());
        }
        CheckOutcome::Ok { .. } => panic!("stale-lease mutant must violate an invariant"),
    }
}

fn drift_scope() -> Scope {
    Scope {
        drift: true,
        ..lease_scope()
    }
}

#[test]
fn drift_scope_satisfies_all_invariants() {
    // Bounded clock drift: unclaimed leases may expire in true time, the
    // ε claim guard turns expired claims away, and the watchdog collects
    // the expired reference in a single step without re-checking whether
    // the owner claimed. ECF must survive every interleaving — the guards'
    // disjointness around the expiry instant is the whole argument.
    let model = MusicModel::new(drift_scope());
    let out = Checker::default().run(&model);
    match &out {
        CheckOutcome::Ok {
            states, truncated, ..
        } => {
            assert!(!truncated, "scope must be fully explored");
            assert!(*states > 10_000, "non-trivial state space, got {states}");
        }
        CheckOutcome::Violation { message, trace, .. } => {
            panic!(
                "unexpected violation: {message}\ntrace:\n  {}",
                trace.join("\n  ")
            );
        }
    }
}

#[test]
fn drift_scope_explores_the_expiry_events() {
    // The drift scope must genuinely add behaviour, not just a dead bit.
    let a = Checker::default().run(&MusicModel::new(lease_scope()));
    let b = Checker::default().run(&MusicModel::new(drift_scope()));
    assert!(a.is_ok() && b.is_ok());
    assert!(
        b.states_explored() > a.states_explored(),
        "expiry adds states: {} !> {}",
        b.states_explored(),
        a.states_explored()
    );
}

#[test]
fn mutant_drift_slow_claim_is_caught() {
    // A holder slow by more than ε claims an expired lease: the watchdog's
    // one-step GC then collects the reference out from under an (invisibly)
    // claimed holder, whose writes lose their flag cover mid-put.
    let model = MusicModel {
        drift_slow_claim: true,
        ..MusicModel::new(drift_scope())
    };
    let out = Checker::default().run(&model);
    match out {
        CheckOutcome::Violation { message, trace, .. } => {
            assert!(
                message.contains("synchFlag")
                    || message.contains("critical-section")
                    || message.contains("latest-state"),
                "unexpected violation kind: {message}"
            );
            assert!(!trace.is_empty());
            assert!(
                trace.iter().any(|l| l.contains("leaseExpire")),
                "counterexample must pass through the expiry event: {trace:?}"
            );
        }
        CheckOutcome::Ok { .. } => panic!("slow-clock claim mutant must violate an invariant"),
    }
}

#[test]
fn mutant_drift_fast_revoke_is_caught() {
    // A watchdog fast by more than ε collects a *live* lease in one step:
    // the owner's legitimate claim races the GC and the revoked holder
    // writes with no resynchronizing flag raised.
    let model = MusicModel {
        drift_fast_revoke: true,
        ..MusicModel::new(drift_scope())
    };
    let out = Checker::default().run(&model);
    match out {
        CheckOutcome::Violation { message, trace, .. } => {
            assert!(
                message.contains("synchFlag")
                    || message.contains("critical-section")
                    || message.contains("latest-state"),
                "unexpected violation kind: {message}"
            );
            assert!(!trace.is_empty());
            assert!(
                trace.iter().any(|l| l.contains("driftFastRevoke")),
                "counterexample must pass through the premature GC: {trace:?}"
            );
        }
        CheckOutcome::Ok { .. } => panic!("fast-clock revoke mutant must violate an invariant"),
    }
}

fn adaptive_scope() -> Scope {
    Scope {
        combine: true,
        adaptive_window: true,
        ..lease_scope()
    }
}

#[test]
fn adaptive_scope_satisfies_all_invariants() {
    // The contention-adaptive extensions: enqueue combining (batch LWTs
    // minting consecutive refs in arrival order) and the lease-window
    // auto-tuner (halve/double, clamped to the safety floor). Both are
    // optimizations layered on the lease protocol, so every invariant —
    // including the new lease-floor one — must hold across the whole
    // interleaving space.
    let model = MusicModel::new(adaptive_scope());
    let out = Checker::default().run(&model);
    match &out {
        CheckOutcome::Ok {
            states, truncated, ..
        } => {
            assert!(!truncated, "scope must be fully explored");
            assert!(*states > 10_000, "non-trivial state space, got {states}");
        }
        CheckOutcome::Violation { message, trace, .. } => {
            panic!(
                "unexpected violation: {message}\ntrace:\n  {}",
                trace.join("\n  ")
            );
        }
    }
}

#[test]
fn adaptive_scope_explores_the_combining_and_tuning_events() {
    // Combining and tuning must genuinely add behaviour over the plain
    // lease scope, not just dead scope bits.
    let a = Checker::default().run(&MusicModel::new(lease_scope()));
    let b = Checker::default().run(&MusicModel::new(adaptive_scope()));
    assert!(a.is_ok() && b.is_ok());
    assert!(
        b.states_explored() > a.states_explored(),
        "adaptive events add states: {} !> {}",
        b.states_explored(),
        a.states_explored()
    );
}

#[test]
fn mutant_combine_unordered_is_caught() {
    // A combiner that writes the batch in reverse arrival order mints a
    // non-ascending queue segment: queue sanity (and with it the
    // FIFO-with-preemption refinement) must flag it immediately.
    let model = MusicModel {
        combine_unordered: true,
        ..MusicModel::new(Scope {
            combine: true,
            ..Scope::default()
        })
    };
    let out = Checker::default().run(&model);
    match out {
        CheckOutcome::Violation { message, trace, .. } => {
            assert!(
                message.contains("queue not strictly increasing"),
                "unexpected violation kind: {message}"
            );
            assert!(
                trace.iter().any(|l| l.contains("enqueueBatch")),
                "counterexample must pass through the batch LWT: {trace:?}"
            );
        }
        CheckOutcome::Ok { .. } => panic!("unordered-combine mutant must violate queue sanity"),
    }
}

#[test]
fn mutant_window_below_floor_is_caught() {
    // A tuner that shrinks without clamping eventually drives the lease
    // window below the safety floor — the margin that keeps the ε
    // claim/break guards disjoint. The lease-floor invariant must flag the
    // first sub-floor state.
    let model = MusicModel {
        window_below_floor: true,
        ..MusicModel::new(adaptive_scope())
    };
    let out = Checker::default().run(&model);
    match out {
        CheckOutcome::Violation { message, trace, .. } => {
            assert!(
                message.contains("lease-floor"),
                "unexpected violation kind: {message}"
            );
            assert!(
                trace.iter().any(|l| l.contains("shrinkWindow")),
                "counterexample must pass through the tuner: {trace:?}"
            );
        }
        CheckOutcome::Ok { .. } => {
            panic!("window-below-floor mutant must violate the lease-floor invariant")
        }
    }
}

#[test]
fn violation_traces_are_replayable() {
    // The counterexample trace must be a genuine path: replay it through
    // the model's successor function.
    use music_modelcheck::Model;
    let model = MusicModel {
        skip_sync: true,
        ..MusicModel::default()
    };
    let out = Checker::default().run(&model);
    let CheckOutcome::Violation { trace, state, .. } = out else {
        panic!("expected violation");
    };
    let mut current = model.initial().remove(0);
    for label in trace.iter().skip(1) {
        let succs = model.successors(&current);
        let (_, next) = succs
            .into_iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("label {label} not enabled"));
        current = next;
    }
    assert_eq!(current, state, "trace replays to the violating state");
}
