//! Counter/gauge registry with deterministic snapshots and JSON export.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::push_str;

/// What a metric is attributed to.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Scope {
    /// System-wide.
    Global,
    /// One simulated node.
    Node(u32),
    /// One site of the latency profile.
    Site(u32),
    /// One directed (from, to) node pair.
    Link(u32, u32),
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Global => write!(f, "global"),
            Scope::Node(n) => write!(f, "node:{n}"),
            Scope::Site(s) => write!(f, "site:{s}"),
            Scope::Link(a, b) => write!(f, "link:{a}->{b}"),
        }
    }
}

/// Monotone counters plus max-tracking gauges and sample histograms,
/// keyed by `(scope, name)`.
///
/// Backed by `BTreeMap`s so iteration (and therefore every snapshot and
/// JSON export) is deterministically ordered.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    values: BTreeMap<(Scope, &'static str), u64>,
    hists: BTreeMap<(Scope, &'static str), Vec<u64>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `(scope, name)`.
    pub fn add(&mut self, scope: Scope, name: &'static str, n: u64) {
        *self.values.entry((scope, name)).or_insert(0) += n;
    }

    /// Raises the gauge `(scope, name)` to `v` if `v` is larger (high-water
    /// mark semantics — used for e.g. service-queue backlog).
    pub fn set_max(&mut self, scope: Scope, name: &'static str, v: u64) {
        let slot = self.values.entry((scope, name)).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Appends one sample to the histogram `(scope, name)` — used for
    /// duration distributions like replica recovery times.
    pub fn observe(&mut self, scope: Scope, name: &'static str, v: u64) {
        self.hists.entry((scope, name)).or_default().push(v);
    }

    /// Current value of `(scope, name)`; zero if never touched.
    pub fn get(&self, scope: Scope, name: &'static str) -> u64 {
        self.values.get(&(scope, name)).copied().unwrap_or(0)
    }

    /// A point-in-time copy of every metric, in deterministic order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .values
                .iter()
                .map(|(&(scope, name), &value)| MetricEntry { scope, name, value })
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(&(scope, name), samples)| HistEntry {
                    scope,
                    name,
                    samples: samples.clone(),
                })
                .collect(),
        }
    }
}

/// One `(scope, name, value)` row of a snapshot.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct MetricEntry {
    /// What the metric is attributed to.
    pub scope: Scope,
    /// Metric name.
    pub name: &'static str,
    /// Value at snapshot time.
    pub value: u64,
}

/// One `(scope, name, samples)` histogram row of a snapshot, in
/// observation order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistEntry {
    /// What the histogram is attributed to.
    pub scope: Scope,
    /// Histogram name.
    pub name: &'static str,
    /// Every observed sample, in observation order.
    pub samples: Vec<u64>,
}

impl HistEntry {
    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Largest sample (zero when empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Smallest sample (zero when empty).
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }
}

/// A deterministic, point-in-time view of a [`MetricsRegistry`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MetricsSnapshot {
    /// All counter/gauge rows, sorted by `(scope, name)`.
    pub entries: Vec<MetricEntry>,
    /// All histogram rows, sorted by `(scope, name)`.
    pub hists: Vec<HistEntry>,
}

impl MetricsSnapshot {
    /// Value of `(scope, name)`; zero if absent.
    pub fn get(&self, scope: Scope, name: &'static str) -> u64 {
        self.entries
            .iter()
            .find(|e| e.scope == scope && e.name == name)
            .map_or(0, |e| e.value)
    }

    /// Sum of `name` across all scopes of any kind.
    pub fn total(&self, name: &'static str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.value)
            .sum()
    }

    /// The histogram `(scope, name)`, if any samples were observed.
    pub fn histogram(&self, scope: Scope, name: &'static str) -> Option<&HistEntry> {
        self.hists
            .iter()
            .find(|h| h.scope == scope && h.name == name)
    }

    /// Every sample of histogram `name` across all scopes, in `(scope,
    /// observation)` order.
    pub fn histogram_samples(&self, name: &'static str) -> Vec<u64> {
        self.hists
            .iter()
            .filter(|h| h.name == name)
            .flat_map(|h| h.samples.iter().copied())
            .collect()
    }

    /// Whether the snapshot holds no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.hists.is_empty()
    }

    /// Folds `other` into `self`, so sharded runs (the seed-matrix /
    /// nemesis CI shards) can aggregate per-site latency histograms and
    /// counters into one snapshot.
    ///
    /// Counters sum; gauge rows — recognized by a `_peak` / `_max`
    /// name suffix (the registry's `set_max` convention) — take the max;
    /// histogram rows concatenate samples (`self`'s first). Rows stay
    /// sorted by `(scope, name)`, so merging commutes with `to_json` up
    /// to sample order within a histogram.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let mut values: BTreeMap<(Scope, &'static str), u64> = self
            .entries
            .iter()
            .map(|e| ((e.scope, e.name), e.value))
            .collect();
        for e in &other.entries {
            let slot = values.entry((e.scope, e.name)).or_insert(0);
            if e.name.ends_with("_peak") || e.name.ends_with("_max") {
                *slot = (*slot).max(e.value);
            } else {
                *slot += e.value;
            }
        }
        self.entries = values
            .into_iter()
            .map(|((scope, name), value)| MetricEntry { scope, name, value })
            .collect();

        let mut hists: BTreeMap<(Scope, &'static str), Vec<u64>> = self
            .hists
            .drain(..)
            .map(|h| ((h.scope, h.name), h.samples))
            .collect();
        for h in &other.hists {
            hists
                .entry((h.scope, h.name))
                .or_default()
                .extend_from_slice(&h.samples);
        }
        self.hists = hists
            .into_iter()
            .map(|((scope, name), samples)| HistEntry {
                scope,
                name,
                samples,
            })
            .collect();
    }

    /// One JSON object on a single line:
    /// `{"kind":"metrics","counters":{"node:0/msgs_sent":12,...}}`, plus a
    /// `"hists"` object (count/sum/min/max per histogram) when any
    /// histogram holds samples.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"kind\":\"metrics\",\"counters\":{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str(&mut out, &format!("{}/{}", e.scope, e.name));
            let _ = write!(out, ":{}", e.value);
        }
        out.push('}');
        if !self.hists.is_empty() {
            out.push_str(",\"hists\":{");
            for (i, h) in self.hists.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_str(&mut out, &format!("{}/{}", h.scope, h.name));
                let _ = write!(
                    out,
                    ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max()
                );
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_track_max() {
        let mut m = MetricsRegistry::new();
        m.add(Scope::Node(1), "msgs_sent", 2);
        m.add(Scope::Node(1), "msgs_sent", 3);
        m.set_max(Scope::Node(1), "backlog_us", 10);
        m.set_max(Scope::Node(1), "backlog_us", 4);
        assert_eq!(m.get(Scope::Node(1), "msgs_sent"), 5);
        assert_eq!(m.get(Scope::Node(1), "backlog_us"), 10);
        assert_eq!(m.get(Scope::Node(2), "msgs_sent"), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_json_is_stable() {
        let mut m = MetricsRegistry::new();
        m.add(Scope::Site(1), "b", 1);
        m.add(Scope::Global, "a", 2);
        m.add(Scope::Link(0, 3), "c", 3);
        let snap = m.snapshot();
        assert_eq!(snap.entries[0].scope, Scope::Global);
        assert_eq!(
            snap.to_json(),
            "{\"kind\":\"metrics\",\"counters\":{\"global/a\":2,\
             \"site:1/b\":1,\"link:0->3/c\":3}}"
        );
        assert_eq!(snap.total("a"), 2);
        assert_eq!(snap.get(Scope::Site(1), "b"), 1);
    }

    #[test]
    fn histograms_accumulate_samples_and_render_summaries() {
        let mut m = MetricsRegistry::new();
        m.observe(Scope::Node(2), "recovery_us", 30);
        m.observe(Scope::Node(2), "recovery_us", 10);
        m.observe(Scope::Node(1), "recovery_us", 7);
        let snap = m.snapshot();
        let h = snap.histogram(Scope::Node(2), "recovery_us").unwrap();
        assert_eq!(h.samples, vec![30, 10], "observation order preserved");
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (2, 40, 10, 30));
        assert_eq!(snap.histogram_samples("recovery_us"), vec![7, 30, 10]);
        assert!(snap.histogram(Scope::Global, "recovery_us").is_none());
        assert_eq!(
            snap.to_json(),
            "{\"kind\":\"metrics\",\"counters\":{},\
             \"hists\":{\"node:1/recovery_us\":{\"count\":1,\"sum\":7,\"min\":7,\"max\":7},\
             \"node:2/recovery_us\":{\"count\":2,\"sum\":40,\"min\":10,\"max\":30}}}"
        );
    }

    #[test]
    fn merge_sums_counters_maxes_gauges_and_concats_hists() {
        let mut a = MetricsRegistry::new();
        a.add(Scope::Node(0), "ops", 5);
        a.set_max(Scope::Global, "inflight_peak", 3);
        a.observe(Scope::Site(1), "grant_wait_us", 10);
        let mut b = MetricsRegistry::new();
        b.add(Scope::Node(0), "ops", 7);
        b.add(Scope::Node(1), "ops", 2);
        b.set_max(Scope::Global, "inflight_peak", 9);
        b.observe(Scope::Site(1), "grant_wait_us", 4);
        b.observe(Scope::Site(2), "grant_wait_us", 8);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.get(Scope::Node(0), "ops"), 12);
        assert_eq!(merged.get(Scope::Node(1), "ops"), 2);
        assert_eq!(merged.get(Scope::Global, "inflight_peak"), 9, "gauge maxes");
        assert_eq!(
            merged
                .histogram(Scope::Site(1), "grant_wait_us")
                .unwrap()
                .samples,
            vec![10, 4]
        );
        assert_eq!(merged.histogram_samples("grant_wait_us"), vec![10, 4, 8]);
        // Merged rows stay sorted, so the export is still deterministic.
        let json = merged.to_json();
        let mut again = MetricsSnapshot::default();
        again.merge(&merged);
        assert_eq!(again.to_json(), json);
    }

    #[test]
    fn counter_only_json_is_unchanged_by_the_hist_field() {
        let mut m = MetricsRegistry::new();
        m.add(Scope::Global, "a", 1);
        assert_eq!(
            m.snapshot().to_json(),
            "{\"kind\":\"metrics\",\"counters\":{\"global/a\":1}}"
        );
    }
}
