//! Online (streaming) checker of the ECF properties plus a
//! replication-aware **lock-queue refinement** check.
//!
//! Where [`crate::ecf::check`] replays a complete event log after the run
//! (O(events) memory — fine at 10^4 ops, impossible at million-user
//! scale and unusable against a live socket cluster), this module
//! consumes events **incrementally**, one at a time, holding only
//! per-key state machines for the keys that are currently *live*:
//!
//! * the same Exclusivity / Latest-State predicates as the offline
//!   checker — with an unbounded window the two produce **identical**
//!   [`EcfReport`]s over the same event stream (the differential test
//!   lane asserts this across every corpus);
//! * a **queue refinement** layer, in the spirit of replication-aware
//!   linearizability: every `lockEnqueue` / `lockGrant` / `lockRelease` /
//!   `lockForcedRelease` / `leaseGrant` / `leaseBreak` is validated
//!   against an abstract FIFO-with-preemption queue. This catches
//!   *internal* lockstore anomalies that the end-to-end ECF predicate
//!   can mask through later synchronization: an out-of-order grant, a
//!   re-grant of a reference already collected by a `forcedRelease` (the
//!   offline checker excuses it as a zombie), or a grant of a reference
//!   that was never minted at all.
//!
//! ## Window semantics & the memory bound
//!
//! Per-key state is **retired** once the key is quiescent (no holder, no
//! in-flight puts, no open references) and has been idle for at least
//! [`OnlineConfig::window_us`]. Retirement forgets the key's pinned true
//! value and deposed set: activity resuming after a full idle window is
//! treated as a fresh first observation. That is the explicit
//! soundness/memory trade — a latest-state violation spanning more than a
//! window of total silence on a key is missed — and it buys O(live keys)
//! memory instead of O(distinct keys). With the default unbounded window
//! nothing is ever retired and the verdict matches the offline checker
//! exactly.
//!
//! ## Sampling
//!
//! [`OnlineConfig::sample_every`] = N checks only keys whose FNV digest
//! is ≡ 0 (mod N). Sampling is whole-key: a checked key sees *all* of
//! its events, so its state machines stay sound; skipped keys cost
//! nothing. This is how `music-load` keeps live coverage over a real
//! socket cluster without tracing every key.

use std::collections::{BTreeMap, BTreeSet};

use crate::ecf::EcfReport;
use crate::event::{Event, EventKind};

/// How many closed (released / collected) references per key are kept
/// for validating the late duplicate events that legitimately reference
/// them (retried release re-emissions, zombie grants). Older closed refs
/// are evicted; events touching evicted refs are counted, not judged.
const CLOSED_REFS_KEPT: usize = 64;

/// How often (in events pushed) the retirement sweep runs.
const SWEEP_INTERVAL: u64 = 1024;

/// Configuration of an [`OnlineChecker`].
#[derive(Clone, Copy, Debug)]
pub struct OnlineConfig {
    /// Idle time (virtual µs) after which a quiescent key's state is
    /// retired. `u64::MAX` (the default) never retires, making the ECF
    /// verdict exactly equal to the offline checker's.
    pub window_us: u64,
    /// Check only keys whose FNV digest is divisible by this. `1` (the
    /// default) checks every key.
    pub sample_every: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            window_us: u64::MAX,
            sample_every: 1,
        }
    }
}

impl OnlineConfig {
    /// Unbounded window, every key checked: verdict-equivalent to
    /// [`crate::ecf::check`] over the same stream.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Retire quiescent keys after `window_us` idle virtual µs.
    pub fn windowed(window_us: u64) -> Self {
        OnlineConfig {
            window_us,
            ..Self::default()
        }
    }

    /// Sets key sampling (see [`OnlineConfig::sample_every`]).
    #[must_use]
    pub fn with_sampling(mut self, sample_every: u64) -> Self {
        self.sample_every = sample_every.max(1);
        self
    }
}

/// Verdict snapshot of an [`OnlineChecker`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OnlineReport {
    /// The ECF core — same fields and violation messages as the offline
    /// checker; equal to it bit-for-bit under an unbounded window.
    pub ecf: EcfReport,
    /// Lock-queue events validated against the abstract queue model.
    pub queue_checked: u64,
    /// Refinement violations: anomalies of the lock queue itself, which
    /// the end-to-end ECF predicate may not see.
    pub queue_violations: Vec<String>,
    /// Forced releases of references whose mint event was never recorded
    /// (orphan collection by the watchdog — expected, not a violation).
    pub orphan_collections: u64,
    /// Events referencing a closed-and-evicted reference: too old to
    /// judge, counted for visibility.
    pub untracked_ref_events: u64,
    /// Events consumed (including sampled-out ones).
    pub events_seen: u64,
    /// Events skipped by key sampling.
    pub sampled_out: u64,
    /// Keys currently live (holding state) at snapshot time.
    pub keys_live: u64,
    /// High-water mark of simultaneously live keys.
    pub peak_live_keys: u64,
    /// Quiescent keys whose state was retired by the window.
    pub keys_retired: u64,
}

impl OnlineReport {
    /// Whether both the ECF properties and the queue refinement held.
    pub fn ok(&self) -> bool {
        self.ecf.ok() && self.queue_violations.is_empty()
    }

    /// One JSON object on a single line, sharing the ECF field layout
    /// with [`EcfReport::to_json`].
    pub fn to_json(&self) -> String {
        let mut o = crate::json::Obj::new("ecfOnline");
        self.ecf.write_fields(&mut o);
        o.u64("queueChecked", self.queue_checked)
            .str_list("queueViolations", &self.queue_violations)
            .u64("orphanCollections", self.orphan_collections)
            .u64("untrackedRefEvents", self.untracked_ref_events)
            .u64("eventsSeen", self.events_seen)
            .u64("sampledOut", self.sampled_out)
            .u64("keysLive", self.keys_live)
            .u64("peakLiveKeys", self.peak_live_keys)
            .u64("keysRetired", self.keys_retired);
        o.finish()
    }
}

impl std::fmt::Display for OnlineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "online: {} ({}, queue {} checked / {} violations, \
             {} keys live (peak {}), {} retired)",
            if self.ok() { "OK" } else { "VIOLATED" },
            self.ecf,
            self.queue_checked,
            self.queue_violations.len(),
            self.keys_live,
            self.peak_live_keys,
            self.keys_retired
        )
    }
}

/// Abstract-queue view of one lock reference.
#[derive(Clone, Debug, Default)]
struct RefState {
    /// Minted via `lockEnqueue` or `leaseGrant`.
    enqueued: bool,
    /// Minted as a lease and not yet claimed by a grant.
    leased: bool,
    /// Effectively granted at least once.
    granted: bool,
    /// Cleanly released.
    released: bool,
    /// Collected by a `forcedRelease` (or lease break).
    deposed: bool,
}

/// Per-key streaming state: the ECF machine (a faithful port of the
/// offline checker's `KeyState`) plus the abstract queue.
#[derive(Debug, Default)]
struct KeyState {
    // --- ECF core (identical semantics to `ecf::check`) ---
    holder: Option<u64>,
    true_value: Option<Option<u64>>,
    true_order: Option<u64>,
    acceptable: BTreeSet<u64>,
    in_flight: BTreeMap<u64, Vec<(u64, u64)>>,
    next_order: u64,
    deposed: BTreeSet<u64>,
    // --- queue refinement ---
    /// Open references: minted, neither released nor collected yet.
    open: BTreeMap<u64, RefState>,
    /// Recently closed references (bounded; see [`CLOSED_REFS_KEPT`]).
    closed: BTreeMap<u64, RefState>,
    /// Highest closed reference evicted from `closed`.
    evicted_floor: u64,
    /// Highest effectively granted reference.
    max_granted: u64,
    /// Virtual timestamp of the key's most recent event.
    last_at_us: u64,
}

impl KeyState {
    /// Whether the key holds no active obligation: nothing granted,
    /// nothing in flight, no open reference (a held lock, an unclaimed
    /// lease, and a queued waiter all keep the key live).
    fn quiescent(&self) -> bool {
        self.holder.is_none() && self.open.is_empty() && self.in_flight.values().all(Vec::is_empty)
    }

    fn ref_mut(&mut self, r: u64) -> Option<&mut RefState> {
        if let Some(rs) = self.open.get_mut(&r) {
            return Some(rs);
        }
        self.closed.get_mut(&r)
    }

    /// Moves `r` from the open set into the bounded closed buffer.
    fn close_ref(&mut self, r: u64) {
        if let Some(rs) = self.open.remove(&r) {
            self.closed.insert(r, rs);
            while self.closed.len() > CLOSED_REFS_KEPT {
                if let Some((evicted, _)) = self.closed.pop_first() {
                    self.evicted_floor = self.evicted_floor.max(evicted);
                }
            }
        }
    }
}

/// The streaming checker. Feed events in sequence order via
/// [`OnlineChecker::push`]; snapshot the verdict any time with
/// [`OnlineChecker::report`].
#[derive(Debug, Default)]
pub struct OnlineChecker {
    cfg: OnlineConfig,
    ecf: EcfReport,
    queue_checked: u64,
    queue_violations: Vec<String>,
    orphan_collections: u64,
    untracked_ref_events: u64,
    events_seen: u64,
    sampled_out: u64,
    keys_retired: u64,
    peak_live: u64,
    keys: BTreeMap<String, KeyState>,
    last_seq: Option<u64>,
    now_us: u64,
}

impl OnlineChecker {
    /// A checker with the given window/sampling configuration.
    pub fn new(cfg: OnlineConfig) -> Self {
        OnlineChecker {
            cfg,
            ..Self::default()
        }
    }

    /// Number of keys currently holding state (the memory bound is
    /// proportional to this, not to events consumed).
    pub fn live_keys(&self) -> usize {
        self.keys.len()
    }

    /// Snapshot of the verdict so far.
    pub fn report(&self) -> OnlineReport {
        OnlineReport {
            ecf: self.ecf.clone(),
            queue_checked: self.queue_checked,
            queue_violations: self.queue_violations.clone(),
            orphan_collections: self.orphan_collections,
            untracked_ref_events: self.untracked_ref_events,
            events_seen: self.events_seen,
            sampled_out: self.sampled_out,
            keys_live: self.keys.len() as u64,
            peak_live_keys: self.peak_live,
            keys_retired: self.keys_retired,
        }
    }

    /// Consumes one event. Events must arrive in assigned sequence order
    /// (the recorder guarantees this; a replayed log is already sorted).
    pub fn push(&mut self, e: &Event) {
        self.events_seen += 1;
        self.now_us = self.now_us.max(e.at_us);
        if let Some(prev) = self.last_seq {
            if e.seq <= prev {
                self.ecf
                    .violations
                    .push(format!("seq order broken: {} after {prev}", e.seq));
            }
        }
        self.last_seq = Some(e.seq);

        if let Some(key) = event_key(&e.kind) {
            if self.cfg.sample_every > 1
                && !crate::digest(key.as_bytes()).is_multiple_of(self.cfg.sample_every)
            {
                self.sampled_out += 1;
            } else {
                self.consume(key.to_string(), e);
            }
        }

        if self.cfg.window_us != u64::MAX && self.events_seen.is_multiple_of(SWEEP_INTERVAL) {
            self.sweep();
        }
    }

    /// Retires quiescent keys idle for at least one window.
    fn sweep(&mut self) {
        let window = self.cfg.window_us;
        let now = self.now_us;
        let mut retired = 0u64;
        self.keys.retain(|_, st| {
            let retire = st.quiescent() && now.saturating_sub(st.last_at_us) >= window;
            if retire {
                retired += 1;
            }
            !retire
        });
        self.keys_retired += retired;
    }

    fn consume(&mut self, key: String, e: &Event) {
        let st = self.keys.entry(key).or_default();
        st.last_at_us = st.last_at_us.max(e.at_us);
        let live = self.keys.len() as u64;
        self.peak_live = self.peak_live.max(live);
        // Re-borrow (entry above consumed the key string).
        let Some(key) = event_key(&e.kind) else {
            return;
        };
        let key = key.to_string();
        let st = self.keys.get_mut(&key).expect("key state just inserted");

        match &e.kind {
            EventKind::LockEnqueue { lock_ref, .. } => {
                self.queue_checked += 1;
                let rs = st.open.entry(*lock_ref).or_default();
                rs.enqueued = true;
            }
            EventKind::LeaseGrant { lock_ref, .. } => {
                self.queue_checked += 1;
                match st.ref_mut(*lock_ref) {
                    // A retried release LWT can adopt and re-announce the
                    // same lease row; only re-minting a reference that
                    // already progressed past "unclaimed lease" is an
                    // anomaly.
                    Some(rs) if rs.granted || rs.released || rs.deposed => {
                        self.queue_violations.push(format!(
                            "queue: lease mint of existing reference {lock_ref} on {key:?} \
                             at seq {}",
                            e.seq
                        ));
                    }
                    Some(_) => {}
                    None => {
                        let rs = st.open.entry(*lock_ref).or_default();
                        rs.enqueued = true;
                        rs.leased = true;
                    }
                }
            }
            EventKind::LeaseBreak { lock_ref, .. } => {
                // Bookkeeping only: the deposal is carried by the
                // accompanying forcedRelease event.
                if let Some(rs) = st.ref_mut(*lock_ref) {
                    rs.leased = false;
                }
            }
            EventKind::LockGrant { lock_ref, .. } => {
                self.queue_checked += 1;
                self.check_grant(&key, *lock_ref, e.seq);
                // ECF core (identical to the offline checker).
                let st = self.keys.get_mut(&key).expect("key state exists");
                if st.deposed.contains(lock_ref) {
                    self.ecf.zombie_grants += 1;
                    return;
                }
                self.ecf.grants += 1;
                if let Some(holder) = st.holder {
                    if holder != *lock_ref {
                        self.ecf.violations.push(format!(
                            "exclusivity: grant of {lock_ref} on {key:?} at seq {} \
                             while {holder} still holds the lock",
                            e.seq
                        ));
                    }
                }
                st.holder = Some(*lock_ref);
            }
            EventKind::LockRelease { lock_ref, .. }
            | EventKind::LockForcedRelease { lock_ref, .. } => {
                let forced = matches!(e.kind, EventKind::LockForcedRelease { .. });
                self.queue_checked += 1;
                self.check_close(&key, *lock_ref, forced, e.seq);
                let st = self.keys.get_mut(&key).expect("key state exists");
                if forced {
                    self.ecf.forced_releases += 1;
                    st.deposed.insert(*lock_ref);
                }
                if st.holder == Some(*lock_ref) {
                    st.holder = None;
                }
                if let Some(pending) = st.in_flight.remove(lock_ref) {
                    st.acceptable.extend(pending.into_iter().map(|(_, d)| d));
                }
            }
            EventKind::CritPutStart {
                lock_ref, digest, ..
            } => {
                let order = st.next_order;
                st.next_order += 1;
                st.in_flight
                    .entry(*lock_ref)
                    .or_default()
                    .push((order, *digest));
            }
            EventKind::CritPutAck {
                lock_ref, digest, ..
            } => {
                let order = {
                    let fl = st.in_flight.entry(*lock_ref).or_default();
                    match fl.iter().position(|&(_, d)| d == *digest) {
                        Some(i) => fl.remove(i).0,
                        None => {
                            let o = st.next_order;
                            st.next_order += 1;
                            o
                        }
                    }
                };
                if st.holder == Some(*lock_ref) {
                    self.ecf.put_acks += 1;
                    if st.true_order.is_none_or(|pinned| order >= pinned) {
                        st.true_value = Some(Some(*digest));
                        st.true_order = Some(order);
                        st.acceptable.clear();
                    }
                } else {
                    self.ecf.stale_put_acks += 1;
                    st.acceptable.insert(*digest);
                }
            }
            EventKind::CritGet {
                lock_ref, digest, ..
            } => {
                if st.holder != Some(*lock_ref) {
                    if st.deposed.contains(lock_ref) {
                        self.ecf.stale_reads += 1;
                        return;
                    }
                    self.ecf.violations.push(format!(
                        "exclusivity: critical read on {key:?} at seq {} by {lock_ref}, \
                         which does not hold the lock (holder: {:?})",
                        e.seq, st.holder
                    ));
                    return;
                }
                self.ecf.reads_checked += 1;
                let observed = *digest;
                let acceptable = match st.true_value {
                    None => true,
                    Some(t) => {
                        observed == t || observed.is_some_and(|d| st.acceptable.contains(&d))
                    }
                };
                if acceptable {
                    st.true_value = Some(observed);
                    st.true_order = None;
                    st.acceptable.clear();
                } else {
                    self.ecf.violations.push(format!(
                        "latest-state: critical read on {key:?} at seq {} returned \
                         {observed:016x?}, expected {:016x?} (or one of {} pending)",
                        e.seq,
                        st.true_value.unwrap(),
                        st.acceptable.len()
                    ));
                }
            }
            _ => {}
        }
    }

    /// Queue-refinement validation of one `lockGrant`.
    fn check_grant(&mut self, key: &str, r: u64, seq: u64) {
        let st = self.keys.get_mut(key).expect("key state exists");
        let max_granted = st.max_granted;
        let Some(rs) = st.ref_mut(r) else {
            if r <= st.evicted_floor {
                self.untracked_ref_events += 1;
            } else {
                self.queue_violations.push(format!(
                    "queue: grant of never-enqueued reference {r} on {key:?} at seq {seq}"
                ));
            }
            return;
        };
        if rs.deposed {
            if rs.granted {
                // The offline checker excuses this as a zombie; the queue
                // model knows the reference was already granted once and
                // then collected — a second grant is a resurrection.
                self.queue_violations.push(format!(
                    "queue: re-grant of collected reference {r} on {key:?} at seq {seq}"
                ));
            } else {
                // First announcement after the deposal: the legitimate
                // zombie-grant race (acquire round in flight when the
                // forced release landed). Void, benign.
                rs.granted = true;
            }
            return;
        }
        if rs.released {
            self.queue_violations.push(format!(
                "queue: grant of cleanly released reference {r} on {key:?} at seq {seq}"
            ));
            return;
        }
        if rs.granted {
            return; // duplicate winning poll: benign re-grant
        }
        rs.granted = true;
        rs.leased = false;
        if r < max_granted {
            self.queue_violations.push(format!(
                "queue: out-of-order grant of {r} on {key:?} at seq {seq} \
                 (a later reference {max_granted} was already granted)"
            ));
        }
        st.max_granted = st.max_granted.max(r);
    }

    /// Queue-refinement validation of one `lockRelease`/`lockForcedRelease`.
    fn check_close(&mut self, key: &str, r: u64, forced: bool, seq: u64) {
        let st = self.keys.get_mut(key).expect("key state exists");
        match st.ref_mut(r) {
            None => {
                if forced {
                    // Orphan collection: the mint's LWT committed but its
                    // coordinator never learned it, so no enqueue event
                    // exists. The watchdog collecting it is expected.
                    self.orphan_collections += 1;
                    let rs = st.open.entry(r).or_default();
                    rs.deposed = true;
                    st.close_ref(r);
                } else if r <= st.evicted_floor {
                    self.untracked_ref_events += 1;
                } else {
                    self.queue_violations.push(format!(
                        "queue: release of never-enqueued reference {r} on {key:?} at seq {seq}"
                    ));
                }
            }
            Some(rs) => {
                if forced {
                    rs.deposed = true;
                } else {
                    // A clean release must come from a holder (or be the
                    // voluntary relinquish of an unclaimed lease, or a
                    // retried duplicate of either).
                    if !rs.granted && !rs.leased && !rs.released && !rs.deposed {
                        self.queue_violations.push(format!(
                            "queue: release of never-granted reference {r} on {key:?} at seq {seq}"
                        ));
                    }
                    rs.released = true;
                }
                st.close_ref(r);
            }
        }
    }
}

/// The key an event is about, if any.
fn event_key(kind: &EventKind) -> Option<&str> {
    match kind {
        EventKind::LockEnqueue { key, .. }
        | EventKind::LockGrant { key, .. }
        | EventKind::LockRelease { key, .. }
        | EventKind::LockForcedRelease { key, .. }
        | EventKind::LeaseGrant { key, .. }
        | EventKind::LeaseBreak { key, .. }
        | EventKind::WatchdogPreempt { key, .. }
        | EventKind::CritPutStart { key, .. }
        | EventKind::CritPutAck { key, .. }
        | EventKind::CritGet { key, .. }
        | EventKind::SynchMark { key, .. } => Some(key),
        _ => None,
    }
}

/// Replays a full event log through a fresh unbounded [`OnlineChecker`] —
/// the streaming twin of [`crate::ecf::check`].
pub fn check_online(events: &[Event]) -> OnlineReport {
    let mut c = OnlineChecker::new(OnlineConfig::unbounded());
    for e in events {
        c.push(e);
    }
    c.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceId;

    fn ev(seq: u64, kind: EventKind) -> Event {
        Event {
            seq,
            at_us: seq * 10,
            trace: TraceId::default(),
            node: 0,
            kind,
        }
    }

    fn enqueue(seq: u64, r: u64) -> Event {
        ev(
            seq,
            EventKind::LockEnqueue {
                key: "k".into(),
                lock_ref: r,
            },
        )
    }

    fn grant(seq: u64, r: u64) -> Event {
        ev(
            seq,
            EventKind::LockGrant {
                key: "k".into(),
                lock_ref: r,
            },
        )
    }

    fn release(seq: u64, r: u64) -> Event {
        ev(
            seq,
            EventKind::LockRelease {
                key: "k".into(),
                lock_ref: r,
            },
        )
    }

    fn forced(seq: u64, r: u64) -> Event {
        ev(
            seq,
            EventKind::LockForcedRelease {
                key: "k".into(),
                lock_ref: r,
            },
        )
    }

    fn get(seq: u64, r: u64, d: Option<u64>) -> Event {
        ev(
            seq,
            EventKind::CritGet {
                key: "k".into(),
                lock_ref: r,
                digest: d,
            },
        )
    }

    /// One clean section on `key` with reference `r`; returns the next seq.
    fn section(events: &mut Vec<Event>, key: &str, mut seq: u64, r: u64) -> u64 {
        for kind in [
            EventKind::LockEnqueue {
                key: key.into(),
                lock_ref: r,
            },
            EventKind::LockGrant {
                key: key.into(),
                lock_ref: r,
            },
            EventKind::CritGet {
                key: key.into(),
                lock_ref: r,
                digest: None,
            },
            EventKind::LockRelease {
                key: key.into(),
                lock_ref: r,
            },
        ] {
            events.push(ev(seq, kind));
            seq += 1;
        }
        seq
    }

    #[test]
    fn clean_trace_passes_both_layers() {
        let mut events = Vec::new();
        let seq = section(&mut events, "k", 0, 1);
        section(&mut events, "k", seq, 2);
        let r = check_online(&events);
        assert!(r.ok(), "{:?} {:?}", r.ecf.violations, r.queue_violations);
        assert_eq!(r.ecf, crate::ecf::check(&events));
        assert_eq!(r.queue_checked, 6); // enqueue+grant+release per section
    }

    #[test]
    fn matches_offline_on_every_ecf_fixture() {
        // Every trace shape the offline checker's own unit tests cover:
        // handoffs, overlaps, zombies, stale reads/acks, pipelining.
        let put_start = |seq, r, d| {
            ev(
                seq,
                EventKind::CritPutStart {
                    key: "k".into(),
                    lock_ref: r,
                    digest: d,
                },
            )
        };
        let put_ack = |seq, r, d| {
            ev(
                seq,
                EventKind::CritPutAck {
                    key: "k".into(),
                    lock_ref: r,
                    digest: d,
                },
            )
        };
        let traces: Vec<Vec<Event>> = vec![
            vec![grant(0, 1), grant(1, 2)],
            vec![grant(0, 1), grant(1, 1), release(2, 1)],
            vec![
                grant(0, 1),
                get(1, 1, None),
                put_ack(2, 1, 0xa),
                release(3, 1),
                grant(4, 2),
                get(5, 2, None),
            ],
            vec![grant(0, 1), get(1, 2, None)],
            vec![
                grant(0, 1),
                forced(1, 1),
                put_ack(2, 1, 0xd),
                grant(3, 2),
                get(4, 2, Some(0xd)),
            ],
            vec![grant(5, 1), release(3, 1)],
            vec![
                grant(0, 1),
                forced(1, 1),
                grant(2, 1),
                grant(3, 2),
                release(4, 2),
            ],
            vec![grant(0, 1), forced(1, 1), grant(2, 2), grant(3, 3)],
            vec![
                grant(0, 1),
                put_ack(1, 1, 0xa),
                forced(2, 1),
                get(3, 1, Some(0xa)),
                grant(4, 2),
                get(5, 2, Some(0xa)),
            ],
            vec![grant(0, 1), release(1, 1), get(2, 1, None)],
            vec![
                grant(0, 1),
                put_start(1, 1, 0xa),
                put_start(2, 1, 0xb),
                put_ack(3, 1, 0xb),
                put_ack(4, 1, 0xa),
                get(5, 1, Some(0xb)),
                release(6, 1),
                grant(7, 2),
                get(8, 2, Some(0xb)),
            ],
            vec![
                grant(0, 1),
                put_ack(1, 1, 0xa),
                put_start(2, 1, 0xb),
                put_start(3, 1, 0xc),
                forced(4, 1),
                grant(5, 2),
                get(6, 2, Some(0xc)),
            ],
        ];
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(
                check_online(t).ecf,
                crate::ecf::check(t),
                "trace #{i} diverged"
            );
        }
    }

    #[test]
    fn out_of_order_grant_is_a_queue_violation_ecf_passes() {
        // Refs 1..3 all minted; the queue grants 1, then 3, then 2 —
        // FIFO refinement broken, yet every grant lands on an idle lock
        // so the end-to-end ECF predicate sees nothing.
        let trace = [
            enqueue(0, 1),
            enqueue(1, 2),
            enqueue(2, 3),
            grant(3, 1),
            release(4, 1),
            grant(5, 3),
            release(6, 3),
            grant(7, 2),
            release(8, 2),
        ];
        assert!(crate::ecf::check(&trace).ok());
        let r = check_online(&trace);
        assert!(r.ecf.ok());
        assert!(!r.ok());
        assert!(
            r.queue_violations[0].contains("out-of-order grant of 2"),
            "{:?}",
            r.queue_violations
        );
    }

    #[test]
    fn regrant_after_forced_release_is_a_queue_violation_ecf_passes() {
        // Reference 1 was granted, collected by the failure detector,
        // then granted AGAIN: the offline checker excuses the second
        // grant as a zombie, but the queue model knows 1 already held —
        // a tombstoned row was resurrected.
        let trace = [
            enqueue(0, 1),
            grant(1, 1),
            forced(2, 1),
            enqueue(3, 2),
            grant(4, 2),
            release(5, 2),
            grant(6, 1),
        ];
        let off = crate::ecf::check(&trace);
        assert!(off.ok(), "{:?}", off.violations);
        assert_eq!(off.zombie_grants, 1);
        let r = check_online(&trace);
        assert!(r.ecf.ok());
        assert!(!r.ok());
        assert!(
            r.queue_violations[0].contains("re-grant of collected reference 1"),
            "{:?}",
            r.queue_violations
        );
    }

    #[test]
    fn grant_after_clean_release_is_a_queue_violation_ecf_passes() {
        let mut trace = Vec::new();
        let seq = section(&mut trace, "k", 0, 1);
        let seq = section(&mut trace, "k", seq, 2);
        trace.push(grant(seq, 1)); // resurrect the released ref
        assert!(crate::ecf::check(&trace).ok());
        let r = check_online(&trace);
        assert!(!r.ok());
        assert!(
            r.queue_violations[0].contains("grant of cleanly released reference 1"),
            "{:?}",
            r.queue_violations
        );
    }

    #[test]
    fn grant_of_unminted_reference_is_a_queue_violation() {
        let trace = [enqueue(0, 1), grant(1, 1), release(2, 1), grant(3, 7)];
        assert!(crate::ecf::check(&trace).ok());
        let r = check_online(&trace);
        assert!(!r.ok());
        assert!(
            r.queue_violations[0].contains("never-enqueued reference 7"),
            "{:?}",
            r.queue_violations
        );
    }

    #[test]
    fn zombie_first_grant_and_orphan_collection_are_benign() {
        // forcedRelease lands first (emitted at the abdication point),
        // the in-flight acquire announces afterwards: benign. A forced
        // release of a reference never minted in the trace is orphan
        // collection: benign too.
        let trace = [
            enqueue(0, 1),
            forced(1, 1),
            grant(2, 1),   // zombie first announcement
            forced(3, 99), // orphan collection
            enqueue(4, 2),
            grant(5, 2),
            release(6, 2),
        ];
        let r = check_online(&trace);
        assert!(r.ok(), "{:?} {:?}", r.ecf.violations, r.queue_violations);
        assert_eq!(r.orphan_collections, 1);
        assert_eq!(r.ecf.zombie_grants, 1);
    }

    #[test]
    fn lease_lifecycle_is_modeled() {
        let lease = |seq, r| {
            ev(
                seq,
                EventKind::LeaseGrant {
                    key: "k".into(),
                    lock_ref: r,
                    until_us: 1_000_000,
                },
            )
        };
        // Mint → claim → clean release: fine. Duplicate mint of the
        // unclaimed lease (retried release LWT): fine. Relinquish of an
        // unclaimed lease (release without grant): fine.
        let trace = [
            enqueue(0, 1),
            grant(1, 1),
            release(2, 1),
            lease(3, 2),
            lease(4, 2),
            grant(5, 2),
            release(6, 2),
            lease(7, 3),
            release(8, 3), // voluntary relinquish, never claimed
        ];
        let r = check_online(&trace);
        assert!(r.ok(), "{:?} {:?}", r.ecf.violations, r.queue_violations);

        // Re-minting a lease over a reference that already progressed is
        // an anomaly.
        let bad = [
            enqueue(0, 1),
            grant(1, 1),
            release(2, 1),
            lease(3, 1), // re-mint of the released reference
        ];
        let r = check_online(&bad);
        assert!(!r.ok());
        assert!(
            r.queue_violations[0].contains("lease mint of existing reference 1"),
            "{:?}",
            r.queue_violations
        );
    }

    #[test]
    fn release_of_never_granted_reference_is_flagged() {
        let trace = [enqueue(0, 1), enqueue(1, 2), grant(2, 1), release(3, 2)];
        let r = check_online(&trace);
        assert!(
            r.queue_violations[0].contains("release of never-granted reference 2"),
            "{:?}",
            r.queue_violations
        );
    }

    #[test]
    fn windowed_checker_retires_quiescent_keys() {
        let mut c = OnlineChecker::new(OnlineConfig::windowed(1_000));
        let total_keys = 100 * SWEEP_INTERVAL / 4; // many distinct keys
        let mut seq = 0u64;
        for k in 0..total_keys {
            let key = format!("key-{k}");
            let mut events = Vec::new();
            seq = section(&mut events, &key, seq, 1);
            for e in &events {
                c.push(e);
            }
        }
        let r = c.report();
        assert!(r.ok(), "{:?} {:?}", r.ecf.violations, r.queue_violations);
        assert!(r.keys_retired > 0);
        assert!(
            c.live_keys() as u64 <= 2 * SWEEP_INTERVAL,
            "live {} for {} keys",
            c.live_keys(),
            total_keys
        );
    }

    #[test]
    fn held_keys_survive_the_window() {
        let mut c = OnlineChecker::new(OnlineConfig::windowed(10));
        c.push(&enqueue(0, 1));
        c.push(&grant(1, 1));
        // Spin far past the window on another key; "k" stays held.
        let mut seq = 2;
        for k in 0..3 * SWEEP_INTERVAL {
            let key = format!("other-{k}");
            let mut events = Vec::new();
            seq = section(&mut events, &key, seq, 1);
            for e in &mut events {
                e.at_us = 1_000_000 + e.seq;
                c.push(e);
            }
        }
        // The holder read on "k" is still checked against live state.
        let mut late = get(seq, 1, None);
        late.at_us = 10_000_000;
        c.push(&late);
        let r = c.report();
        assert!(r.ok(), "{:?}", r.ecf.violations);
        assert_eq!(r.ecf.reads_checked, 1 + 3 * SWEEP_INTERVAL);
        assert!(r.keys_retired > 0);
    }

    #[test]
    fn sampling_skips_whole_keys_deterministically() {
        let mut c = OnlineChecker::new(OnlineConfig::unbounded().with_sampling(2));
        let mut seq = 0;
        let mut checked_keys = 0u64;
        for k in 0..32 {
            let key = format!("key-{k}");
            if crate::digest(key.as_bytes()).is_multiple_of(2) {
                checked_keys += 1;
            }
            let mut events = Vec::new();
            seq = section(&mut events, &key, seq, 1);
            for e in &events {
                c.push(e);
            }
        }
        let r = c.report();
        assert!(r.ok());
        assert!(checked_keys > 0 && checked_keys < 32, "digest split");
        assert_eq!(r.queue_checked, checked_keys * 3);
        assert_eq!(r.sampled_out, (32 - checked_keys) * 4);
    }

    #[test]
    fn report_json_shares_the_ecf_field_layout() {
        let r = check_online(&[grant(0, 1), release(1, 1)]);
        let json = r.to_json();
        assert!(
            json.starts_with("{\"kind\":\"ecfOnline\",\"ok\":"),
            "{json}"
        );
        assert!(json.contains("\"grants\":1"), "{json}");
        assert!(json.contains("\"queueChecked\":"), "{json}");
        assert!(json.ends_with("}"), "{json}");
    }
}
