//! Trace-based checker of the ECF properties (§IV of the paper).
//!
//! Replays a recorded event log and verifies, per key:
//!
//! * **Exclusivity** — lock grants never overlap: between a
//!   `lockGrant(r)` and the matching `lockRelease`/`lockForcedRelease`,
//!   no other reference is granted; and every successful critical read
//!   was issued by the reference holding the lock at that instant.
//! * **Latest-State** — every `critGet` by the holder returns the *true
//!   value*: the digest of the most recent quorum-acknowledged
//!   `critPutAck`, refined (as the paper refines it, §IV-B) when the
//!   previous holder was forcibly released mid-put: a put that was
//!   started but never acknowledged before the preemption **may** be
//!   what the next holder reads, because the resynchronization rewrite
//!   pins whichever value the grant-time quorum read observed.
//!
//! The checker is deliberately conservative about acknowledged writes
//! from *preempted* holders (the false-failure-detection case): such
//! acks are counted as `stale_put_acks`, not violations — MUSIC's
//! `v2s` stamping makes them invisible rather than impossible, so a
//! correct run can contain them. A holder's read is the authoritative
//! observation that collapses the acceptable set back to one value.
//!
//! The same reasoning extends to the other two acts a preempted-but-alive
//! reference can still perform (§IV-B permits all of them transiently,
//! because the local lock peek is eventual by design, §IV-A):
//!
//! * a **zombie grant** — an `acquireLock` round that was already in
//!   flight when the forced release landed announces `lockGrant` *after*
//!   the `lockForcedRelease`. The reference's entitlement is formally
//!   dead (the covering `synchFlag` stamp dominates anything it writes),
//!   so the grant is void: counted as `zombie_grants`, it does not
//!   reinstate holdership and does not overlap the successor's grant;
//! * a **stale read** — a `critGet` whose guard passed before the
//!   preemption but whose quorum read completed after it. Counted as
//!   `stale_reads`; its value is not checked (read-only, and the client
//!   will learn `youAreNoLongerLockHolder` on its next guarded act).
//!
//! Both remain violations for references that were *never* force-released:
//! a grant overlapping a live holder, or a read by a reference that never
//! held (or cleanly released) the lock, is a genuine exclusivity breach.

use std::collections::{BTreeMap, BTreeSet};

use crate::event::{Event, EventKind};

/// Outcome of replaying one event log through the checker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EcfReport {
    /// Violations found (empty iff `ok`).
    pub violations: Vec<String>,
    /// Lock grants checked for overlap.
    pub grants: u64,
    /// Critical reads whose value was verified.
    pub reads_checked: u64,
    /// Critical put acks observed from the current holder.
    pub put_acks: u64,
    /// Put acks from a reference that no longer held the lock (allowed:
    /// their stamps are dominated, §IV-B).
    pub stale_put_acks: u64,
    /// Forced releases observed.
    pub forced_releases: u64,
    /// Grants announced for a reference *after* its forced release (an
    /// acquire round that raced the failure detector): void, not an
    /// overlap. See the module docs.
    pub zombie_grants: u64,
    /// Critical reads that completed after their reference was forcibly
    /// released: allowed transiently, value unchecked.
    pub stale_reads: u64,
}

impl EcfReport {
    /// Whether both ECF properties held over the whole trace.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One JSON object on a single line, e.g.
    /// `{"kind":"ecf","ok":true,"grants":3,...,"violations":[]}`.
    pub fn to_json(&self) -> String {
        let mut o = crate::json::Obj::new("ecf");
        self.write_fields(&mut o);
        o.finish()
    }

    /// Writes this report's fields into `o` (shared with the online
    /// report, which embeds the same ECF core under the same field names).
    pub(crate) fn write_fields(&self, o: &mut crate::json::Obj) {
        o.bool("ok", self.ok())
            .u64("grants", self.grants)
            .u64("readsChecked", self.reads_checked)
            .u64("putAcks", self.put_acks)
            .u64("stalePutAcks", self.stale_put_acks)
            .u64("forcedReleases", self.forced_releases)
            .u64("zombieGrants", self.zombie_grants)
            .u64("staleReads", self.stale_reads)
            .str_list("violations", &self.violations);
    }
}

impl std::fmt::Display for EcfReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ecf: {} ({} grants ({} zombie), {} reads checked ({} stale), \
             {} put acks ({} stale), {} forced releases",
            if self.ok() { "OK" } else { "VIOLATED" },
            self.grants,
            self.zombie_grants,
            self.reads_checked,
            self.stale_reads,
            self.put_acks,
            self.stale_put_acks,
            self.forced_releases
        )?;
        if !self.ok() {
            write!(f, "; {} violations", self.violations.len())?;
        }
        write!(f, ")")
    }
}

#[derive(Debug, Default)]
struct KeyState {
    /// Reference currently holding the lock, if any.
    holder: Option<u64>,
    /// Digest of the authoritative ("true") value once one is known.
    /// `Some(None)` = the key is known absent; `None` = not yet pinned.
    true_value: Option<Option<u64>>,
    /// Issue order of the pinned put, when the pin came from an ack.
    /// Pipelined acks can arrive out of issue order; the store's
    /// last-write-wins value is the latest-*stamped* (= latest-issued)
    /// write, so a late ack of an earlier put must not steal the pin.
    true_order: Option<u64>,
    /// Digests that may legitimately be observed instead of
    /// `true_value`: writes in flight when their writer lost the lock,
    /// plus dominated acks (see module docs).
    acceptable: BTreeSet<u64>,
    /// Un-acknowledged puts per reference, as `(issue order, digest)` in
    /// issue order.
    in_flight: BTreeMap<u64, Vec<(u64, u64)>>,
    /// Next issue-order number for this key.
    next_order: u64,
    /// References that have been forcibly released; their late grants and
    /// reads are void/stale rather than violations (see module docs).
    deposed: BTreeSet<u64>,
}

/// Replays `events` (in slice order, which must be seq order) and checks
/// the ECF properties. See the module docs for the exact rules.
pub fn check(events: &[Event]) -> EcfReport {
    let mut report = EcfReport::default();
    let mut keys: BTreeMap<&str, KeyState> = BTreeMap::new();
    let mut last_seq: Option<u64> = None;

    for e in events {
        if let Some(prev) = last_seq {
            if e.seq <= prev {
                report
                    .violations
                    .push(format!("seq order broken: {} after {prev}", e.seq));
            }
        }
        last_seq = Some(e.seq);

        match &e.kind {
            EventKind::LockGrant { key, lock_ref } => {
                let st = keys.entry(key).or_default();
                // A grant announced after the reference's forced release is
                // the zombie-grant race: void, not a reinstatement.
                if st.deposed.contains(lock_ref) {
                    report.zombie_grants += 1;
                    continue;
                }
                report.grants += 1;
                // Re-granting the reference that already holds the lock is
                // a duplicate winning poll, not an overlap.
                if let Some(holder) = st.holder {
                    if holder != *lock_ref {
                        report.violations.push(format!(
                            "exclusivity: grant of {lock_ref} on {key:?} at seq {} \
                             while {holder} still holds the lock",
                            e.seq
                        ));
                    }
                }
                st.holder = Some(*lock_ref);
            }
            EventKind::LockRelease { key, lock_ref }
            | EventKind::LockForcedRelease { key, lock_ref } => {
                let forced = matches!(e.kind, EventKind::LockForcedRelease { .. });
                let st = keys.entry(key).or_default();
                if forced {
                    report.forced_releases += 1;
                    st.deposed.insert(*lock_ref);
                }
                if st.holder == Some(*lock_ref) {
                    st.holder = None;
                }
                // Whatever this reference still had in flight may have
                // landed (and may be pinned by the next grant's
                // resynchronization): keep those digests acceptable.
                if let Some(pending) = st.in_flight.remove(lock_ref) {
                    st.acceptable.extend(pending.into_iter().map(|(_, d)| d));
                }
            }
            EventKind::CritPutStart {
                key,
                lock_ref,
                digest,
            } => {
                let st = keys.entry(key).or_default();
                let order = st.next_order;
                st.next_order += 1;
                st.in_flight
                    .entry(*lock_ref)
                    .or_default()
                    .push((order, *digest));
            }
            EventKind::CritPutAck {
                key,
                lock_ref,
                digest,
            } => {
                let st = keys.entry(key).or_default();
                // Match the ack to its start; an ack without a recorded
                // start (degenerate traces) counts as the newest issue.
                let order = {
                    let fl = st.in_flight.entry(*lock_ref).or_default();
                    match fl.iter().position(|&(_, d)| d == *digest) {
                        Some(i) => fl.remove(i).0,
                        None => {
                            let o = st.next_order;
                            st.next_order += 1;
                            o
                        }
                    }
                };
                if st.holder == Some(*lock_ref) {
                    report.put_acks += 1;
                    // Acknowledged by the current holder: the new true
                    // value — unless a *later-issued* (higher-stamped) put
                    // already acked, in which case this late ack is
                    // dominated under last-write-wins and changes nothing.
                    if st.true_order.is_none_or(|pinned| order >= pinned) {
                        st.true_value = Some(Some(*digest));
                        st.true_order = Some(order);
                        st.acceptable.clear();
                    }
                } else {
                    // Ack from a preempted holder: dominated, not the
                    // true value — but a grant-time resynchronization may
                    // still pin it, so it stays acceptable.
                    report.stale_put_acks += 1;
                    st.acceptable.insert(*digest);
                }
            }
            EventKind::CritGet {
                key,
                lock_ref,
                digest,
            } => {
                let st = keys.entry(key).or_default();
                if st.holder != Some(*lock_ref) {
                    // A deposed reference's read that completed after its
                    // forced release: transiently allowed, value unchecked.
                    if st.deposed.contains(lock_ref) {
                        report.stale_reads += 1;
                        continue;
                    }
                    report.violations.push(format!(
                        "exclusivity: critical read on {key:?} at seq {} by {lock_ref}, \
                         which does not hold the lock (holder: {:?})",
                        e.seq, st.holder
                    ));
                    continue;
                }
                report.reads_checked += 1;
                let observed = *digest;
                let acceptable = match st.true_value {
                    None => true, // nothing pinned yet: first observation
                    Some(t) => {
                        observed == t || observed.is_some_and(|d| st.acceptable.contains(&d))
                    }
                };
                if acceptable {
                    // The holder's read fixes the true value (Latest-State:
                    // what it saw is what subsequent holders must build on).
                    st.true_value = Some(observed);
                    st.true_order = None;
                    st.acceptable.clear();
                } else {
                    report.violations.push(format!(
                        "latest-state: critical read on {key:?} at seq {} returned \
                         {observed:016x?}, expected {:016x?} (or one of {} pending)",
                        e.seq,
                        st.true_value.unwrap(),
                        st.acceptable.len()
                    ));
                }
            }
            _ => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceId;

    fn ev(seq: u64, kind: EventKind) -> Event {
        Event {
            seq,
            at_us: seq * 10,
            trace: TraceId::default(),
            node: 0,
            kind,
        }
    }

    fn grant(seq: u64, r: u64) -> Event {
        ev(
            seq,
            EventKind::LockGrant {
                key: "k".into(),
                lock_ref: r,
            },
        )
    }

    fn release(seq: u64, r: u64) -> Event {
        ev(
            seq,
            EventKind::LockRelease {
                key: "k".into(),
                lock_ref: r,
            },
        )
    }

    fn put_ack(seq: u64, r: u64, d: u64) -> Event {
        ev(
            seq,
            EventKind::CritPutAck {
                key: "k".into(),
                lock_ref: r,
                digest: d,
            },
        )
    }

    fn get(seq: u64, r: u64, d: Option<u64>) -> Event {
        ev(
            seq,
            EventKind::CritGet {
                key: "k".into(),
                lock_ref: r,
                digest: d,
            },
        )
    }

    #[test]
    fn clean_handoff_passes() {
        let trace = [
            grant(0, 1),
            get(1, 1, None),
            put_ack(2, 1, 0xa),
            release(3, 1),
            grant(4, 2),
            get(5, 2, Some(0xa)),
            put_ack(6, 2, 0xb),
            get(7, 2, Some(0xb)),
            release(8, 2),
        ];
        let r = check(&trace);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.grants, 2);
        assert_eq!(r.reads_checked, 3);
    }

    #[test]
    fn overlapping_grants_are_flagged() {
        let trace = [grant(0, 1), grant(1, 2)];
        let r = check(&trace);
        assert!(!r.ok());
        assert!(r.violations[0].contains("exclusivity"));
    }

    #[test]
    fn regrant_of_the_same_reference_is_benign() {
        // Duplicate winning poll: acquireLock returned Acquired twice for
        // the same reference before the holder proceeded.
        let trace = [grant(0, 1), grant(1, 1), release(2, 1)];
        let r = check(&trace);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.grants, 2);
    }

    #[test]
    fn stale_read_of_old_value_is_flagged() {
        let trace = [
            grant(0, 1),
            get(1, 1, None),
            put_ack(2, 1, 0xa),
            release(3, 1),
            grant(4, 2),
            get(5, 2, None), // lost the acknowledged write
        ];
        let r = check(&trace);
        assert!(!r.ok());
        assert!(r.violations[0].contains("latest-state"));
    }

    #[test]
    fn mid_put_preemption_accepts_either_value() {
        let put_start = ev(
            2,
            EventKind::CritPutStart {
                key: "k".into(),
                lock_ref: 1,
                digest: 0xb,
            },
        );
        let forced = ev(
            3,
            EventKind::LockForcedRelease {
                key: "k".into(),
                lock_ref: 1,
            },
        );
        // The dying holder's put may or may not have landed: both the old
        // acknowledged value and the in-flight one are acceptable.
        for observed in [Some(0xa), Some(0xb)] {
            let trace = [
                grant(0, 1),
                put_ack(1, 1, 0xa),
                put_start.clone(),
                forced.clone(),
                grant(4, 2),
                get(5, 2, observed),
            ];
            let r = check(&trace);
            assert!(r.ok(), "observed {observed:?}: {:?}", r.violations);
            assert_eq!(r.forced_releases, 1);
        }
        // ... but a third value nobody wrote is a violation.
        let trace = [
            grant(0, 1),
            put_ack(1, 1, 0xa),
            put_start,
            forced,
            grant(4, 2),
            get(5, 2, Some(0xc)),
        ];
        assert!(!check(&trace).ok());
    }

    #[test]
    fn read_collapses_the_acceptable_set() {
        let trace = [
            grant(0, 1),
            put_ack(1, 1, 0xa),
            ev(
                2,
                EventKind::CritPutStart {
                    key: "k".into(),
                    lock_ref: 1,
                    digest: 0xb,
                },
            ),
            ev(
                3,
                EventKind::LockForcedRelease {
                    key: "k".into(),
                    lock_ref: 1,
                },
            ),
            grant(4, 2),
            get(5, 2, Some(0xa)), // holder observed the old value: pinned
            get(6, 2, Some(0xb)), // ...so the in-flight one is now wrong
        ];
        let r = check(&trace);
        assert!(!r.ok());
    }

    #[test]
    fn non_holder_read_is_flagged() {
        let trace = [grant(0, 1), get(1, 2, None)];
        let r = check(&trace);
        assert!(!r.ok());
        assert!(r.violations[0].contains("does not hold"));
    }

    #[test]
    fn stale_ack_is_counted_not_flagged() {
        let trace = [
            grant(0, 1),
            ev(
                1,
                EventKind::LockForcedRelease {
                    key: "k".into(),
                    lock_ref: 1,
                },
            ),
            put_ack(2, 1, 0xd), // preempted holder's write still acked
            grant(3, 2),
            get(4, 2, Some(0xd)), // resynchronization pinned it: fine
        ];
        let r = check(&trace);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.stale_put_acks, 1);
    }

    #[test]
    fn seq_regression_is_flagged() {
        let trace = [grant(5, 1), release(3, 1)];
        assert!(!check(&trace).ok());
    }

    fn forced(seq: u64, r: u64) -> Event {
        ev(
            seq,
            EventKind::LockForcedRelease {
                key: "k".into(),
                lock_ref: r,
            },
        )
    }

    #[test]
    fn zombie_grant_after_forced_release_is_void() {
        // Reference 1's acquire round was in flight when the watchdog
        // preempted it; its grant lands after the forcedRelease. It must
        // not reinstate holdership — the successor's grant is legitimate.
        let trace = [
            grant(0, 1),
            forced(1, 1),
            grant(2, 1), // zombie
            grant(3, 2),
            release(4, 2),
        ];
        let r = check(&trace);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.zombie_grants, 1);
        assert_eq!(r.grants, 2, "zombie grants are not counted as grants");
        let json = r.to_json();
        assert!(json.contains("\"zombieGrants\":1"), "{json}");
    }

    #[test]
    fn zombie_grant_does_not_excuse_a_genuine_overlap() {
        // Reference 3 was never force-released: granting it over a live
        // holder stays a violation even amid zombie traffic.
        let trace = [grant(0, 1), forced(1, 1), grant(2, 2), grant(3, 3)];
        let r = check(&trace);
        assert!(!r.ok());
        assert!(r.violations[0].contains("grant of 3"));
    }

    #[test]
    fn deposed_reference_read_is_counted_not_flagged() {
        // The guard passed before the preemption; the quorum read
        // completed after it. Transiently allowed, value unchecked.
        let trace = [
            grant(0, 1),
            put_ack(1, 1, 0xa),
            forced(2, 1),
            get(3, 1, Some(0xa)),
            grant(4, 2),
            get(5, 2, Some(0xa)),
        ];
        let r = check(&trace);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.stale_reads, 1);
        assert_eq!(r.reads_checked, 1, "only the holder's read is checked");
        assert!(r.to_json().contains("\"staleReads\":1"));
    }

    #[test]
    fn cleanly_released_reference_read_is_still_flagged() {
        // A clean releaser knows it released: reading afterwards is a
        // client bug, not a failure-detection race.
        let trace = [grant(0, 1), release(1, 1), get(2, 1, None)];
        let r = check(&trace);
        assert!(!r.ok());
        assert!(r.violations[0].contains("does not hold"));
    }

    fn put_start(seq: u64, r: u64, d: u64) -> Event {
        ev(
            seq,
            EventKind::CritPutStart {
                key: "k".into(),
                lock_ref: r,
                digest: d,
            },
        )
    }

    #[test]
    fn out_of_order_acks_pin_the_latest_issued_write() {
        // Pipelined holder: two puts in flight, acks arrive inverted.
        // Last-write-wins is decided by issue (stamp) order, so the true
        // value is 0xb even though 0xa acked last.
        let trace = [
            grant(0, 1),
            put_start(1, 1, 0xa),
            put_start(2, 1, 0xb),
            put_ack(3, 1, 0xb),
            put_ack(4, 1, 0xa), // late ack of the earlier put: dominated
            get(5, 1, Some(0xb)),
            release(6, 1),
            grant(7, 2),
            get(8, 2, Some(0xb)),
        ];
        let r = check(&trace);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.put_acks, 2);

        // Reading the dominated value instead is a violation.
        let bad = [
            grant(0, 1),
            put_start(1, 1, 0xa),
            put_start(2, 1, 0xb),
            put_ack(3, 1, 0xb),
            put_ack(4, 1, 0xa),
            get(5, 1, Some(0xa)),
        ];
        assert!(!check(&bad).ok());
    }

    #[test]
    fn pipelined_crash_leaves_every_in_flight_write_acceptable() {
        // A pipelined holder dies with several writes in flight; the next
        // holder may observe any of them (or the last acknowledged value).
        let forced = ev(
            5,
            EventKind::LockForcedRelease {
                key: "k".into(),
                lock_ref: 1,
            },
        );
        for observed in [Some(0xa), Some(0xb), Some(0xc)] {
            let trace = [
                grant(0, 1),
                put_ack(1, 1, 0xa),
                put_start(2, 1, 0xb),
                put_start(3, 1, 0xc),
                forced.clone(),
                grant(6, 2),
                get(7, 2, observed),
            ];
            let r = check(&trace);
            assert!(r.ok(), "observed {observed:?}: {:?}", r.violations);
        }
    }
}
