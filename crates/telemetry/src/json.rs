//! Minimal JSON emission helpers (strings and hex digests only; every
//! other field in the schema is a plain integer or boolean).

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a digest as a fixed-width hex JSON string (u64 values exceed
/// the 2^53 range JSON numbers can carry exactly).
pub(crate) fn push_hex(out: &mut String, v: u64) {
    out.push('"');
    out.push_str(&format!("{v:016x}"));
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\u{1}e");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    fn hex_is_fixed_width() {
        let mut out = String::new();
        push_hex(&mut out, 0x2a);
        assert_eq!(out, "\"000000000000002a\"");
    }
}
