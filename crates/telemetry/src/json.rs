//! Minimal JSON emission helpers (strings and hex digests only; every
//! other field in the schema is a plain integer or boolean).

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a digest as a fixed-width hex JSON string (u64 values exceed
/// the 2^53 range JSON numbers can carry exactly).
pub(crate) fn push_hex(out: &mut String, v: u64) {
    out.push('"');
    out.push_str(&format!("{v:016x}"));
    out.push('"');
}

/// Builder for one single-line JSON object — the shared serializer behind
/// every checker report (`EcfReport`, `OnlineReport`, ...). Fields are
/// emitted in call order so the output stays byte-stable.
pub(crate) struct Obj {
    out: String,
}

impl Obj {
    /// Opens an object tagged `{"kind":"<kind>", ...`.
    pub(crate) fn new(kind: &str) -> Self {
        let mut out = String::from("{\"kind\":");
        push_str(&mut out, kind);
        Obj { out }
    }

    fn key(&mut self, k: &str) {
        self.out.push(',');
        push_str(&mut self.out, k);
        self.out.push(':');
    }

    /// Emits `"k":true|false`.
    pub(crate) fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Emits `"k":<n>`.
    pub(crate) fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        use std::fmt::Write;
        self.key(k);
        let _ = write!(self.out, "{v}");
        self
    }

    /// Emits `"k":["s",...]` with every element string-escaped.
    pub(crate) fn str_list(&mut self, k: &str, items: &[String]) -> &mut Self {
        self.key(k);
        self.out.push('[');
        for (i, v) in items.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            push_str(&mut self.out, v);
        }
        self.out.push(']');
        self
    }

    /// Closes the object and returns the line.
    pub(crate) fn finish(self) -> String {
        let mut out = self.out;
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\u{1}e");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    fn hex_is_fixed_width() {
        let mut out = String::new();
        push_hex(&mut out, 0x2a);
        assert_eq!(out, "\"000000000000002a\"");
    }

    #[test]
    fn obj_builder_emits_fields_in_call_order() {
        let mut o = Obj::new("ecf");
        o.bool("ok", true)
            .u64("grants", 3)
            .str_list("violations", &["a\"b".to_string()]);
        assert_eq!(
            o.finish(),
            "{\"kind\":\"ecf\",\"ok\":true,\"grants\":3,\"violations\":[\"a\\\"b\"]}"
        );
    }
}
