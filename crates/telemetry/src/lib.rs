//! # music-telemetry
//!
//! Structured protocol telemetry for the MUSIC reproduction:
//!
//! * a typed, causally-ordered **event log** ([`Event`], [`EventKind`]):
//!   every record carries the virtual timestamp, a monotone sequence
//!   number (a total order — the simulator is single-threaded, so the
//!   sequence *is* a causal order), the emitting node, and a trace id
//!   that groups the events of one client-visible operation across
//!   layers (MUSIC op → quorum store → Paxos LWT → network messages);
//! * a **metrics registry** ([`MetricsRegistry`]) of per-node / per-site /
//!   per-link counters and gauges, snapshot-able and JSON-exportable;
//! * a hierarchical **span layer** ([`span`]): every critical section
//!   becomes a tree of timed phase spans (enqueue LWT → head-wait →
//!   headship confirm → data ops → flush → release), with a
//!   well-formedness checker and a Chrome-trace-event export;
//! * a trace-based **ECF checker** ([`ecf::check`]) that replays a
//!   recorded event log and verifies the paper's Exclusivity and
//!   Latest-State properties (§IV);
//! * a streaming **online checker** ([`online`]) — the same ECF
//!   predicates evaluated incrementally in O(live keys) memory, plus a
//!   lock-queue refinement layer, attachable to any recorder so the run
//!   is checked *while it executes*;
//! * JSON-lines serialization of events and metric snapshots (hand
//!   rolled — no external JSON dependency), byte-stable across runs with
//!   the same seed.
//!
//! The crate sits *below* the simulator: it has no dependencies, so every
//! layer of the stack (including `music-simnet` itself) can emit into it.
//! Recording is **zero-perturbation**: the [`Recorder`] never consumes
//! randomness, spawns tasks, or touches timers — it only appends to an
//! in-memory log — so a seeded simulation produces the identical
//! virtual-time schedule with telemetry on or off.
//!
//! ## Quickstart
//!
//! ```
//! use music_telemetry::{EventKind, Recorder, Scope};
//!
//! let rec = Recorder::tracing();
//! let trace = rec.next_trace();
//! rec.record(10, trace, 0, EventKind::LockGrant { key: "k".into(), lock_ref: 1 });
//! rec.count(Scope::Node(0), "lock_grants", 1);
//!
//! assert_eq!(rec.events().len(), 1);
//! assert_eq!(rec.metrics().get(Scope::Node(0), "lock_grants"), 1);
//! let report = music_telemetry::ecf::check(&rec.events());
//! assert!(report.ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ecf;
mod event;
mod json;
mod metrics;
pub mod online;
mod recorder;
pub mod span;

pub use ecf::{check, EcfReport};
pub use event::{to_json_lines, DropReason, Event, EventKind, LwtPhase, TraceId};
pub use metrics::{HistEntry, MetricEntry, MetricsRegistry, MetricsSnapshot, Scope};
pub use online::{check_online, OnlineChecker, OnlineConfig, OnlineReport};
pub use recorder::Recorder;
pub use span::{Span, SpanId, SpanPhase, SpanReport};

/// FNV-1a digest of a byte string — the value fingerprint carried by
/// critical-put/get events so the ECF checker can compare values without
/// storing them.
pub fn digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_discriminating() {
        assert_eq!(digest(b"abc"), digest(b"abc"));
        assert_ne!(digest(b"abc"), digest(b"abd"));
        assert_ne!(digest(b""), digest(b"\0"));
    }
}
