//! The typed event schema and its JSON-lines rendering.

use crate::json::{push_hex, push_str};

/// Identifier grouping all events of one client-visible operation span.
/// `0` means "no active trace" (background tasks before their first span).
pub type TraceId = u64;

/// Why a network message was dropped.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Independent random loss (`NetConfig::loss`).
    Loss,
    /// The (from, to) link is cut by a partition.
    Cut,
    /// Sender or receiver was down at send time.
    EndpointDown,
    /// The receiver crashed while the message was in flight.
    ReceiverCrashed,
}

impl DropReason {
    fn as_str(self) -> &'static str {
        match self {
            DropReason::Loss => "loss",
            DropReason::Cut => "cut",
            DropReason::EndpointDown => "endpointDown",
            DropReason::ReceiverCrashed => "receiverCrashed",
        }
    }
}

/// Phase of a Paxos light-weight transaction (§X-A1 of the paper:
/// prepare/promise → read → propose/accept → commit).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LwtPhase {
    /// Prepare/promise quorum achieved.
    Prepare,
    /// An in-progress proposal from an earlier coordinator is being
    /// completed before the caller's own update.
    MustComplete,
    /// Quorum read of the current partition state.
    Read,
    /// Propose/accept quorum achieved.
    Propose,
    /// Commit applied at a quorum.
    Commit,
}

impl LwtPhase {
    fn as_str(self) -> &'static str {
        match self {
            LwtPhase::Prepare => "prepare",
            LwtPhase::MustComplete => "mustComplete",
            LwtPhase::Read => "read",
            LwtPhase::Propose => "propose",
            LwtPhase::Commit => "commit",
        }
    }
}

/// What happened. One variant per protocol transition the trace records.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A message entered the network.
    MsgSend {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Payload size.
        bytes: u64,
    },
    /// A message was fully serviced at its receiver.
    MsgDeliver {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Payload size.
        bytes: u64,
    },
    /// A message was lost.
    MsgDrop {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Payload size.
        bytes: u64,
        /// Why it was lost.
        reason: DropReason,
    },
    /// An RPC attempt timed out and is being re-sent.
    Retransmit {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Zero-based attempt that just failed.
        attempt: u32,
    },
    /// A quorum read reconciled replies from a majority.
    QuorumRead {
        /// Key read.
        key: String,
        /// Replies reconciled.
        replies: u32,
    },
    /// A write was acknowledged at its consistency level.
    QuorumWrite {
        /// Key written.
        key: String,
        /// Acknowledgments waited for (1 = CL.ONE).
        acks: u32,
    },
    /// A quorum read observed divergent replicas and scheduled repair
    /// writes.
    ReadRepair {
        /// Key repaired.
        key: String,
    },
    /// An LWT phase completed.
    Lwt {
        /// Key the transaction runs on.
        key: String,
        /// Which phase.
        phase: LwtPhase,
        /// Ballot of the attempt, encoded `(round << 20) | proposer`.
        ballot: u64,
    },
    /// An LWT attempt lost a ballot race and is retrying.
    LwtRetry {
        /// Key the transaction runs on.
        key: String,
        /// Zero-based attempt about to run.
        attempt: u32,
    },
    /// An LWT finished.
    LwtResult {
        /// Key the transaction ran on.
        key: String,
        /// Whether the caller's mutation was applied.
        applied: bool,
        /// Attempts used (1 = no contention).
        attempts: u32,
    },
    /// A lock reference was minted and enqueued (`lsGenerateAndEnqueue`).
    LockEnqueue {
        /// Lock queue key.
        key: String,
        /// The minted reference.
        lock_ref: u64,
    },
    /// A queued reference was granted the lock (`acquireLock` → true).
    LockGrant {
        /// Lock queue key.
        key: String,
        /// The granted reference.
        lock_ref: u64,
    },
    /// The holder released the lock (`releaseLock` dequeued it).
    LockRelease {
        /// Lock queue key.
        key: String,
        /// The released reference.
        lock_ref: u64,
    },
    /// A reference was forcibly released (`forcedRelease`, §IV-B).
    LockForcedRelease {
        /// Lock queue key.
        key: String,
        /// The preempted reference.
        lock_ref: u64,
    },
    /// A MUSIC operation span began.
    OpStart {
        /// Operation name (paper vocabulary: `criticalPut`, …).
        op: &'static str,
        /// Key operated on.
        key: String,
    },
    /// A MUSIC operation span ended.
    OpEnd {
        /// Operation name.
        op: &'static str,
        /// Key operated on.
        key: String,
        /// Whether the operation succeeded.
        ok: bool,
    },
    /// A `criticalPut` passed its holder guard and is writing.
    CritPutStart {
        /// Key written.
        key: String,
        /// Holder reference the writer believes it holds.
        lock_ref: u64,
        /// FNV-1a digest of the value.
        digest: u64,
    },
    /// A `criticalPut` was acknowledged at a quorum.
    CritPutAck {
        /// Key written.
        key: String,
        /// Holder reference.
        lock_ref: u64,
        /// FNV-1a digest of the value.
        digest: u64,
    },
    /// A `criticalGet` returned successfully.
    CritGet {
        /// Key read.
        key: String,
        /// Holder reference.
        lock_ref: u64,
        /// Digest of the returned value (`None` = key absent).
        digest: Option<u64>,
    },
    /// A critical-section flush barrier began awaiting in-flight pipelined
    /// writes (`release`, `criticalGet`, or a multi-key crossing).
    CsFlush {
        /// Key whose section is flushing.
        key: String,
        /// Holder reference.
        lock_ref: u64,
        /// Pipelined writes outstanding when the barrier started.
        pending: u64,
    },
    /// A holder marked the `synchFlag` after a failed flush: some pipelined
    /// write could not be acknowledged, so the next holder must
    /// resynchronize.
    SynchMark {
        /// Key whose flag was set.
        key: String,
        /// Holder reference the failed flush belonged to.
        lock_ref: u64,
    },
    /// A client abandoned a replica and moved to the next one.
    ClientFailover {
        /// Operation being retried.
        op: &'static str,
        /// Failures so far in this operation.
        attempt: u32,
        /// Stable code of the failure that triggered the move
        /// (`unavailable`, `contention`, `notYetHolder`).
        cause: &'static str,
    },
    /// The watchdog preempted a presumed-failed holder.
    WatchdogPreempt {
        /// Lock queue key.
        key: String,
        /// The preempted reference.
        lock_ref: u64,
    },
    /// A clean release left a *lease*: the successor reference was
    /// pre-minted for the departing holder (nothing was queued behind it).
    LeaseGrant {
        /// Lock queue key.
        key: String,
        /// The pre-minted (leased) reference.
        lock_ref: u64,
        /// Lease expiry deadline, in virtual microseconds.
        until_us: u64,
    },
    /// A competing enqueue atomically broke an unclaimed lease.
    LeaseBreak {
        /// Lock queue key.
        key: String,
        /// The broken (collected) leased reference.
        lock_ref: u64,
    },
    /// A time-based lease decision was withheld inside the ε
    /// clock-uncertainty margin: a re-entry claim whose remaining validity
    /// was below ε (`guard: "claim"`), or a watchdog revocation whose
    /// overdue margin was below ε (`guard: "break"`). Either way the
    /// decider fell back to the conservative path — drift-safety working
    /// as designed, not an anomaly.
    LeaseDriftReject {
        /// Lock queue key.
        key: String,
        /// The leased reference the decision was about.
        lock_ref: u64,
        /// Which ε guard deferred: `claim` or `break`.
        guard: &'static str,
        /// The decider's node-local clock reading, in microseconds.
        now_us: u64,
        /// Lease expiry deadline, in microseconds.
        until_us: u64,
    },
    /// The anti-entropy daemon finished one sweep.
    RepairRound {
        /// Keys that had diverged and were repaired this sweep.
        repaired: u64,
    },
    /// The nemesis injected a fault into the running system.
    FaultInject {
        /// Fault vocabulary word (`crash`, `restart`, `partitionSite`,
        /// `asymLink`, `lossBurst`, `grayNode`).
        fault: &'static str,
        /// What the fault hit (`n3`, `site2`, `site0->site1`, `net`).
        target: String,
        /// Fault-specific magnitude: gray multiplier ×1000, loss in ppm,
        /// 0 when not applicable.
        param: u64,
    },
    /// The nemesis healed a previously injected fault.
    FaultHeal {
        /// Fault vocabulary word (matches the inject event).
        fault: &'static str,
        /// What was healed.
        target: String,
    },
    /// A client's per-replica circuit breaker opened: the replica is
    /// skipped by fail-over until a cooldown elapses.
    BreakerTrip {
        /// The tripped replica's node.
        node: u32,
        /// Consecutive failures that opened the breaker.
        failures: u32,
    },
    /// An open breaker's cooldown elapsed and the client is sending one
    /// probationary (half-open) probe to the replica.
    BreakerProbe {
        /// The probed replica's node.
        node: u32,
    },
    /// A probe succeeded: the breaker closed and the replica rejoined the
    /// fail-over rotation.
    BreakerClose {
        /// The re-admitted replica's node.
        node: u32,
        /// How long the breaker was open, in virtual microseconds —
        /// the client-observed recovery time.
        open_us: u64,
    },
    /// The contention controller switched a key's locking strategy
    /// (hysteresis-gated: `cool → hot` when the grant-wait EWMA crosses
    /// the enter threshold, `hot → cool` below the exit threshold).
    StrategySwitch {
        /// Lock queue key.
        key: String,
        /// The strategy switched *to* (`"hot"` or `"cool"`).
        mode: &'static str,
        /// The grant-wait EWMA (µs) that triggered the switch.
        wait_us: u64,
    },
    /// A combined enqueue round minted `count` consecutive references in
    /// one LWT (waiter batching under contention).
    EnqueueCombine {
        /// Lock queue key.
        key: String,
        /// The round's first minted reference.
        first: u64,
        /// How many references the round minted.
        count: u32,
    },
    /// The admission guard fast-rejected an `enter` because the observed
    /// queue depth exceeded the configured bound (graceful-degradation
    /// floor — the caller backs off for `retry_after_us` instead of
    /// piling onto the queue).
    AdmissionReject {
        /// Lock queue key.
        key: String,
        /// Observed queue depth at rejection.
        depth: u64,
        /// Suggested client back-off, in microseconds.
        retry_after_us: u64,
    },
}

impl EventKind {
    /// Stable camel-case name used as the JSON `kind` field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::MsgSend { .. } => "msgSend",
            EventKind::MsgDeliver { .. } => "msgDeliver",
            EventKind::MsgDrop { .. } => "msgDrop",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::QuorumRead { .. } => "quorumRead",
            EventKind::QuorumWrite { .. } => "quorumWrite",
            EventKind::ReadRepair { .. } => "readRepair",
            EventKind::Lwt { .. } => "lwt",
            EventKind::LwtRetry { .. } => "lwtRetry",
            EventKind::LwtResult { .. } => "lwtResult",
            EventKind::LockEnqueue { .. } => "lockEnqueue",
            EventKind::LockGrant { .. } => "lockGrant",
            EventKind::LockRelease { .. } => "lockRelease",
            EventKind::LockForcedRelease { .. } => "lockForcedRelease",
            EventKind::OpStart { .. } => "opStart",
            EventKind::OpEnd { .. } => "opEnd",
            EventKind::CritPutStart { .. } => "critPutStart",
            EventKind::CritPutAck { .. } => "critPutAck",
            EventKind::CritGet { .. } => "critGet",
            EventKind::CsFlush { .. } => "csFlush",
            EventKind::SynchMark { .. } => "synchMark",
            EventKind::ClientFailover { .. } => "clientFailover",
            EventKind::WatchdogPreempt { .. } => "watchdogPreempt",
            EventKind::LeaseGrant { .. } => "leaseGrant",
            EventKind::LeaseBreak { .. } => "leaseBreak",
            EventKind::LeaseDriftReject { .. } => "leaseDriftReject",
            EventKind::RepairRound { .. } => "repairRound",
            EventKind::FaultInject { .. } => "faultInject",
            EventKind::FaultHeal { .. } => "faultHeal",
            EventKind::BreakerTrip { .. } => "breakerTrip",
            EventKind::BreakerProbe { .. } => "breakerProbe",
            EventKind::BreakerClose { .. } => "breakerClose",
            EventKind::StrategySwitch { .. } => "strategySwitch",
            EventKind::EnqueueCombine { .. } => "enqueueCombine",
            EventKind::AdmissionReject { .. } => "admissionReject",
        }
    }

    fn write_fields(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            EventKind::MsgSend { from, to, bytes } | EventKind::MsgDeliver { from, to, bytes } => {
                let _ = write!(out, ",\"from\":{from},\"to\":{to},\"bytes\":{bytes}");
            }
            EventKind::MsgDrop {
                from,
                to,
                bytes,
                reason,
            } => {
                let _ = write!(
                    out,
                    ",\"from\":{from},\"to\":{to},\"bytes\":{bytes},\"reason\":\"{}\"",
                    reason.as_str()
                );
            }
            EventKind::Retransmit { from, to, attempt } => {
                let _ = write!(out, ",\"from\":{from},\"to\":{to},\"attempt\":{attempt}");
            }
            EventKind::QuorumRead { key, replies } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"replies\":{replies}");
            }
            EventKind::QuorumWrite { key, acks } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"acks\":{acks}");
            }
            EventKind::ReadRepair { key } => {
                out.push_str(",\"key\":");
                push_str(out, key);
            }
            EventKind::Lwt { key, phase, ballot } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"phase\":\"{}\",\"ballot\":{ballot}", phase.as_str());
            }
            EventKind::LwtRetry { key, attempt } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"attempt\":{attempt}");
            }
            EventKind::LwtResult {
                key,
                applied,
                attempts,
            } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"applied\":{applied},\"attempts\":{attempts}");
            }
            EventKind::LockEnqueue { key, lock_ref }
            | EventKind::LockGrant { key, lock_ref }
            | EventKind::LockRelease { key, lock_ref }
            | EventKind::LockForcedRelease { key, lock_ref }
            | EventKind::WatchdogPreempt { key, lock_ref }
            | EventKind::LeaseBreak { key, lock_ref } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"ref\":{lock_ref}");
            }
            EventKind::LeaseGrant {
                key,
                lock_ref,
                until_us,
            } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"ref\":{lock_ref},\"until_us\":{until_us}");
            }
            EventKind::LeaseDriftReject {
                key,
                lock_ref,
                guard,
                now_us,
                until_us,
            } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(
                    out,
                    ",\"ref\":{lock_ref},\"guard\":\"{guard}\",\"now_us\":{now_us},\"until_us\":{until_us}"
                );
            }
            EventKind::OpStart { op, key } => {
                let _ = write!(out, ",\"op\":\"{op}\",\"key\":");
                push_str(out, key);
            }
            EventKind::OpEnd { op, key, ok } => {
                let _ = write!(out, ",\"op\":\"{op}\",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"ok\":{ok}");
            }
            EventKind::CritPutStart {
                key,
                lock_ref,
                digest,
            }
            | EventKind::CritPutAck {
                key,
                lock_ref,
                digest,
            } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"ref\":{lock_ref},\"digest\":");
                push_hex(out, *digest);
            }
            EventKind::CritGet {
                key,
                lock_ref,
                digest,
            } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"ref\":{lock_ref},\"digest\":");
                match digest {
                    Some(d) => push_hex(out, *d),
                    None => out.push_str("null"),
                }
            }
            EventKind::CsFlush {
                key,
                lock_ref,
                pending,
            } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"ref\":{lock_ref},\"pending\":{pending}");
            }
            EventKind::SynchMark { key, lock_ref } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"ref\":{lock_ref}");
            }
            EventKind::ClientFailover { op, attempt, cause } => {
                let _ = write!(
                    out,
                    ",\"op\":\"{op}\",\"attempt\":{attempt},\"cause\":\"{cause}\""
                );
            }
            EventKind::RepairRound { repaired } => {
                let _ = write!(out, ",\"repaired\":{repaired}");
            }
            EventKind::FaultInject {
                fault,
                target,
                param,
            } => {
                let _ = write!(out, ",\"fault\":\"{fault}\",\"target\":");
                push_str(out, target);
                let _ = write!(out, ",\"param\":{param}");
            }
            EventKind::FaultHeal { fault, target } => {
                let _ = write!(out, ",\"fault\":\"{fault}\",\"target\":");
                push_str(out, target);
            }
            EventKind::BreakerTrip { node, failures } => {
                let _ = write!(out, ",\"replica\":{node},\"failures\":{failures}");
            }
            EventKind::BreakerProbe { node } => {
                let _ = write!(out, ",\"replica\":{node}");
            }
            EventKind::BreakerClose { node, open_us } => {
                let _ = write!(out, ",\"replica\":{node},\"open_us\":{open_us}");
            }
            EventKind::StrategySwitch { key, mode, wait_us } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"mode\":\"{mode}\",\"wait_us\":{wait_us}");
            }
            EventKind::EnqueueCombine { key, first, count } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(out, ",\"first\":{first},\"count\":{count}");
            }
            EventKind::AdmissionReject {
                key,
                depth,
                retry_after_us,
            } => {
                out.push_str(",\"key\":");
                push_str(out, key);
                let _ = write!(
                    out,
                    ",\"depth\":{depth},\"retry_after_us\":{retry_after_us}"
                );
            }
        }
    }
}

/// One record of the causally-ordered event log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// Monotone sequence number: the total (and, in a single-threaded
    /// simulation, causal) order of the log.
    pub seq: u64,
    /// Virtual time of the event, in microseconds.
    pub at_us: u64,
    /// Operation span this event belongs to (`0` = none).
    pub trace: TraceId,
    /// Node that emitted the event.
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Appends this event as one JSON object (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_us\":{},\"trace\":{},\"node\":{},\"kind\":\"{}\"",
            self.seq,
            self.at_us,
            self.trace,
            self.node,
            self.kind.name()
        );
        self.kind.write_fields(out);
        out.push('}');
    }

    /// This event as a standalone JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        self.write_json(&mut out);
        out
    }
}

/// Renders an event slice as JSON lines (one event per line, trailing
/// newline after each).
pub fn to_json_lines(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        e.write_json(&mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_schema_is_stable() {
        let e = Event {
            seq: 3,
            at_us: 36_070,
            trace: 2,
            node: 1,
            kind: EventKind::MsgSend {
                from: 1,
                to: 4,
                bytes: 64,
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"seq\":3,\"t_us\":36070,\"trace\":2,\"node\":1,\
             \"kind\":\"msgSend\",\"from\":1,\"to\":4,\"bytes\":64}"
        );
    }

    #[test]
    fn digests_render_as_hex_strings() {
        let e = Event {
            seq: 0,
            at_us: 0,
            trace: 0,
            node: 0,
            kind: EventKind::CritGet {
                key: "k".into(),
                lock_ref: 7,
                digest: Some(u64::MAX),
            },
        };
        assert!(e.to_json().contains("\"digest\":\"ffffffffffffffff\""));
        let e2 = Event {
            kind: EventKind::CritGet {
                key: "k".into(),
                lock_ref: 7,
                digest: None,
            },
            ..e
        };
        assert!(e2.to_json().contains("\"digest\":null"));
    }

    #[test]
    fn keys_are_escaped() {
        let e = Event {
            seq: 0,
            at_us: 0,
            trace: 0,
            node: 0,
            kind: EventKind::ReadRepair {
                key: "a\u{1}synch".into(),
            },
        };
        assert!(e.to_json().contains("\"key\":\"a\\u0001synch\""));
    }

    #[test]
    fn json_lines_end_each_event() {
        let e = Event {
            seq: 0,
            at_us: 1,
            trace: 0,
            node: 0,
            kind: EventKind::RepairRound { repaired: 2 },
        };
        let lines = to_json_lines(&[e.clone(), e]);
        assert_eq!(lines.lines().count(), 2);
        assert!(lines.ends_with('}') || lines.ends_with('\n'));
    }
}
