//! The shared recording handle injected into every instrumented layer.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::event::{Event, EventKind, TraceId};
use crate::metrics::{MetricsRegistry, MetricsSnapshot, Scope};
use crate::online::{OnlineChecker, OnlineConfig, OnlineReport};
use crate::span::{Span, SpanId, SpanPhase};

#[derive(Debug)]
struct Inner {
    capture_events: bool,
    seq: Cell<u64>,
    next_trace: Cell<u64>,
    events: RefCell<Vec<Event>>,
    spans: RefCell<Vec<Span>>,
    metrics: RefCell<MetricsRegistry>,
    online: RefCell<Option<OnlineChecker>>,
}

/// A cheap, clonable handle to one telemetry sink.
///
/// Three modes:
/// * [`Recorder::off`] (the default) — every call is a no-op behind one
///   `Option` check; nothing allocates;
/// * [`Recorder::metrics_only`] — counters and gauges accumulate, the
///   event log stays empty;
/// * [`Recorder::tracing`] — counters *and* the full typed event log.
///
/// Recording is purely synchronous bookkeeping: no randomness, no task
/// spawning, no timers. A seeded simulation therefore executes the
/// identical virtual-time schedule whichever mode is active.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Rc<Inner>>,
}

impl Recorder {
    /// A disabled recorder (all calls are no-ops).
    pub fn off() -> Self {
        Recorder { inner: None }
    }

    /// A recorder accumulating metrics but no events.
    pub fn metrics_only() -> Self {
        Self::with_capture(false)
    }

    /// A recorder capturing the event log and metrics.
    pub fn tracing() -> Self {
        Self::with_capture(true)
    }

    /// A recorder that feeds every event through a streaming
    /// [`OnlineChecker`] *without* storing the log: memory stays
    /// O(live keys) however long the run is. Metrics still accumulate.
    /// This is the mode `music-load` uses against a live cluster.
    pub fn online(cfg: OnlineConfig) -> Self {
        let r = Self::with_capture(false);
        r.attach_online(cfg);
        r
    }

    fn with_capture(capture_events: bool) -> Self {
        Recorder {
            inner: Some(Rc::new(Inner {
                capture_events,
                seq: Cell::new(0),
                next_trace: Cell::new(0),
                events: RefCell::new(Vec::new()),
                spans: RefCell::new(Vec::new()),
                metrics: RefCell::new(MetricsRegistry::new()),
                online: RefCell::new(None),
            })),
        }
    }

    /// Attaches a streaming checker to an active recorder; every event
    /// recorded from now on is checked as it arrives. No-op when the
    /// recorder is off.
    pub fn attach_online(&self, cfg: OnlineConfig) {
        if let Some(i) = &self.inner {
            *i.online.borrow_mut() = Some(OnlineChecker::new(cfg));
        }
    }

    /// Snapshot of the attached streaming checker's verdict (`None` when
    /// no checker is attached).
    pub fn online_report(&self) -> Option<OnlineReport> {
        self.inner
            .as_ref()
            .and_then(|i| i.online.borrow().as_ref().map(OnlineChecker::report))
    }

    /// Whether any recording (metrics or events) is active.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether event payloads must be built at instrumentation sites:
    /// true when the log is captured *or* a streaming checker is
    /// attached (it consumes events without storing them).
    /// Instrumentation checks this before building payloads (key strings
    /// etc.) so a disabled recorder costs one branch.
    pub fn is_tracing(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.capture_events || i.online.borrow().is_some())
    }

    /// Mints the next trace id (monotone from 1). Returns `0` when the
    /// event log is off, so spans collapse to the "no trace" id.
    pub fn next_trace(&self) -> TraceId {
        match &self.inner {
            Some(i) if i.capture_events => {
                let t = i.next_trace.get() + 1;
                i.next_trace.set(t);
                t
            }
            _ => 0,
        }
    }

    /// Appends one event (no-op unless tracing). `at_us` is the virtual
    /// timestamp; the recorder assigns the sequence number. When a
    /// streaming checker is attached the event is checked here, as it
    /// happens — and only *stored* if the log is also being captured.
    pub fn record(&self, at_us: u64, trace: TraceId, node: u32, kind: EventKind) {
        let Some(i) = &self.inner else { return };
        let mut online = i.online.borrow_mut();
        if !i.capture_events && online.is_none() {
            return;
        }
        let seq = i.seq.get();
        i.seq.set(seq + 1);
        let e = Event {
            seq,
            at_us,
            trace,
            node,
            kind,
        };
        if let Some(c) = online.as_mut() {
            c.push(&e);
        }
        if i.capture_events {
            i.events.borrow_mut().push(e);
        }
    }

    /// Adds `n` to a counter (no-op when off).
    pub fn count(&self, scope: Scope, name: &'static str, n: u64) {
        if let Some(i) = &self.inner {
            i.metrics.borrow_mut().add(scope, name, n);
        }
    }

    /// Raises a high-water-mark gauge (no-op when off).
    pub fn gauge_max(&self, scope: Scope, name: &'static str, v: u64) {
        if let Some(i) = &self.inner {
            i.metrics.borrow_mut().set_max(scope, name, v);
        }
    }

    /// Appends one histogram sample (no-op when off).
    pub fn observe(&self, scope: Scope, name: &'static str, v: u64) {
        if let Some(i) = &self.inner {
            i.metrics.borrow_mut().observe(scope, name, v);
        }
    }

    /// Opens a phase span (no-op unless tracing; returns `0` then).
    ///
    /// `parent` is the enclosing span (`0` for a root); the caller
    /// threads it explicitly — typically via the simulator's per-task
    /// span tag — because concurrent critical sections interleave at
    /// await points, so an implicit recorder-level stack would attribute
    /// children to the wrong section. Pure bookkeeping, like every other
    /// recorder call: the virtual-time schedule is unchanged.
    #[allow(clippy::too_many_arguments)]
    pub fn span_open(
        &self,
        at_us: u64,
        parent: SpanId,
        trace: TraceId,
        node: u32,
        site: u32,
        phase: SpanPhase,
        key: &str,
    ) -> SpanId {
        let Some(i) = &self.inner else { return 0 };
        if !i.capture_events {
            return 0;
        }
        let mut spans = i.spans.borrow_mut();
        let id = spans.len() as u64 + 1;
        spans.push(Span {
            id,
            parent,
            trace,
            node,
            site,
            phase,
            key: key.to_string(),
            start_us: at_us,
            end_us: None,
        });
        id
    }

    /// Closes span `id` at `at_us` (no-op for id `0`, unknown ids, or
    /// already-closed spans).
    pub fn span_close(&self, at_us: u64, id: SpanId) {
        let Some(i) = &self.inner else { return };
        if id == 0 || !i.capture_events {
            return;
        }
        if let Some(s) = i.spans.borrow_mut().get_mut(id as usize - 1) {
            if s.end_us.is_none() {
                s.end_us = Some(at_us);
            }
        }
    }

    /// A copy of the span log so far, in open order (ids dense from 1).
    pub fn spans(&self) -> Vec<Span> {
        match &self.inner {
            Some(i) => i.spans.borrow().clone(),
            None => Vec::new(),
        }
    }

    /// Number of spans opened so far.
    pub fn span_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.spans.borrow().len())
    }

    /// A copy of the event log so far, in sequence order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(i) => i.events.borrow().clone(),
            None => Vec::new(),
        }
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.events.borrow().len())
    }

    /// A deterministic snapshot of all metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(i) => i.metrics.borrow().snapshot(),
            None => MetricsSnapshot::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_is_inert() {
        let r = Recorder::off();
        assert!(!r.is_on());
        assert!(!r.is_tracing());
        assert_eq!(r.next_trace(), 0);
        r.record(1, 0, 0, EventKind::RepairRound { repaired: 0 });
        r.count(Scope::Global, "x", 1);
        assert!(r.events().is_empty());
        assert!(r.metrics().is_empty());
    }

    #[test]
    fn metrics_only_skips_events() {
        let r = Recorder::metrics_only();
        assert!(r.is_on());
        assert!(!r.is_tracing());
        r.record(1, 0, 0, EventKind::RepairRound { repaired: 0 });
        r.count(Scope::Global, "x", 2);
        assert!(r.events().is_empty());
        assert_eq!(r.metrics().get(Scope::Global, "x"), 2);
    }

    #[test]
    fn tracing_assigns_monotone_seq_and_traces() {
        let r = Recorder::tracing();
        assert_eq!(r.next_trace(), 1);
        assert_eq!(r.next_trace(), 2);
        r.record(5, 1, 0, EventKind::RepairRound { repaired: 0 });
        r.record(6, 2, 0, EventKind::RepairRound { repaired: 1 });
        let ev = r.events();
        assert_eq!(ev[0].seq, 0);
        assert_eq!(ev[1].seq, 1);
        assert_eq!(r.event_count(), 2);
        // Clones share the sink.
        let r2 = r.clone();
        r2.record(7, 0, 0, EventKind::RepairRound { repaired: 2 });
        assert_eq!(r.event_count(), 3);
    }

    #[test]
    fn online_recorder_checks_without_storing() {
        let r = Recorder::online(crate::online::OnlineConfig::unbounded());
        assert!(r.is_on());
        assert!(r.is_tracing(), "instrumentation must build payloads");
        r.record(
            0,
            0,
            0,
            EventKind::LockEnqueue {
                key: "k".into(),
                lock_ref: 1,
            },
        );
        r.record(
            1,
            0,
            0,
            EventKind::LockGrant {
                key: "k".into(),
                lock_ref: 1,
            },
        );
        r.record(
            2,
            0,
            0,
            EventKind::LockRelease {
                key: "k".into(),
                lock_ref: 1,
            },
        );
        assert!(r.events().is_empty(), "log must not accumulate");
        let rep = r.online_report().expect("checker attached");
        assert!(
            rep.ok(),
            "{:?} {:?}",
            rep.ecf.violations,
            rep.queue_violations
        );
        assert_eq!(rep.ecf.grants, 1);
        assert_eq!(rep.events_seen, 3);
    }

    #[test]
    fn attached_checker_sees_the_same_stream_as_the_log() {
        let r = Recorder::tracing();
        r.attach_online(crate::online::OnlineConfig::unbounded());
        r.record(
            1,
            0,
            0,
            EventKind::LockGrant {
                key: "k".into(),
                lock_ref: 1,
            },
        );
        r.record(
            2,
            0,
            0,
            EventKind::LockGrant {
                key: "k".into(),
                lock_ref: 2,
            },
        );
        let rep = r.online_report().expect("checker attached");
        assert_eq!(rep.ecf, crate::ecf::check(&r.events()));
        assert!(!rep.ok());
    }

    #[test]
    fn spans_capture_only_when_tracing() {
        let off = Recorder::metrics_only();
        assert_eq!(off.span_open(1, 0, 0, 0, 0, SpanPhase::Section, "k"), 0);
        assert_eq!(off.span_count(), 0);

        let r = Recorder::tracing();
        let root = r.span_open(10, 0, 1, 2, 0, SpanPhase::Section, "k");
        let child = r.span_open(12, root, 1, 2, 0, SpanPhase::DataPut, "k");
        assert_eq!((root, child), (1, 2));
        r.span_close(20, child);
        r.span_close(30, root);
        r.span_close(99, root); // double close is a no-op
        let spans = r.spans();
        assert_eq!(spans[0].end_us, Some(30));
        assert_eq!(spans[1].parent, root);
        assert_eq!(spans[1].duration_us(), Some(8));
        assert!(crate::span::check(&spans).ok());
    }
}
