//! Hierarchical phase spans over the flat event log.
//!
//! Every critical section becomes a **trace**: a tree of timed spans whose
//! phases follow the MUSIC lock protocol (§V) — the enqueue LWT, the
//! head-wait poll loop, the quorum headship confirm, each data op, the
//! pipelined flush barrier, and the release / lease handoff. Spans are
//! pure bookkeeping on the [`crate::Recorder`]: opening or closing one
//! never consumes randomness, spawns tasks, or touches timers, so a
//! seeded simulation replays the identical span tree byte-for-byte.
//!
//! The module also provides:
//! * [`check`] — a well-formedness checker (unclosed spans, inverted
//!   intervals, children escaping their parent's interval);
//! * [`to_chrome_trace`] — a Chrome-trace-event (`chrome://tracing` /
//!   Perfetto) export, one complete (`"ph":"X"`) event per span, grouped
//!   by site (pid) and section (tid);
//! * [`durations_by_phase`] — the per-phase latency decomposition the
//!   `music-sim profile` subcommand turns into p50/p95/p99 tables.

use std::collections::BTreeMap;

use crate::event::TraceId;
use crate::json::push_str;

/// Identifier of one span; `0` means "no span" (recording off, or root).
pub type SpanId = u64;

/// The phase taxonomy of a MUSIC critical section.
///
/// Names are stable (they appear in `BENCH_*.json` and the Chrome trace
/// export): dotted lower-camel, grouped by subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanPhase {
    /// The whole critical section (root span), entry to release.
    Section,
    /// Lock acquisition: createLockRef + acquireLock until granted.
    LockAcquire,
    /// The enqueue LWT (createLockRef), including lease-break retries.
    Enqueue,
    /// Client-side head-wait: polling until the local view shows headship.
    HeadWait,
    /// Quorum headship confirm (+ synchFlag read and optional §III-A
    /// synchronization) on the winning poll.
    HeadConfirm,
    /// Lease-cached fast-path re-entry (skips the lock protocol).
    LeaseReenter,
    /// One criticalPut (synchronous) or its pipelined issue.
    DataPut,
    /// One criticalGet (quorum read).
    DataGet,
    /// Pipelined flush barrier: draining in-flight puts.
    Flush,
    /// releaseLock: the dequeue LWT handing the queue head onward.
    Release,
    /// release with lease retention: local handoff, no dequeue LWT.
    LeaseHandoff,
}

impl SpanPhase {
    /// The stable wire name of this phase.
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Section => "cs",
            SpanPhase::LockAcquire => "lock.acquire",
            SpanPhase::Enqueue => "lock.enqueue",
            SpanPhase::HeadWait => "lock.headWait",
            SpanPhase::HeadConfirm => "lock.headConfirm",
            SpanPhase::LeaseReenter => "lease.reenter",
            SpanPhase::DataPut => "data.put",
            SpanPhase::DataGet => "data.get",
            SpanPhase::Flush => "cs.flush",
            SpanPhase::Release => "lock.release",
            SpanPhase::LeaseHandoff => "lock.leaseHandoff",
        }
    }

    /// All phases, in taxonomy order (the order `BENCH_*.json` tables use).
    pub const ALL: [SpanPhase; 11] = [
        SpanPhase::Section,
        SpanPhase::LockAcquire,
        SpanPhase::Enqueue,
        SpanPhase::HeadWait,
        SpanPhase::HeadConfirm,
        SpanPhase::LeaseReenter,
        SpanPhase::DataPut,
        SpanPhase::DataGet,
        SpanPhase::Flush,
        SpanPhase::Release,
        SpanPhase::LeaseHandoff,
    ];
}

/// One timed span. Ids are dense (span `n` lives at index `n-1` of the
/// recorder's span log), so parent lookups are O(1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// This span's id (monotone from 1).
    pub id: SpanId,
    /// Enclosing span, or `0` for a root.
    pub parent: SpanId,
    /// Trace id active when the span opened (0 if none).
    pub trace: TraceId,
    /// Node the instrumented code ran at.
    pub node: u32,
    /// Site of that node (WAN attribution: far-site spans spend their
    /// time on inter-site RTTs).
    pub site: u32,
    /// Protocol phase.
    pub phase: SpanPhase,
    /// The key under the critical section (empty if not applicable).
    pub key: String,
    /// Virtual open timestamp (µs).
    pub start_us: u64,
    /// Virtual close timestamp (µs); `None` while open / if never closed.
    pub end_us: Option<u64>,
}

impl Span {
    /// Duration in µs, if closed.
    pub fn duration_us(&self) -> Option<u64> {
        self.end_us.map(|e| e.saturating_sub(self.start_us))
    }

    /// Serializes this span as one JSON object (span-tree form).
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"span\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"parent\":");
        out.push_str(&self.parent.to_string());
        out.push_str(",\"trace\":");
        out.push_str(&self.trace.to_string());
        out.push_str(",\"node\":");
        out.push_str(&self.node.to_string());
        out.push_str(",\"site\":");
        out.push_str(&self.site.to_string());
        out.push_str(",\"phase\":");
        push_str(out, self.phase.name());
        out.push_str(",\"key\":");
        push_str(out, &self.key);
        out.push_str(",\"start_us\":");
        out.push_str(&self.start_us.to_string());
        match self.end_us {
            Some(e) => {
                out.push_str(",\"end_us\":");
                out.push_str(&e.to_string());
            }
            None => out.push_str(",\"end_us\":null"),
        }
        out.push('}');
    }
}

/// Serializes spans as JSON lines (one object per line), byte-stable for
/// a fixed span log.
pub fn spans_to_json_lines(spans: &[Span]) -> String {
    let mut out = String::with_capacity(spans.len() * 96);
    for s in spans {
        s.write_json(&mut out);
        out.push('\n');
    }
    out
}

/// Verdict of [`check`]: span-tree well-formedness.
#[derive(Clone, Debug, Default)]
pub struct SpanReport {
    /// Total spans inspected.
    pub spans: usize,
    /// Spans never closed (crash/drop paths close sections, so a healthy
    /// run reports 0 here).
    pub unclosed: usize,
    /// Structural violations: dangling parents, inverted intervals,
    /// children escaping the parent interval.
    pub malformed: Vec<String>,
}

impl SpanReport {
    /// True when every span closed cleanly inside its parent.
    pub fn ok(&self) -> bool {
        self.unclosed == 0 && self.malformed.is_empty()
    }

    /// One-line JSON summary.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"spans\":");
        out.push_str(&self.spans.to_string());
        out.push_str(",\"unclosed\":");
        out.push_str(&self.unclosed.to_string());
        out.push_str(",\"malformed\":[");
        for (i, m) in self.malformed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str(&mut out, m);
        }
        out.push_str("],\"ok\":");
        out.push_str(if self.ok() { "true" } else { "false" });
        out.push('}');
        out
    }
}

/// Checks span-tree well-formedness: every parent id must refer to an
/// earlier span, intervals must not be inverted, and a closed child must
/// lie within its (closed) parent's interval.
pub fn check(spans: &[Span]) -> SpanReport {
    let mut report = SpanReport {
        spans: spans.len(),
        ..SpanReport::default()
    };
    for s in spans {
        if s.end_us.is_none() {
            report.unclosed += 1;
        }
        if let Some(e) = s.end_us {
            if e < s.start_us {
                report.malformed.push(format!(
                    "span {} ({}) ends before it starts",
                    s.id,
                    s.phase.name()
                ));
            }
        }
        if s.parent != 0 {
            let Some(p) = spans
                .get(s.parent as usize - 1)
                .filter(|p| p.id == s.parent)
            else {
                report.malformed.push(format!(
                    "span {} ({}) has dangling parent {}",
                    s.id,
                    s.phase.name(),
                    s.parent
                ));
                continue;
            };
            if s.start_us < p.start_us {
                report.malformed.push(format!(
                    "span {} ({}) starts before parent {} ({})",
                    s.id,
                    s.phase.name(),
                    p.id,
                    p.phase.name()
                ));
            }
            if let (Some(se), Some(pe)) = (s.end_us, p.end_us) {
                if se > pe {
                    report.malformed.push(format!(
                        "span {} ({}) outlives parent {} ({})",
                        s.id,
                        s.phase.name(),
                        p.id,
                        p.phase.name()
                    ));
                }
            }
        }
    }
    report
}

/// The root span id of `s` (follows parents; a root returns its own id).
fn root_of(spans: &[Span], s: &Span) -> SpanId {
    let mut cur = s;
    loop {
        if cur.parent == 0 {
            return cur.id;
        }
        match spans
            .get(cur.parent as usize - 1)
            .filter(|p| p.id == cur.parent)
        {
            Some(p) => cur = p,
            None => return cur.id,
        }
    }
}

/// Exports spans in the Chrome trace event format (the JSON-array form
/// `chrome://tracing` and Perfetto load directly).
///
/// Each closed span becomes one complete event (`"ph":"X"`); an unclosed
/// span becomes a zero-duration event flagged `"unclosed":true` so it
/// stays visible. Rows group by site (`pid`) and by root span — i.e. one
/// critical section per track (`tid`). Output is byte-stable for a fixed
/// span log.
pub fn to_chrome_trace(spans: &[Span]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 160);
    out.push_str("[\n");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("{\"name\":");
        push_str(&mut out, s.phase.name());
        out.push_str(",\"cat\":\"music\",\"ph\":\"X\",\"ts\":");
        out.push_str(&s.start_us.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&s.duration_us().unwrap_or(0).to_string());
        out.push_str(",\"pid\":");
        out.push_str(&s.site.to_string());
        out.push_str(",\"tid\":");
        out.push_str(&root_of(spans, s).to_string());
        out.push_str(",\"args\":{\"span\":");
        out.push_str(&s.id.to_string());
        out.push_str(",\"parent\":");
        out.push_str(&s.parent.to_string());
        out.push_str(",\"trace\":");
        out.push_str(&s.trace.to_string());
        out.push_str(",\"node\":");
        out.push_str(&s.node.to_string());
        out.push_str(",\"key\":");
        push_str(&mut out, &s.key);
        if s.end_us.is_none() {
            out.push_str(",\"unclosed\":true");
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

/// Closed-span durations grouped by phase name, in taxonomy order. The
/// input order is preserved within each phase (spans close in virtual-time
/// order, so the vectors come out time-sorted per phase).
pub fn durations_by_phase(spans: &[Span]) -> BTreeMap<&'static str, Vec<u64>> {
    let mut by: BTreeMap<SpanPhase, Vec<u64>> = BTreeMap::new();
    for s in spans {
        if let Some(d) = s.duration_us() {
            by.entry(s.phase).or_default().push(d);
        }
    }
    // Re-key by name in taxonomy order (BTreeMap over the enum already
    // iterates in declaration order thanks to the derived Ord).
    by.into_iter().map(|(p, v)| (p.name(), v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: SpanId, parent: SpanId, phase: SpanPhase, start: u64, end: Option<u64>) -> Span {
        Span {
            id,
            parent,
            trace: 0,
            node: 0,
            site: 0,
            phase,
            key: "k".into(),
            start_us: start,
            end_us: end,
        }
    }

    #[test]
    fn clean_tree_passes() {
        let spans = vec![
            span(1, 0, SpanPhase::Section, 0, Some(100)),
            span(2, 1, SpanPhase::LockAcquire, 0, Some(60)),
            span(3, 2, SpanPhase::Enqueue, 0, Some(20)),
            span(4, 2, SpanPhase::HeadWait, 20, Some(60)),
            span(5, 1, SpanPhase::DataPut, 60, Some(90)),
        ];
        let r = check(&spans);
        assert!(r.ok(), "{}", r.to_json());
        assert_eq!(r.spans, 5);
    }

    #[test]
    fn unclosed_span_is_detected() {
        let spans = vec![span(1, 0, SpanPhase::Section, 0, None)];
        let r = check(&spans);
        assert!(!r.ok());
        assert_eq!(r.unclosed, 1);
    }

    #[test]
    fn inverted_interval_is_malformed() {
        let spans = vec![span(1, 0, SpanPhase::DataPut, 50, Some(10))];
        let r = check(&spans);
        assert!(!r.ok());
        assert!(r.malformed[0].contains("ends before it starts"));
    }

    #[test]
    fn child_escaping_parent_is_malformed() {
        let spans = vec![
            span(1, 0, SpanPhase::Section, 10, Some(50)),
            span(2, 1, SpanPhase::DataPut, 5, Some(60)),
        ];
        let r = check(&spans);
        assert_eq!(r.malformed.len(), 2); // starts-before + outlives
    }

    #[test]
    fn dangling_parent_is_malformed() {
        let spans = vec![span(1, 9, SpanPhase::DataPut, 0, Some(1))];
        let r = check(&spans);
        assert!(r.malformed[0].contains("dangling parent"));
    }

    #[test]
    fn chrome_trace_groups_by_root() {
        let spans = vec![
            span(1, 0, SpanPhase::Section, 0, Some(100)),
            span(2, 1, SpanPhase::DataPut, 10, Some(20)),
            span(3, 0, SpanPhase::Section, 0, None),
        ];
        let json = to_chrome_trace(&spans);
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":1")); // child rides its root's track
        assert!(json.contains("\"unclosed\":true"));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn durations_group_by_phase_name() {
        let spans = vec![
            span(1, 0, SpanPhase::Section, 0, Some(100)),
            span(2, 1, SpanPhase::DataPut, 0, Some(30)),
            span(3, 1, SpanPhase::DataPut, 30, Some(40)),
            span(4, 1, SpanPhase::Flush, 40, None),
        ];
        let by = durations_by_phase(&spans);
        assert_eq!(by["cs"], vec![100]);
        assert_eq!(by["data.put"], vec![30, 10]);
        assert!(!by.contains_key("cs.flush")); // unclosed spans excluded
    }

    #[test]
    fn json_lines_are_stable() {
        let spans = vec![span(1, 0, SpanPhase::Enqueue, 3, Some(9))];
        assert_eq!(
            spans_to_json_lines(&spans),
            "{\"span\":1,\"parent\":0,\"trace\":0,\"node\":0,\"site\":0,\
             \"phase\":\"lock.enqueue\",\"key\":\"k\",\"start_us\":3,\"end_us\":9}\n"
        );
    }
}
