//! The acceptor role: durable per-key Paxos state at a replica.

use crate::ballot::Ballot;

/// Reply to a prepare (phase-1a) message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PrepareReply<V> {
    /// Whether the acceptor promised this ballot.
    pub promised: bool,
    /// The acceptor's current promise (its own if `promised`, else the
    /// higher ballot that caused the rejection).
    pub current_promise: Ballot,
    /// Most recent accepted-but-uncommitted proposal, if any. A proposer
    /// must complete the highest such proposal it sees before proposing its
    /// own value.
    pub in_progress: Option<(Ballot, V)>,
}

/// Reply to an accept (phase-2a) message.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AcceptReply {
    /// Whether the proposal was accepted.
    pub accepted: bool,
    /// The acceptor's current promise (for proposer back-off).
    pub current_promise: Ballot,
}

/// Reply to a commit (learn) message.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CommitReply {
    /// Whether this commit applied (false if already superseded).
    pub applied: bool,
}

/// Per-key acceptor state, Cassandra-LWT style: the decided value is not
/// retained in the Paxos state — committing *releases* the value to the
/// caller (who writes it into the data row) and clears the in-progress slot,
/// readying the instance for the next LWT on the same key.
///
/// # Examples
///
/// ```
/// use music_paxos::{Acceptor, Ballot};
///
/// let mut acc: Acceptor<u32> = Acceptor::new();
/// let b = Ballot::new(1, 0);
/// assert!(acc.prepare(b).promised);
/// assert!(acc.accept(b, 7).accepted);
/// assert_eq!(acc.commit(b), Some(7));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Acceptor<V> {
    promised: Ballot,
    accepted: Option<(Ballot, V)>,
    /// Highest ballot whose value was committed (applied to the data row).
    committed: Ballot,
}

impl<V: Clone> Acceptor<V> {
    /// A fresh acceptor that has promised nothing.
    pub fn new() -> Self {
        Acceptor {
            promised: Ballot::ZERO,
            accepted: None,
            committed: Ballot::ZERO,
        }
    }

    /// Highest ballot promised so far.
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    /// Handles phase 1a: promise `ballot` if it is strictly greater than any
    /// previous promise.
    pub fn prepare(&mut self, ballot: Ballot) -> PrepareReply<V> {
        if ballot > self.promised {
            self.promised = ballot;
            PrepareReply {
                promised: true,
                current_promise: self.promised,
                in_progress: self.accepted.clone(),
            }
        } else {
            PrepareReply {
                promised: false,
                current_promise: self.promised,
                in_progress: None,
            }
        }
    }

    /// Handles phase 2a: accept `(ballot, value)` unless a higher ballot has
    /// been promised since.
    pub fn accept(&mut self, ballot: Ballot, value: V) -> AcceptReply {
        if ballot >= self.promised {
            self.promised = ballot;
            self.accepted = Some((ballot, value));
            AcceptReply {
                accepted: true,
                current_promise: self.promised,
            }
        } else {
            AcceptReply {
                accepted: false,
                current_promise: self.promised,
            }
        }
    }

    /// Handles commit: if the in-progress proposal carries exactly `ballot`,
    /// clears it and returns its value for the caller to apply to the data
    /// row. Returns `None` if there is nothing matching to commit (stale or
    /// duplicate commit).
    pub fn commit(&mut self, ballot: Ballot) -> Option<V> {
        match &self.accepted {
            Some((b, _)) if *b == ballot => {
                let (_, v) = self.accepted.take().expect("just matched");
                self.committed = self.committed.max(ballot);
                Some(v)
            }
            _ => {
                // A commit for an older ballot than something already
                // accepted, or a duplicate: record progress only.
                if ballot > self.committed {
                    self.committed = ballot;
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promise_rejects_lower_and_equal_ballots() {
        let mut a: Acceptor<u32> = Acceptor::new();
        assert!(a.prepare(Ballot::new(2, 0)).promised);
        let r = a.prepare(Ballot::new(1, 9));
        assert!(!r.promised);
        assert_eq!(r.current_promise, Ballot::new(2, 0));
        // Re-preparing the same ballot is also rejected (strictly greater).
        assert!(!a.prepare(Ballot::new(2, 0)).promised);
    }

    #[test]
    fn promise_reports_in_progress_proposal() {
        let mut a: Acceptor<&str> = Acceptor::new();
        let b1 = Ballot::new(1, 0);
        a.prepare(b1);
        a.accept(b1, "x");
        let r = a.prepare(Ballot::new(2, 1));
        assert!(r.promised);
        assert_eq!(r.in_progress, Some((b1, "x")));
    }

    #[test]
    fn accept_rejected_after_higher_promise() {
        let mut a: Acceptor<u32> = Acceptor::new();
        let low = Ballot::new(1, 0);
        a.prepare(low);
        a.prepare(Ballot::new(5, 1));
        let r = a.accept(low, 42);
        assert!(!r.accepted);
        assert_eq!(r.current_promise, Ballot::new(5, 1));
    }

    #[test]
    fn accept_allows_equal_ballot() {
        let mut a: Acceptor<u32> = Acceptor::new();
        let b = Ballot::new(1, 0);
        a.prepare(b);
        assert!(a.accept(b, 1).accepted);
        // Idempotent re-accept of the same ballot.
        assert!(a.accept(b, 1).accepted);
    }

    #[test]
    fn commit_clears_in_progress_and_returns_value() {
        let mut a: Acceptor<u32> = Acceptor::new();
        let b = Ballot::new(1, 0);
        a.prepare(b);
        a.accept(b, 9);
        assert_eq!(a.commit(b), Some(9));
        // Second commit is a no-op.
        assert_eq!(a.commit(b), None);
        // Instance is reusable for the next LWT on the key.
        let b2 = Ballot::new(2, 1);
        assert!(a.prepare(b2).promised);
        assert!(a.prepare(b2).in_progress.is_none());
    }

    #[test]
    fn stale_commit_does_not_clobber_newer_proposal() {
        let mut a: Acceptor<u32> = Acceptor::new();
        let b1 = Ballot::new(1, 0);
        let b2 = Ballot::new(2, 1);
        a.prepare(b1);
        a.accept(b1, 1);
        a.prepare(b2);
        a.accept(b2, 2);
        // Commit for the old ballot must not release the new proposal.
        assert_eq!(a.commit(b1), None);
        assert_eq!(a.commit(b2), Some(2));
    }
}
