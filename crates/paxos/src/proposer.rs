//! Proposer-side decision logic: ballot generation and the value-selection
//! rule.
//!
//! The async sequencing of the four LWT phases lives in
//! `music-quorumstore`; everything here is a pure function of the replies,
//! so the safety-critical rule ("complete the highest in-progress proposal
//! you saw before proposing your own value") is testable exhaustively.

use crate::acceptor::PrepareReply;
use crate::ballot::Ballot;

/// What a proposer must propose after a successful prepare round.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Chosen<V> {
    /// No in-progress proposal was reported: the proposer is free to propose
    /// its own value.
    Free,
    /// An earlier proposal `(ballot, value)` was accepted somewhere but
    /// never committed; it must be completed (re-proposed under the new
    /// ballot and committed) before the proposer's own update may run.
    MustComplete(Ballot, V),
}

/// Applies the Paxos value-selection rule to a quorum of promises: pick the
/// in-progress proposal with the highest ballot, if any.
///
/// # Panics
///
/// Panics if any reply in `promises` was not actually a promise — callers
/// must filter rejections first.
pub fn choose_value<V: Clone>(promises: &[PrepareReply<V>]) -> Chosen<V> {
    let mut best: Option<(Ballot, V)> = None;
    for p in promises {
        assert!(p.promised, "choose_value fed a rejection");
        if let Some((b, v)) = &p.in_progress {
            if best.as_ref().is_none_or(|(bb, _)| b > bb) {
                best = Some((*b, v.clone()));
            }
        }
    }
    match best {
        Some((b, v)) => Chosen::MustComplete(b, v),
        None => Chosen::Free,
    }
}

/// Per-proposer ballot source that always produces ballots above everything
/// it has observed (its own past ballots and any rejections received).
///
/// # Examples
///
/// ```
/// use music_paxos::{Ballot, BallotGenerator};
///
/// let mut gen = BallotGenerator::new(3);
/// let b1 = gen.next();
/// gen.observe(Ballot::new(10, 7)); // rejected by a higher promise
/// let b2 = gen.next();
/// assert!(b2 > Ballot::new(10, 7));
/// assert!(b2 > b1);
/// ```
#[derive(Clone, Debug)]
pub struct BallotGenerator {
    proposer: u32,
    highest_seen: Ballot,
}

impl BallotGenerator {
    /// Creates a generator for `proposer`.
    pub fn new(proposer: u32) -> Self {
        BallotGenerator {
            proposer,
            highest_seen: Ballot::ZERO,
        }
    }

    /// Records a ballot observed in a reply (promise or rejection).
    pub fn observe(&mut self, ballot: Ballot) {
        self.highest_seen = self.highest_seen.max(ballot);
    }

    /// Produces the next ballot for this proposer, strictly above everything
    /// observed. (Not an iterator: every call mutates `highest_seen` and
    /// never ends.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Ballot {
        let b = self.highest_seen.next_for(self.proposer);
        self.highest_seen = b;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acceptor::Acceptor;

    fn promise<V>(in_progress: Option<(Ballot, V)>) -> PrepareReply<V> {
        PrepareReply {
            promised: true,
            current_promise: Ballot::new(9, 9),
            in_progress,
        }
    }

    #[test]
    fn free_when_no_in_progress() {
        let promises: Vec<PrepareReply<u32>> = vec![promise(None), promise(None)];
        assert_eq!(choose_value(&promises), Chosen::Free);
    }

    #[test]
    fn highest_in_progress_wins() {
        let promises = vec![
            promise(Some((Ballot::new(1, 0), "old"))),
            promise(None),
            promise(Some((Ballot::new(3, 2), "new"))),
        ];
        assert_eq!(
            choose_value(&promises),
            Chosen::MustComplete(Ballot::new(3, 2), "new")
        );
    }

    #[test]
    #[should_panic(expected = "rejection")]
    fn rejections_must_be_filtered() {
        let bad: PrepareReply<u32> = PrepareReply {
            promised: false,
            current_promise: Ballot::new(1, 1),
            in_progress: None,
        };
        let _ = choose_value(&[bad]);
    }

    #[test]
    fn generator_monotone_and_above_observed() {
        let mut g = BallotGenerator::new(2);
        let mut prev = Ballot::ZERO;
        for i in 0..100u64 {
            if i % 7 == 0 {
                g.observe(Ballot::new(i * 3, 5));
            }
            let b = g.next();
            assert!(b > prev);
            assert_eq!(b.proposer, 2);
            prev = b;
        }
    }

    /// Full protocol exercise: two proposers race on three acceptors; the
    /// second proposer must complete the first proposer's in-progress value.
    #[test]
    fn interrupted_proposal_is_completed_by_next_proposer() {
        let mut accs: Vec<Acceptor<&str>> = vec![Acceptor::new(), Acceptor::new(), Acceptor::new()];

        // Proposer 0 prepares on all three, but its accept only reaches
        // acceptor 0 before it crashes.
        let mut g0 = BallotGenerator::new(0);
        let b0 = g0.next();
        for a in accs.iter_mut() {
            assert!(a.prepare(b0).promised);
        }
        assert!(accs[0].accept(b0, "from-p0").accepted);

        // Proposer 1 now runs a full round with a quorum {0, 1}.
        let mut g1 = BallotGenerator::new(1);
        g1.observe(b0);
        let b1 = g1.next();
        let promises: Vec<_> = accs[..2].iter_mut().map(|a| a.prepare(b1)).collect();
        assert!(promises.iter().all(|p| p.promised));
        match choose_value(&promises) {
            Chosen::MustComplete(b, v) => {
                assert_eq!(b, b0);
                assert_eq!(v, "from-p0");
                // Complete it under the new ballot.
                for a in accs.iter_mut() {
                    assert!(a.accept(b1, v).accepted);
                }
                for a in accs.iter_mut() {
                    assert_eq!(a.commit(b1), Some("from-p0"));
                }
            }
            Chosen::Free => panic!("must have seen p0's in-progress proposal"),
        }
    }
}
