//! Ballot numbers: totally ordered `(round, proposer)` pairs.

use std::fmt;

/// A Paxos ballot number.
///
/// Ballots order lexicographically by `(round, proposer)`; the proposer id
/// breaks ties so two proposers never share a ballot.
///
/// # Examples
///
/// ```
/// use music_paxos::Ballot;
///
/// let a = Ballot::new(3, 1);
/// let b = Ballot::new(3, 2);
/// assert!(b > a);
/// assert!(b.next_for(1) > b);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Ballot {
    /// Monotonically increasing round counter.
    pub round: u64,
    /// Id of the proposing node, used as a tie-breaker.
    pub proposer: u32,
}

impl Ballot {
    /// The ballot smaller than every real ballot (round 0 is reserved).
    pub const ZERO: Ballot = Ballot {
        round: 0,
        proposer: 0,
    };

    /// Creates a ballot.
    pub const fn new(round: u64, proposer: u32) -> Self {
        Ballot { round, proposer }
    }

    /// The smallest ballot owned by `proposer` that is strictly greater
    /// than `self`.
    pub fn next_for(self, proposer: u32) -> Ballot {
        if proposer > self.proposer {
            Ballot::new(self.round, proposer)
        } else {
            Ballot::new(self.round + 1, proposer)
        }
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.round, self.proposer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Ballot::new(2, 0) > Ballot::new(1, 9));
        assert!(Ballot::new(1, 2) > Ballot::new(1, 1));
        assert_eq!(Ballot::new(1, 1), Ballot::new(1, 1));
    }

    #[test]
    fn next_for_is_strictly_greater_and_minimal() {
        let b = Ballot::new(5, 3);
        let hi = b.next_for(7);
        assert!(hi > b);
        assert_eq!(hi, Ballot::new(5, 7));
        let lo = b.next_for(2);
        assert!(lo > b);
        assert_eq!(lo, Ballot::new(6, 2));
        let same = b.next_for(3);
        assert_eq!(same, Ballot::new(6, 3));
    }

    #[test]
    fn zero_is_minimal() {
        assert!(Ballot::ZERO < Ballot::new(0, 1));
        assert!(Ballot::ZERO < Ballot::new(1, 0));
    }
}
