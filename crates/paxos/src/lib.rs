//! # music-paxos
//!
//! Pure (no-I/O) single-decree Paxos state machines, structured the way
//! Cassandra's light-weight transactions (LWTs) drive Paxos per partition:
//! **prepare/promise → read → propose/accept → commit**, four round trips
//! (§X-A1 of the MUSIC paper).
//!
//! This crate contains only protocol logic — [`Acceptor`] reacts to
//! messages, [`choose_value`] implements the proposer's value-selection
//! rule — so safety can be tested exhaustively with property tests,
//! independent of any network or runtime. The async driver that sequences
//! the four phases over the simulated WAN lives in `music-quorumstore`.
//!
//! ## Protocol recap
//!
//! A *ballot* is a totally ordered `(round, proposer)` pair. An acceptor
//! promises never to accept ballots lower than its `promised` ballot, and
//! reports its most recent accepted-but-uncommitted proposal in the
//! promise. A proposer that sees such an in-progress proposal must complete
//! it before applying its own update — that rule is [`choose_value`], and it
//! is what makes interrupted compare-and-set operations linearizable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acceptor;
pub mod ballot;
pub mod proposer;

pub use acceptor::{AcceptReply, Acceptor, CommitReply, PrepareReply};
pub use ballot::Ballot;
pub use proposer::{choose_value, BallotGenerator, Chosen};
