//! Property-based safety test: single-decree Paxos agreement under
//! arbitrary message schedules and message drops.
//!
//! The classical safety property: if a value is *chosen* (a majority of
//! acceptors accept it at some ballot), then every chosen value — at any
//! ballot — is the same value.

use music_paxos::{choose_value, Acceptor, Ballot, BallotGenerator, Chosen};
use proptest::prelude::*;

const ACCEPTORS: usize = 5;
const MAJORITY: usize = ACCEPTORS / 2 + 1;

#[derive(Debug, Clone)]
enum Phase {
    Idle,
    Preparing {
        ballot: Ballot,
        contacted: Vec<bool>,
        promises: Vec<music_paxos::PrepareReply<u32>>,
    },
    Accepting {
        ballot: Ballot,
        value: u32,
        contacted: Vec<bool>,
        acks: usize,
    },
    Done,
}

struct Proposer {
    gen: BallotGenerator,
    own_value: u32,
    phase: Phase,
    restarts: u32,
}

impl Proposer {
    fn new(id: u32) -> Self {
        Proposer {
            gen: BallotGenerator::new(id),
            own_value: 100 + id,
            phase: Phase::Idle,
            restarts: 0,
        }
    }

    /// Delivers one protocol step toward acceptor `target`; `drop` models a
    /// lost message (the step is consumed but nothing happens).
    fn step(
        &mut self,
        target: usize,
        drop: bool,
        acceptors: &mut [Acceptor<u32>],
        acceptances: &mut Vec<(Ballot, u32, usize)>,
    ) {
        // Cap restarts so adversarial schedules terminate.
        if self.restarts > 8 {
            self.phase = Phase::Done;
            return;
        }
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => {
                let ballot = self.gen.next();
                self.phase = Phase::Preparing {
                    ballot,
                    contacted: vec![false; ACCEPTORS],
                    promises: Vec::new(),
                };
            }
            Phase::Preparing {
                ballot,
                mut contacted,
                mut promises,
            } => {
                if !contacted[target] && !drop {
                    contacted[target] = true;
                    let reply = acceptors[target].prepare(ballot);
                    self.gen.observe(reply.current_promise);
                    if reply.promised {
                        promises.push(reply);
                    }
                }
                if promises.len() >= MAJORITY {
                    let value = match choose_value(&promises) {
                        Chosen::Free => self.own_value,
                        Chosen::MustComplete(_, v) => v,
                    };
                    self.phase = Phase::Accepting {
                        ballot,
                        value,
                        contacted: vec![false; ACCEPTORS],
                        acks: 0,
                    };
                } else if contacted.iter().all(|&c| c) {
                    // Everyone contacted, no majority: restart higher.
                    self.restarts += 1;
                    self.phase = Phase::Idle;
                } else {
                    self.phase = Phase::Preparing {
                        ballot,
                        contacted,
                        promises,
                    };
                }
            }
            Phase::Accepting {
                ballot,
                value,
                mut contacted,
                mut acks,
            } => {
                if !contacted[target] && !drop {
                    contacted[target] = true;
                    let reply = acceptors[target].accept(ballot, value);
                    self.gen.observe(reply.current_promise);
                    if reply.accepted {
                        acks += 1;
                        acceptances.push((ballot, value, target));
                    } else {
                        // Preempted: retry from prepare with a higher ballot.
                        self.restarts += 1;
                        self.phase = Phase::Idle;
                        return;
                    }
                }
                if acks >= MAJORITY {
                    self.phase = Phase::Done;
                } else if contacted.iter().all(|&c| c) {
                    self.restarts += 1;
                    self.phase = Phase::Idle;
                } else {
                    self.phase = Phase::Accepting {
                        ballot,
                        value,
                        contacted,
                        acks,
                    };
                }
            }
            Phase::Done => self.phase = Phase::Done,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Agreement: all chosen values are equal, under any interleaving of up
    /// to 3 proposers and arbitrary drops.
    #[test]
    fn chosen_values_agree(
        schedule in proptest::collection::vec(
            (0..3usize, 0..ACCEPTORS, proptest::bool::weighted(0.15)),
            1..400,
        )
    ) {
        let mut acceptors: Vec<Acceptor<u32>> = (0..ACCEPTORS).map(|_| Acceptor::new()).collect();
        let mut proposers: Vec<Proposer> = (0..3).map(|i| Proposer::new(i as u32)).collect();
        let mut acceptances: Vec<(Ballot, u32, usize)> = Vec::new();

        for (p, target, drop) in schedule {
            proposers[p].step(target, drop, &mut acceptors, &mut acceptances);
        }

        // A ballot is chosen if a majority of distinct acceptors accepted it.
        use std::collections::{HashMap, HashSet};
        let mut per_ballot: HashMap<Ballot, (u32, HashSet<usize>)> = HashMap::new();
        for (b, v, who) in &acceptances {
            let entry = per_ballot.entry(*b).or_insert_with(|| (*v, HashSet::new()));
            prop_assert_eq!(entry.0, *v, "one ballot must carry one value");
            entry.1.insert(*who);
        }
        let chosen: Vec<(Ballot, u32)> = per_ballot
            .iter()
            .filter(|(_, (_, who))| who.len() >= MAJORITY)
            .map(|(b, (v, _))| (*b, *v))
            .collect();
        if let Some((_, first)) = chosen.first() {
            for (b, v) in &chosen {
                prop_assert_eq!(v, first, "ballot {} chose a different value", b);
            }
        }
    }

    /// Liveness in kind schedules: a single uncontended proposer that
    /// reaches every acceptor decides its own value.
    #[test]
    fn solo_proposer_decides(own in 0u32..1000) {
        let mut acceptors: Vec<Acceptor<u32>> = (0..ACCEPTORS).map(|_| Acceptor::new()).collect();
        let mut p = Proposer::new(0);
        p.own_value = own;
        let mut acceptances = Vec::new();
        // Kick off + prepare round + accept round.
        p.step(0, false, &mut acceptors, &mut acceptances);
        for round in 0..2 {
            for t in 0..ACCEPTORS {
                let _ = round;
                p.step(t, false, &mut acceptors, &mut acceptances);
            }
        }
        prop_assert!(matches!(p.phase, Phase::Done));
        prop_assert!(acceptances.iter().filter(|(_, v, _)| *v == own).count() >= MAJORITY);
    }
}
