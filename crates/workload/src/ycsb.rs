//! YCSB-style operation streams: the R / UR / U mixes of Fig. 9.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipfian::Zipfian;

/// The three workloads the paper runs (§X-B2): `R` is read-only, `UR` is
/// 50% reads / 50% updates (YCSB-A), `U` is update-only.
#[derive(Copy, Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum WorkloadKind {
    /// 100% reads.
    R,
    /// 50% reads, 50% updates.
    Ur,
    /// 100% updates.
    U,
}

impl WorkloadKind {
    /// Fraction of operations that are reads.
    pub fn read_fraction(self) -> f64 {
        match self {
            WorkloadKind::R => 1.0,
            WorkloadKind::Ur => 0.5,
            WorkloadKind::U => 0.0,
        }
    }

    /// All three, in paper order.
    pub const ALL: [WorkloadKind; 3] = [WorkloadKind::R, WorkloadKind::Ur, WorkloadKind::U];
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadKind::R => write!(f, "R"),
            WorkloadKind::Ur => write!(f, "UR"),
            WorkloadKind::U => write!(f, "U"),
        }
    }
}

/// How keys are drawn from the record space.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub enum KeyDistribution {
    /// YCSB's default scrambled Zipfian (θ = 0.99) — hot keys exist, hence
    /// lock collisions.
    #[default]
    Zipfian,
    /// Uniform over the record space — essentially collision-free at the
    /// paper's scales; useful as a contention-free control.
    Uniform,
}

/// One generated operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// Read the key.
    Read(String),
    /// Update the key with a fresh value of the configured size.
    Update(String),
}

impl Op {
    /// The key targeted by the operation.
    pub fn key(&self) -> &str {
        match self {
            Op::Read(k) | Op::Update(k) => k,
        }
    }

    /// Whether this is an update.
    pub fn is_update(&self) -> bool {
        matches!(self, Op::Update(_))
    }
}

/// Workload parameters (mirroring the knobs of a YCSB property file, and
/// serializable like one).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct WorkloadSpec {
    /// Operation mix.
    pub kind: WorkloadKind,
    /// Number of records in the key space.
    pub record_count: u64,
    /// Number of operations to generate.
    pub op_count: u64,
    /// Value payload size in bytes.
    pub value_size: usize,
    /// Key distribution.
    #[serde(default)]
    pub distribution: KeyDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's Fig. 9 configuration: 10 000 operations over a Zipfian
    /// key space.
    pub fn fig9(kind: WorkloadKind, seed: u64) -> Self {
        WorkloadSpec {
            kind,
            record_count: 1000,
            op_count: 10_000,
            value_size: 10,
            distribution: KeyDistribution::Zipfian,
            seed,
        }
    }

    /// Builds the generator.
    pub fn generator(&self) -> YcsbGenerator {
        YcsbGenerator {
            zipf: Zipfian::new(self.record_count),
            rng: SmallRng::seed_from_u64(self.seed),
            remaining: self.op_count,
            read_fraction: self.kind.read_fraction(),
            distribution: self.distribution,
            record_count: self.record_count,
        }
    }

    /// The keys of the pre-loaded table, `user0 .. user{record_count-1}`.
    pub fn all_keys(&self) -> impl Iterator<Item = String> + '_ {
        (0..self.record_count).map(|i| format!("user{i}"))
    }
}

/// Iterator of YCSB operations (Zipfian key choice, deterministic per
/// seed).
#[derive(Clone, Debug)]
pub struct YcsbGenerator {
    zipf: Zipfian,
    rng: SmallRng,
    remaining: u64,
    read_fraction: f64,
    distribution: KeyDistribution,
    record_count: u64,
}

impl Iterator for YcsbGenerator {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let idx = match self.distribution {
            KeyDistribution::Zipfian => self.zipf.sample_scrambled(&mut self.rng),
            KeyDistribution::Uniform => self.rng.gen_range(0..self.record_count),
        };
        let key = format!("user{idx}");
        let is_read = self.rng.gen_bool(self.read_fraction.clamp(0.0, 1.0));
        Some(if is_read {
            Op::Read(key)
        } else {
            Op::Update(key)
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for YcsbGenerator {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_fractions_match_kind() {
        for kind in WorkloadKind::ALL {
            let spec = WorkloadSpec::fig9(kind, 1);
            let ops: Vec<Op> = spec.generator().collect();
            assert_eq!(ops.len(), 10_000);
            let updates = ops.iter().filter(|o| o.is_update()).count() as f64 / 10_000.0;
            let expected = 1.0 - kind.read_fraction();
            assert!(
                (updates - expected).abs() < 0.02,
                "{kind}: update fraction {updates}"
            );
        }
    }

    #[test]
    fn keys_come_from_the_record_space() {
        let spec = WorkloadSpec::fig9(WorkloadKind::Ur, 2);
        for op in spec.generator() {
            let idx: u64 = op.key().strip_prefix("user").unwrap().parse().unwrap();
            assert!(idx < spec.record_count);
        }
    }

    #[test]
    fn zipfian_contention_produces_collisions() {
        // The paper reports ~5.5% lock collisions with this workload shape;
        // sanity-check that a hot key exists at all.
        let spec = WorkloadSpec::fig9(WorkloadKind::U, 3);
        let mut counts = std::collections::HashMap::new();
        for op in spec.generator() {
            *counts.entry(op.key().to_string()).or_insert(0u64) += 1;
        }
        let max = counts.values().max().unwrap();
        assert!(*max > 500, "hottest key got {max} of 10000 ops");
    }

    #[test]
    fn generator_is_deterministic_and_sized() {
        let spec = WorkloadSpec::fig9(WorkloadKind::Ur, 9);
        let a: Vec<Op> = spec.generator().collect();
        let b: Vec<Op> = spec.generator().collect();
        assert_eq!(a, b);
        let gen = spec.generator();
        assert_eq!(gen.len(), 10_000);
    }

    #[test]
    fn uniform_distribution_spreads_evenly() {
        let spec = WorkloadSpec {
            distribution: KeyDistribution::Uniform,
            record_count: 10,
            ..WorkloadSpec::fig9(WorkloadKind::U, 4)
        };
        let mut counts = std::collections::HashMap::new();
        for op in spec.generator() {
            *counts.entry(op.key().to_string()).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 10, "all records hit");
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap();
        assert!(
            max < min * 2,
            "uniform spread expected, got min {min} max {max}"
        );
    }

    #[test]
    fn config_types_are_serde_capable() {
        // Compile-time guarantee that experiment configs can be persisted
        // (C-SERDE); exercised without pulling in a format crate.
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<WorkloadSpec>();
        assert_serde::<WorkloadKind>();
    }

    #[test]
    fn all_keys_enumerates_the_table() {
        let spec = WorkloadSpec {
            kind: WorkloadKind::R,
            record_count: 3,
            op_count: 0,
            value_size: 10,
            distribution: KeyDistribution::Zipfian,
            seed: 0,
        };
        let keys: Vec<String> = spec.all_keys().collect();
        assert_eq!(keys, vec!["user0", "user1", "user2"]);
    }
}
