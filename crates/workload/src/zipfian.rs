//! The Zipfian integer generator used by YCSB (Gray et al., "Quickly
//! generating billion-record synthetic databases", SIGMOD '94), with the
//! standard YCSB skew constant θ = 0.99.

use rand::Rng;

/// Zipfian-distributed values over `0..n`.
///
/// Item 0 is the most popular; popularity decays as `1/rank^θ`.
///
/// # Examples
///
/// ```
/// use music_workload::Zipfian;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let zipf = Zipfian::new(1000);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let v = zipf.sample(&mut rng);
/// assert!(v < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// YCSB's default skew.
    pub const DEFAULT_THETA: f64 = 0.99;

    /// Creates a generator over `0..n` with the default θ = 0.99.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, Self::DEFAULT_THETA)
    }

    /// Creates a generator over `0..n` with skew `theta` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!((0.0..1.0).contains(&theta) && theta > 0.0, "theta in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// The generalized harmonic number `H_{n,θ}` (exposed for tests).
    pub fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// The population size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one value in `0..n` (0 = most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Draws a *scrambled* value: Zipfian popularity spread uniformly over
    /// the key space (YCSB's `ScrambledZipfianGenerator`), avoiding
    /// hot-spot clustering on consecutive keys.
    pub fn sample_scrambled<R: Rng>(&self, rng: &mut R) -> u64 {
        let v = self.sample(rng);
        // FNV-1a scramble.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h % self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipfian::new(100);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
            assert!(z.sample_scrambled(&mut rng) < 100);
        }
    }

    #[test]
    fn most_popular_item_dominates() {
        let z = Zipfian::new(1000);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut count0 = 0;
        let trials = 100_000;
        for _ in 0..trials {
            if z.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        // Theory: P(0) = 1/zetan ≈ 0.128 for n=1000, θ=0.99.
        let p0 = count0 as f64 / trials as f64;
        assert!((0.10..0.16).contains(&p0), "P(item 0) = {p0}");
    }

    #[test]
    fn distribution_is_monotone_decreasing_in_rank() {
        let z = Zipfian::new(50);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = vec![0u64; 50];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Compare coarse buckets to tolerate noise.
        let head: u64 = counts[..5].iter().sum();
        let mid: u64 = counts[5..20].iter().sum();
        let tail: u64 = counts[20..].iter().sum();
        assert!(head > mid, "head {head} vs mid {mid}");
        assert!(mid > tail, "mid {mid} vs tail {tail}");
    }

    #[test]
    fn scrambled_spreads_the_hot_key() {
        let z = Zipfian::new(1000);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut hot = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *hot.entry(z.sample_scrambled(&mut rng)).or_insert(0u64) += 1;
        }
        // The hottest scrambled key is NOT key 0 in general, but some key
        // still receives the Zipfian head mass.
        let (_, max) = hot.iter().max_by_key(|(_, c)| **c).unwrap();
        assert!(*max > 800, "head mass preserved after scrambling");
    }

    #[test]
    fn determinism_per_seed() {
        let z = Zipfian::new(500);
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..100).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn zeta_values_sane() {
        assert!((Zipfian::zeta(2, 0.5) - (1.0 + 1.0 / 2f64.sqrt())).abs() < 1e-12);
        assert!((Zipfian::zeta(1, 0.99) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_population_panics() {
        Zipfian::new(0);
    }
}
