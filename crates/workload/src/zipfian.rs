//! The Zipfian integer generator used by YCSB (Gray et al., "Quickly
//! generating billion-record synthetic databases", SIGMOD '94), with the
//! standard YCSB skew constant θ = 0.99.

use rand::Rng;

/// Zipfian-distributed values over `0..n`.
///
/// Item 0 is the most popular; popularity decays as `1/rank^θ`.
///
/// # Examples
///
/// ```
/// use music_workload::Zipfian;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let zipf = Zipfian::new(1000);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let v = zipf.sample(&mut rng);
/// assert!(v < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    zetan: f64,
    sampler: Sampler,
}

/// How draws are produced. The closed-form YCSB rejection formula uses
/// `alpha = 1/(1-θ)`, singular at θ = 1 — so skews of 1 and above (the
/// flash-crowd territory of `θ = 1.2`) fall back to an exact inverse-CDF
/// table with binary search. The θ < 1 path is kept bit-identical to the
/// original generator so every seeded workload replays unchanged.
#[derive(Clone, Debug)]
enum Sampler {
    /// Gray et al.'s closed-form approximation (valid for θ in (0,1)).
    Ycsb { alpha: f64, eta: f64 },
    /// Cumulative distribution table: entry `i` is `P(value ≤ i)`.
    Cdf(Vec<f64>),
}

impl Zipfian {
    /// YCSB's default skew.
    pub const DEFAULT_THETA: f64 = 0.99;

    /// Creates a generator over `0..n` with the default θ = 0.99.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, Self::DEFAULT_THETA)
    }

    /// Creates a generator over `0..n` with skew `theta > 0`.
    ///
    /// Skews in `(0, 1)` use YCSB's closed-form sampler; skews of 1 and
    /// above (e.g. the flash-crowd θ = 1.2) use an exact CDF table with
    /// binary-search inversion, so the population must fit one
    /// (`n ≤ 2^20` for θ ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `theta ≤ 0`, `theta` is not finite, or
    /// `theta ≥ 1` with `n > 2^20`.
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(theta > 0.0 && theta.is_finite(), "theta must be positive");
        let zetan = Self::zeta(n, theta);
        let sampler = if theta < 1.0 {
            let zeta2 = Self::zeta(2, theta);
            let alpha = 1.0 / (1.0 - theta);
            let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
            Sampler::Ycsb { alpha, eta }
        } else {
            assert!(n <= 1 << 20, "CDF table skew needs n <= 2^20");
            let mut cdf = Vec::with_capacity(n as usize);
            let mut acc = 0.0;
            for i in 1..=n {
                acc += 1.0 / (i as f64).powf(theta) / zetan;
                cdf.push(acc);
            }
            // Guard the float tail: the last entry must cover u = 1.0.
            if let Some(last) = cdf.last_mut() {
                *last = 1.0;
            }
            Sampler::Cdf(cdf)
        };
        Zipfian {
            n,
            theta,
            zetan,
            sampler,
        }
    }

    /// The generalized harmonic number `H_{n,θ}` (exposed for tests).
    pub fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// The population size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The configured skew θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one value in `0..n` (0 = most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        match &self.sampler {
            Sampler::Ycsb { alpha, eta } => {
                let uz = u * self.zetan;
                if uz < 1.0 {
                    return 0;
                }
                if uz < 1.0 + 0.5f64.powf(self.theta) {
                    return 1;
                }
                let v = (self.n as f64 * (eta * u - eta + 1.0).powf(*alpha)) as u64;
                v.min(self.n - 1)
            }
            Sampler::Cdf(cdf) => {
                // First index whose cumulative mass covers the draw.
                let i = cdf.partition_point(|&c| c < u);
                (i as u64).min(self.n - 1)
            }
        }
    }

    /// Draws a *scrambled* value: Zipfian popularity spread uniformly over
    /// the key space (YCSB's `ScrambledZipfianGenerator`), avoiding
    /// hot-spot clustering on consecutive keys.
    pub fn sample_scrambled<R: Rng>(&self, rng: &mut R) -> u64 {
        let v = self.sample(rng);
        // FNV-1a scramble.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h % self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipfian::new(100);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
            assert!(z.sample_scrambled(&mut rng) < 100);
        }
    }

    #[test]
    fn most_popular_item_dominates() {
        let z = Zipfian::new(1000);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut count0 = 0;
        let trials = 100_000;
        for _ in 0..trials {
            if z.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        // Theory: P(0) = 1/zetan ≈ 0.128 for n=1000, θ=0.99.
        let p0 = count0 as f64 / trials as f64;
        assert!((0.10..0.16).contains(&p0), "P(item 0) = {p0}");
    }

    #[test]
    fn distribution_is_monotone_decreasing_in_rank() {
        let z = Zipfian::new(50);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = vec![0u64; 50];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Compare coarse buckets to tolerate noise.
        let head: u64 = counts[..5].iter().sum();
        let mid: u64 = counts[5..20].iter().sum();
        let tail: u64 = counts[20..].iter().sum();
        assert!(head > mid, "head {head} vs mid {mid}");
        assert!(mid > tail, "mid {mid} vs tail {tail}");
    }

    #[test]
    fn scrambled_spreads_the_hot_key() {
        let z = Zipfian::new(1000);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut hot = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *hot.entry(z.sample_scrambled(&mut rng)).or_insert(0u64) += 1;
        }
        // The hottest scrambled key is NOT key 0 in general, but some key
        // still receives the Zipfian head mass.
        let (_, max) = hot.iter().max_by_key(|(_, c)| **c).unwrap();
        assert!(*max > 800, "head mass preserved after scrambling");
    }

    #[test]
    fn determinism_per_seed() {
        let z = Zipfian::new(500);
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..100).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn zeta_values_sane() {
        assert!((Zipfian::zeta(2, 0.5) - (1.0 + 1.0 / 2f64.sqrt())).abs() < 1e-12);
        assert!((Zipfian::zeta(1, 0.99) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_population_panics() {
        Zipfian::new(0);
    }

    #[test]
    fn high_skew_samples_in_range_and_monotone() {
        let z = Zipfian::with_theta(50, 1.2);
        assert!((z.theta() - 1.2).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(21);
        let mut counts = vec![0u64; 50];
        for _ in 0..200_000 {
            let v = z.sample(&mut rng);
            assert!(v < 50);
            counts[v as usize] += 1;
        }
        let head: u64 = counts[..5].iter().sum();
        let mid: u64 = counts[5..20].iter().sum();
        let tail: u64 = counts[20..].iter().sum();
        assert!(head > mid && mid > tail, "θ=1.2 still rank-monotone");
        // θ = 1.2 concentrates strictly more mass on item 0 than θ = 0.99:
        // theory P(0) = 1/H_{50,θ} — ≈ 0.222 at 0.99, ≈ 0.324 at 1.2.
        let p0 = counts[0] as f64 / 200_000.0;
        assert!(p0 > 0.28, "P(item 0) = {p0} under θ = 1.2");
    }

    #[test]
    fn boundary_skew_theta_one_works() {
        // θ = 1 is the YCSB formula's singularity; the CDF sampler covers it.
        let z = Zipfian::with_theta(10, 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
            assert!(z.sample_scrambled(&mut rng) < 10);
        }
    }

    #[test]
    fn high_skew_determinism_per_seed() {
        let z = Zipfian::with_theta(500, 1.5);
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..100).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }
}
