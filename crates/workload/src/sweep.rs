//! Sweep constants shared by the Fig. 6 / Fig. 7 reproductions.

/// Batch sizes (criticalPuts per critical section) of Fig. 6(a) / 7(a).
pub const BATCH_SIZES: [usize; 3] = [10, 100, 1000];

/// Data sizes of Fig. 6(b) / 7(b), 10 B – 256 KB at a fixed batch of 100.
pub const DATA_SIZES: [usize; 5] = [10, 1_024, 16 * 1_024, 64 * 1_024, 256 * 1_024];

/// The fixed batch size used in the data-size sweeps.
pub const DATA_SWEEP_BATCH: usize = 100;

/// The default small value size (10 bytes) used everywhere else.
pub const DEFAULT_VALUE_SIZE: usize = 10;

/// Human-readable size label (10B, 1KB, 256KB) as the paper prints them.
pub fn size_label(bytes: usize) -> String {
    if bytes < 1_024 {
        format!("{bytes}B")
    } else {
        format!("{}KB", bytes / 1_024)
    }
}

/// A deterministic payload of `size` bytes (compressible, but the
/// simulator only meters lengths).
pub fn payload(size: usize) -> Vec<u8> {
    (0..size).map(|i| (i % 251) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_axis() {
        assert_eq!(size_label(10), "10B");
        assert_eq!(size_label(1024), "1KB");
        assert_eq!(size_label(262_144), "256KB");
    }

    #[test]
    fn payload_has_requested_length() {
        assert_eq!(payload(0).len(), 0);
        assert_eq!(payload(12345).len(), 12345);
    }

    #[test]
    fn sweep_constants_match_figures() {
        assert_eq!(BATCH_SIZES, [10, 100, 1000]);
        assert_eq!(DATA_SIZES[0], 10);
        assert_eq!(*DATA_SIZES.last().unwrap(), 256 * 1024);
        assert_eq!(DATA_SWEEP_BATCH, 100);
    }
}
