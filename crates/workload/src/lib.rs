//! # music-workload
//!
//! Workload generation for the MUSIC experiments: a YCSB-faithful Zipfian
//! key chooser ([`zipfian`]), the R / UR / U operation mixes of Fig. 9
//! ([`ycsb`]), and the batch-size / data-size sweep constants of
//! Figs. 6–7 ([`sweep`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sweep;
pub mod ycsb;
pub mod zipfian;

pub use ycsb::{Op, WorkloadKind, WorkloadSpec, YcsbGenerator};
pub use zipfian::Zipfian;
