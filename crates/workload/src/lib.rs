//! # music-workload
//!
//! Workload generation for the MUSIC experiments: a YCSB-faithful Zipfian
//! key chooser ([`zipfian`], generalized to θ ≥ 1 for hotspot skews), the
//! R / UR / U operation mixes of Fig. 9 ([`ycsb`]), the batch-size /
//! data-size sweep constants of Figs. 6–7 ([`sweep`]), and the
//! contention-adaptive hotspot shapes — flash crowd and diurnal sweep
//! ([`hotspot`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hotspot;
pub mod sweep;
pub mod ycsb;
pub mod zipfian;

pub use hotspot::{DiurnalSweep, FlashCrowd};
pub use ycsb::{Op, WorkloadKind, WorkloadSpec, YcsbGenerator};
pub use zipfian::Zipfian;
