//! Hotspot workload shapes for the contention-adaptive experiments: the
//! **flash crowd** (every client converges on one key at once) and the
//! **diurnal sweep** (the hot key's skew rises and falls like a day's
//! traffic), both deterministic per seed.
//!
//! These generators produce *key index streams* — the caller maps indices
//! to its own key namespace (`music-load` uses `key{i}`, the sim harness
//! whatever prefix it runs with) — so one shape serves the deterministic
//! simulator, the socket cluster, and the nemesis lanes alike.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipfian::Zipfian;

/// A flash crowd over `keys` keys: outside the crowd window keys are drawn
/// uniformly (background traffic); inside it, every draw lands on the hot
/// key (index 0). The phase boundaries are expressed in *operation
/// counts*, so the shape is runtime-agnostic and replays identically for a
/// given seed.
///
/// # Examples
///
/// ```
/// use music_workload::FlashCrowd;
///
/// let mut fc = FlashCrowd::new(8, 10, 20, 7);
/// let draws: Vec<u64> = (0..40).map(|_| fc.next_key()).collect();
/// assert!(draws[10..30].iter().all(|&k| k == 0), "crowd phase is all-hot");
/// ```
#[derive(Clone, Debug)]
pub struct FlashCrowd {
    keys: u64,
    /// Operations before the crowd arrives.
    warmup_ops: u64,
    /// Operations the crowd lasts.
    crowd_ops: u64,
    issued: u64,
    rng: SmallRng,
}

impl FlashCrowd {
    /// A crowd over `keys` keys, arriving after `warmup_ops` draws and
    /// lasting `crowd_ops` draws.
    ///
    /// # Panics
    ///
    /// Panics if `keys == 0`.
    pub fn new(keys: u64, warmup_ops: u64, crowd_ops: u64, seed: u64) -> Self {
        assert!(keys > 0, "need at least one key");
        FlashCrowd {
            keys,
            warmup_ops,
            crowd_ops,
            issued: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Whether the next draw falls inside the crowd window.
    pub fn in_crowd(&self) -> bool {
        self.issued >= self.warmup_ops && self.issued < self.warmup_ops + self.crowd_ops
    }

    /// Draws the next key index.
    pub fn next_key(&mut self) -> u64 {
        let in_crowd = self.in_crowd();
        self.issued += 1;
        // Burn one uniform draw either way so the background stream is
        // unchanged by where the crowd window sits.
        let uniform = self.rng.gen_range(0..self.keys);
        if in_crowd {
            0
        } else {
            uniform
        }
    }
}

/// A diurnal contention sweep: the Zipfian skew θ ramps linearly from
/// `theta_lo` up to `theta_hi` over the first half of the stream and back
/// down over the second — a full "day" of rising and falling contention,
/// exercising both hysteresis directions of the adaptive controller.
#[derive(Clone, Debug)]
pub struct DiurnalSweep {
    keys: u64,
    theta_lo: f64,
    theta_hi: f64,
    total_ops: u64,
    /// Re-deriving the Zipfian table per draw would be quadratic; the
    /// sweep quantizes θ into a fixed number of steps and rebuilds the
    /// sampler only on step changes.
    steps: u64,
    current_step: u64,
    zipf: Zipfian,
    issued: u64,
    rng: SmallRng,
}

impl DiurnalSweep {
    /// How many distinct θ plateaus one sweep passes through (per
    /// direction — the descent revisits the same plateaus in reverse).
    pub const THETA_STEPS: u64 = 8;

    /// A sweep over `keys` keys, `total_ops` draws, ramping θ from
    /// `theta_lo` to `theta_hi` and back.
    ///
    /// # Panics
    ///
    /// Panics if `keys == 0`, `total_ops == 0`, or the θ bounds are not
    /// `0 < theta_lo ≤ theta_hi`.
    pub fn new(keys: u64, total_ops: u64, theta_lo: f64, theta_hi: f64, seed: u64) -> Self {
        assert!(keys > 0, "need at least one key");
        assert!(total_ops > 0, "need at least one op");
        assert!(
            theta_lo > 0.0 && theta_lo <= theta_hi,
            "need 0 < theta_lo <= theta_hi"
        );
        DiurnalSweep {
            keys,
            theta_lo,
            theta_hi,
            total_ops,
            steps: Self::THETA_STEPS,
            current_step: 0,
            zipf: Zipfian::with_theta(keys, theta_lo),
            issued: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The θ in effect for the next draw.
    pub fn theta_now(&self) -> f64 {
        let pos = self.issued.min(self.total_ops - 1) as f64 / self.total_ops as f64;
        // Triangle wave: 0 → 1 over the first half, 1 → 0 over the second.
        let ramp = 1.0 - (2.0 * pos - 1.0).abs();
        self.theta_lo + (self.theta_hi - self.theta_lo) * ramp
    }

    /// Draws the next key index (0 = hottest).
    pub fn next_key(&mut self) -> u64 {
        let theta = self.theta_now();
        let span = (self.theta_hi - self.theta_lo).max(f64::EPSILON);
        let step = (((theta - self.theta_lo) / span) * self.steps as f64).round() as u64;
        if step != self.current_step {
            self.current_step = step;
            let quantized = self.theta_lo + span * step as f64 / self.steps as f64;
            self.zipf = Zipfian::with_theta(self.keys, quantized);
        }
        self.issued += 1;
        self.zipf.sample(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_crowd_phases_are_exact() {
        let mut fc = FlashCrowd::new(16, 5, 10, 3);
        let draws: Vec<u64> = (0..25).map(|_| fc.next_key()).collect();
        assert!(draws.iter().all(|&k| k < 16));
        assert!(draws[5..15].iter().all(|&k| k == 0), "crowd hits key 0");
        // Background phases are uniform-ish: more than one key appears.
        let distinct: std::collections::HashSet<_> =
            draws[..5].iter().chain(&draws[15..]).collect();
        assert!(distinct.len() > 1, "background traffic is spread");
    }

    #[test]
    fn flash_crowd_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut fc = FlashCrowd::new(8, 10, 20, seed);
            (0..50).map(|_| fc.next_key()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn flash_crowd_window_position_does_not_change_background() {
        // The background stream must be a pure function of the seed, not
        // of where the crowd sits — required for apples-to-apples
        // before/after comparisons.
        let mut early = FlashCrowd::new(8, 0, 5, 9);
        let mut late = FlashCrowd::new(8, 40, 5, 9);
        let e: Vec<u64> = (0..50).map(|_| early.next_key()).collect();
        let l: Vec<u64> = (0..50).map(|_| late.next_key()).collect();
        // Outside both windows the draws coincide.
        assert_eq!(e[5..40], l[5..40]);
    }

    #[test]
    fn diurnal_sweep_peaks_mid_stream() {
        let mut sw = DiurnalSweep::new(50, 1000, 0.5, 1.2, 11);
        let mut mid_hot = 0u64;
        let mut edge_hot = 0u64;
        for i in 0..1000 {
            let k = sw.next_key();
            assert!(k < 50);
            if k == 0 {
                if (400..600).contains(&i) {
                    mid_hot += 1;
                } else if !(200..800).contains(&i) {
                    edge_hot += 1;
                }
            }
        }
        // 200 mid-stream draws at θ≈1.2 vs 400 edge draws at θ≈0.5: the
        // mid-stream *rate* of hot-key hits must dominate.
        assert!(
            mid_hot * 2 > edge_hot,
            "peak contention mid-stream: mid {mid_hot} vs edge {edge_hot}"
        );
    }

    #[test]
    fn diurnal_sweep_theta_is_a_triangle() {
        let sw = DiurnalSweep::new(10, 100, 0.5, 1.2, 1);
        let mut s = sw.clone();
        let mut thetas = Vec::new();
        for _ in 0..100 {
            thetas.push(s.theta_now());
            s.next_key();
        }
        let peak = thetas
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!((40..60).contains(&peak), "θ peaks mid-stream, at {peak}");
        assert!(thetas[0] < 0.6 && thetas[99] < 0.6, "edges stay low");
    }

    #[test]
    fn diurnal_sweep_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut sw = DiurnalSweep::new(20, 200, 0.6, 1.4, seed);
            (0..200).map(|_| sw.next_key()).collect::<Vec<_>>()
        };
        assert_eq!(draw(2), draw(2));
        assert_ne!(draw(2), draw(3));
    }
}
