//! Transactional behaviour over the simulated WAN: atomicity, exclusive
//! locking, the §X-B3 critical-section pattern, and the 2C cost model.

use bytes::Bytes;
use music_cdb::{CdbCluster, CdbError};
use music_simnet::prelude::*;

struct Fixture {
    sim: Sim,
    cluster: CdbCluster,
    clients: Vec<NodeId>,
}

fn fixture() -> Fixture {
    let sim = Sim::new();
    let cfg = NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    };
    let net = Network::new(sim.clone(), LatencyProfile::one_us(), cfg, 31);
    let nodes: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let clients: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let cluster = CdbCluster::new(net, nodes);
    Fixture {
        sim,
        cluster,
        clients,
    }
}

fn b(s: &'static str) -> Bytes {
    Bytes::from_static(s.as_bytes())
}

#[test]
fn txn_commit_is_atomic_and_replicated() {
    let f = fixture();
    let (cluster, me) = (f.cluster.clone(), f.clients[0]);
    let cluster2 = f.cluster.clone();
    f.sim.block_on(async move {
        let s = cluster.session(me);
        let mut t = s.transaction();
        t.upsert("a", b("1")).await.unwrap();
        t.upsert("b", b("2")).await.unwrap();
        t.commit().await.unwrap();
        let t2 = s.transaction();
        assert_eq!(t2.select("a").await.unwrap(), Some(b("1")));
        assert_eq!(t2.select("b").await.unwrap(), Some(b("2")));
        t2.rollback();
    });
    f.sim.run();
    // All three replicas converge.
    for node in 0..3 {
        assert_eq!(cluster2.peek_kv(node, "a"), Some(b("1")), "node {node}");
        assert_eq!(cluster2.peek_kv(node, "b"), Some(b("2")), "node {node}");
    }
}

#[test]
fn uncommitted_writes_are_invisible() {
    let f = fixture();
    let (cluster, me) = (f.cluster.clone(), f.clients[1]);
    f.sim.block_on(async move {
        let s = cluster.session(me);
        let mut t = s.transaction();
        t.upsert("x", b("draft")).await.unwrap();
        // Another txn (no lock conflict on reads) sees nothing.
        let t2 = s.transaction();
        assert_eq!(t2.select("x").await.unwrap(), None);
        t2.rollback();
        t.rollback();
        let t3 = s.transaction();
        assert_eq!(t3.select("x").await.unwrap(), None);
        t3.rollback();
    });
}

#[test]
fn row_locks_are_exclusive_until_commit() {
    let f = fixture();
    let sim = f.sim.clone();
    let cluster = f.cluster.clone();
    let (c1, c2) = (f.clients[0], f.clients[1]);
    let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let o1 = std::rc::Rc::clone(&order);
    let o2 = std::rc::Rc::clone(&order);
    let cl1 = cluster.clone();
    let cl2 = cluster.clone();
    let sim2 = sim.clone();
    sim.spawn(async move {
        let s = cl1.session(c1);
        let mut t = s.transaction();
        t.upsert("hot", b("t1")).await.unwrap();
        o1.borrow_mut().push("t1-locked");
        // Hold the lock for a while.
        sim2.sleep(SimDuration::from_millis(500)).await;
        t.commit().await.unwrap();
        o1.borrow_mut().push("t1-committed");
    });
    let sim3 = sim.clone();
    sim.spawn(async move {
        // Start slightly later so t1 definitely holds the lock.
        sim3.sleep(SimDuration::from_millis(100)).await;
        let s = cl2.session(c2);
        let mut t = s.transaction();
        t.upsert("hot", b("t2")).await.unwrap();
        o2.borrow_mut().push("t2-locked");
        t.commit().await.unwrap();
        o2.borrow_mut().push("t2-committed");
    });
    sim.run();
    let order = order.borrow().clone();
    assert_eq!(
        order,
        vec!["t1-locked", "t1-committed", "t2-locked", "t2-committed"],
        "t2 must wait for t1's lock"
    );
    assert_eq!(cluster.peek_kv(0, "hot"), Some(b("t2")));
}

#[test]
fn lock_wait_times_out() {
    let f = fixture();
    let sim = f.sim.clone();
    let cluster = f.cluster.clone();
    let (c1, c2) = (f.clients[0], f.clients[1]);
    let cl1 = cluster.clone();
    let outcome = std::rc::Rc::new(std::cell::RefCell::new(None));
    let oc = std::rc::Rc::clone(&outcome);
    sim.spawn(async move {
        let s = cl1.session(c1);
        let mut t = s.transaction();
        t.upsert("stuck", b("forever")).await.unwrap();
        // Never commits: simulates a wedged client holding the lock.
        std::mem::forget(t);
    });
    let cl2 = cluster.clone();
    let sim2 = sim.clone();
    sim.spawn(async move {
        sim2.sleep(SimDuration::from_millis(50)).await;
        let s = cl2.session(c2);
        let mut t = s.transaction();
        let res = t.upsert("stuck", b("mine")).await;
        *oc.borrow_mut() = Some(res);
        t.rollback();
    });
    sim.run();
    assert_eq!(*outcome.borrow(), Some(Err(CdbError::LockTimeout)));
}

#[test]
fn critical_section_pattern_of_xb3() {
    // The paper's CockroachDB critical section: take a lock row in one
    // exclusive txn, run each state update in its own txn, release.
    let f = fixture();
    let (cluster, me) = (f.cluster.clone(), f.clients[0]);
    f.sim.block_on(async move {
        let s = cluster.session(me);

        // Entry: lock acquisition transaction.
        let mut entry = s.transaction();
        let holder = entry.select("lock").await.unwrap();
        assert!(holder.is_none() || holder == Some(b("NONE")));
        entry.upsert("lock", b("ME")).await.unwrap();
        entry.commit().await.unwrap();

        // Body: each state update in an exclusive transaction.
        for i in 0..5u32 {
            let mut t = s.transaction();
            t.upsert("state", Bytes::from(format!("v{i}").into_bytes()))
                .await
                .unwrap();
            t.commit().await.unwrap();
        }

        // Exit: unlock transaction.
        let mut exit = s.transaction();
        exit.upsert("lock", b("NONE")).await.unwrap();
        exit.commit().await.unwrap();

        let t = s.transaction();
        assert_eq!(t.select("state").await.unwrap(), Some(b("v4")));
        assert_eq!(t.select("lock").await.unwrap(), Some(b("NONE")));
        t.rollback();
    });
}

#[test]
fn txn_costs_two_consensus_rounds() {
    let f = fixture();
    let (cluster, me, sim) = (f.cluster.clone(), f.clients[0], f.sim.clone());
    let elapsed = f.sim.block_on(async move {
        let s = cluster.session(me);
        let t0 = sim.now();
        let mut t = s.transaction();
        t.upsert("k", b("v")).await.unwrap();
        t.commit().await.unwrap();
        sim.now() - t0
    });
    // Client co-located with the leader: 2 consensus rounds of one WAN RTT
    // each (Ohio–N.Cal 53.79ms) + intra-site client hops.
    let wan = 2 * 53_790;
    assert!(
        (elapsed.as_micros() as i64 - wan as i64).unsigned_abs() < 2_000,
        "expected ~2 consensus RTTs, got {elapsed}"
    );
}
