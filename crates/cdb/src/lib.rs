//! # music-cdb
//!
//! A CockroachDB-like geo-replicated transactional KV store, used as the
//! transactional baseline of the MUSIC evaluation (Fig. 7): a mini-Raft
//! replication core ([`raft`]) under a leaseholder-style stable leader,
//! with exclusive read-write transactions that take row locks and cost two
//! consensus operations each — exactly the cost model the paper analyzes in
//! §X-B4 (`2C` per transaction, hence `2·x·C` for `x` state updates done in
//! separate exclusive transactions).
//!
//! The critical-section pattern of §X-B3 (lock row → per-update exclusive
//! transactions → unlock row) is exercised by the `fig7_cockroach` bench
//! target and this crate's tests.
//!
//! ## Quickstart
//!
//! ```
//! use music_simnet::prelude::*;
//! use music_cdb::CdbCluster;
//! use bytes::Bytes;
//!
//! let sim = Sim::new();
//! let net = Network::new(sim.clone(), LatencyProfile::one_us(), NetConfig::default(), 7);
//! let servers: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
//! let client = net.add_node(SiteId(0));
//! let cluster = CdbCluster::new(net, servers);
//!
//! sim.block_on(async move {
//!     let session = cluster.session(client);
//!     let mut txn = session.transaction();
//!     txn.upsert("row", Bytes::from_static(b"v")).await.unwrap();
//!     txn.commit().await.unwrap(); // two consensus rounds total
//!     let check = session.transaction();
//!     assert_eq!(check.select("row").await.unwrap(), Some(Bytes::from_static(b"v")));
//!     check.rollback();
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod raft;

pub use cluster::{CdbCluster, CdbError, CdbSession, CdbTxn};
pub use raft::{AppendEntries, AppendReply, Entry, RaftNode, RequestVote, VoteReply};
