//! A compact Raft core: leader election rules and log replication as pure
//! state machines (no I/O), in the style of `music-paxos`.
//!
//! The benchmark driver (`cluster`) runs a stable leader — matching the
//! paper's failure-free measurement methodology — but the state machines
//! implement the full consistency checks (term comparison, log matching,
//! commit rules, vote granting) so they are reusable and testable beyond
//! the benchmark scenario.

/// A term number.
pub type Term = u64;
/// A log index (1-based; 0 = "before the log").
pub type Index = u64;

/// One replicated log entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Entry<C> {
    /// Term in which the entry was appended at the leader.
    pub term: Term,
    /// The replicated command.
    pub command: C,
}

/// AppendEntries request (§5.3 of the Raft paper).
#[derive(Clone, Debug)]
pub struct AppendEntries<C> {
    /// Leader's term.
    pub term: Term,
    /// Index of the entry immediately before `entries`.
    pub prev_log_index: Index,
    /// Term of the entry at `prev_log_index`.
    pub prev_log_term: Term,
    /// Entries to append (empty = heartbeat).
    pub entries: Vec<Entry<C>>,
    /// Leader's commit index.
    pub leader_commit: Index,
}

/// AppendEntries response.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AppendReply {
    /// Follower's current term (for leader step-down).
    pub term: Term,
    /// Whether the entries were appended.
    pub success: bool,
    /// Follower's last log index after the call (for fast next_index).
    pub last_index: Index,
}

/// RequestVote request (§5.2).
#[derive(Copy, Clone, Debug)]
pub struct RequestVote {
    /// Candidate's term.
    pub term: Term,
    /// Candidate id.
    pub candidate: u32,
    /// Candidate's last log position.
    pub last_log_index: Index,
    /// Term of the candidate's last entry.
    pub last_log_term: Term,
}

/// RequestVote response.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct VoteReply {
    /// Voter's current term.
    pub term: Term,
    /// Whether the vote was granted.
    pub granted: bool,
}

/// Per-node Raft state (follower side plus what a leader needs).
#[derive(Clone, Debug)]
pub struct RaftNode<C> {
    /// This node's id.
    pub id: u32,
    current_term: Term,
    voted_for: Option<u32>,
    log: Vec<Entry<C>>,
    commit_index: Index,
}

impl<C: Clone> RaftNode<C> {
    /// A fresh node at term 0 with an empty log.
    pub fn new(id: u32) -> Self {
        RaftNode {
            id,
            current_term: 0,
            voted_for: None,
            log: Vec::new(),
            commit_index: 0,
        }
    }

    /// Current term.
    pub fn term(&self) -> Term {
        self.current_term
    }

    /// Highest committed index.
    pub fn commit_index(&self) -> Index {
        self.commit_index
    }

    /// Last log index (0 if empty).
    pub fn last_index(&self) -> Index {
        self.log.len() as Index
    }

    /// Term of the last entry (0 if empty).
    pub fn last_term(&self) -> Term {
        self.log.last().map_or(0, |e| e.term)
    }

    /// The entry at `index` (1-based).
    pub fn entry(&self, index: Index) -> Option<&Entry<C>> {
        if index == 0 {
            None
        } else {
            self.log.get(index as usize - 1)
        }
    }

    /// Committed entries in `(after, commit_index]`, for application.
    pub fn committed_after(&self, after: Index) -> &[Entry<C>] {
        let lo = after.min(self.commit_index) as usize;
        let hi = self.commit_index as usize;
        &self.log[lo..hi]
    }

    /// Leader-side: bump into a new term as leader (driver decides
    /// leadership; the benchmark uses a stable term-1 leader).
    pub fn become_leader(&mut self, term: Term) {
        assert!(term >= self.current_term, "terms never regress");
        self.current_term = term;
        self.voted_for = Some(self.id);
    }

    /// Leader-side: appends a command to the local log, returning its
    /// index.
    pub fn leader_append(&mut self, command: C) -> Index {
        self.log.push(Entry {
            term: self.current_term,
            command,
        });
        self.last_index()
    }

    /// Leader-side: builds the AppendEntries request for a follower whose
    /// log is known to match through `next_index - 1`.
    pub fn build_append(&self, next_index: Index) -> AppendEntries<C> {
        let prev = next_index - 1;
        AppendEntries {
            term: self.current_term,
            prev_log_index: prev,
            prev_log_term: self.entry(prev).map_or(0, |e| e.term),
            entries: self.log[prev as usize..].to_vec(),
            leader_commit: self.commit_index,
        }
    }

    /// Leader-side: advance the commit index given the match indexes of
    /// the whole cluster (including the leader itself). Only entries of the
    /// current term commit by counting (§5.4.2).
    pub fn leader_advance_commit(&mut self, match_indexes: &[Index]) {
        let majority = match_indexes.len() / 2 + 1;
        let mut candidates: Vec<Index> = match_indexes.to_vec();
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        let n = candidates[majority - 1];
        if n > self.commit_index && self.entry(n).map_or(0, |e| e.term) == self.current_term {
            self.commit_index = n;
        }
    }

    /// Follower-side: handles AppendEntries.
    pub fn handle_append(&mut self, req: &AppendEntries<C>) -> AppendReply {
        if req.term < self.current_term {
            return AppendReply {
                term: self.current_term,
                success: false,
                last_index: self.last_index(),
            };
        }
        if req.term > self.current_term {
            self.current_term = req.term;
            self.voted_for = None;
        }
        // Log-matching check.
        if req.prev_log_index > 0 {
            match self.entry(req.prev_log_index) {
                Some(e) if e.term == req.prev_log_term => {}
                _ => {
                    return AppendReply {
                        term: self.current_term,
                        success: false,
                        last_index: self.last_index(),
                    }
                }
            }
        }
        // Append, truncating any conflicting suffix.
        for (i, entry) in req.entries.iter().enumerate() {
            let idx = req.prev_log_index + 1 + i as Index;
            match self.entry(idx) {
                Some(existing) if existing.term == entry.term => {}
                Some(_) => {
                    self.log.truncate(idx as usize - 1);
                    self.log.push(entry.clone());
                }
                None => self.log.push(entry.clone()),
            }
        }
        let new_last = (req.prev_log_index + req.entries.len() as Index).max(self.last_index());
        if req.leader_commit > self.commit_index {
            self.commit_index = req.leader_commit.min(new_last);
        }
        AppendReply {
            term: self.current_term,
            success: true,
            last_index: new_last,
        }
    }

    /// Follower-side: handles RequestVote.
    pub fn handle_vote(&mut self, req: &RequestVote) -> VoteReply {
        if req.term < self.current_term {
            return VoteReply {
                term: self.current_term,
                granted: false,
            };
        }
        if req.term > self.current_term {
            self.current_term = req.term;
            self.voted_for = None;
        }
        let log_ok =
            (req.last_log_term, req.last_log_index) >= (self.last_term(), self.last_index());
        let granted = log_ok && self.voted_for.is_none_or(|v| v == req.candidate);
        if granted {
            self.voted_for = Some(req.candidate);
        }
        VoteReply {
            term: self.current_term,
            granted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replicate(leader: &mut RaftNode<u32>, followers: &mut [RaftNode<u32>]) {
        // Push the full log to every follower and advance commit.
        let mut matches = vec![leader.last_index()];
        for f in followers.iter_mut() {
            let req = leader.build_append(1);
            let reply = f.handle_append(&req);
            assert!(reply.success);
            matches.push(reply.last_index);
        }
        leader.leader_advance_commit(&matches);
    }

    #[test]
    fn happy_path_replication_commits() {
        let mut leader = RaftNode::new(0);
        leader.become_leader(1);
        let mut f1 = RaftNode::new(1);
        let mut f2 = RaftNode::new(2);
        leader.leader_append(10);
        leader.leader_append(20);
        replicate(&mut leader, &mut [f1.clone(), f2.clone()][..]);
        // Re-run with real followers to check their state too.
        let mut fs = [&mut f1, &mut f2];
        let mut matches = vec![leader.last_index()];
        for f in fs.iter_mut() {
            let reply = f.handle_append(&leader.build_append(1));
            matches.push(reply.last_index);
        }
        leader.leader_advance_commit(&matches);
        assert_eq!(leader.commit_index(), 2);
        // Commit index propagates on the next append.
        for f in fs.iter_mut() {
            f.handle_append(&leader.build_append(3));
            assert_eq!(f.commit_index(), 2);
            assert_eq!(
                f.committed_after(0)
                    .iter()
                    .map(|e| e.command)
                    .collect::<Vec<_>>(),
                vec![10, 20]
            );
        }
    }

    #[test]
    fn stale_term_append_rejected() {
        let mut f = RaftNode::<u32>::new(1);
        f.handle_vote(&RequestVote {
            term: 5,
            candidate: 2,
            last_log_index: 0,
            last_log_term: 0,
        });
        let reply = f.handle_append(&AppendEntries {
            term: 3,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![],
            leader_commit: 0,
        });
        assert!(!reply.success);
        assert_eq!(reply.term, 5);
    }

    #[test]
    fn log_matching_rejects_gaps() {
        let mut f = RaftNode::<u32>::new(1);
        let reply = f.handle_append(&AppendEntries {
            term: 1,
            prev_log_index: 5,
            prev_log_term: 1,
            entries: vec![Entry {
                term: 1,
                command: 9,
            }],
            leader_commit: 0,
        });
        assert!(!reply.success, "gap must be rejected");
    }

    #[test]
    fn conflicting_suffix_is_truncated() {
        let mut f = RaftNode::<u32>::new(1);
        // Term-1 leader writes 2 entries.
        f.handle_append(&AppendEntries {
            term: 1,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![
                Entry {
                    term: 1,
                    command: 1,
                },
                Entry {
                    term: 1,
                    command: 2,
                },
            ],
            leader_commit: 0,
        });
        // A term-2 leader with a different entry at index 2.
        let reply = f.handle_append(&AppendEntries {
            term: 2,
            prev_log_index: 1,
            prev_log_term: 1,
            entries: vec![Entry {
                term: 2,
                command: 99,
            }],
            leader_commit: 0,
        });
        assert!(reply.success);
        assert_eq!(f.entry(2).unwrap().command, 99);
        assert_eq!(f.last_index(), 2);
    }

    #[test]
    fn commit_never_exceeds_local_log() {
        let mut f = RaftNode::<u32>::new(1);
        f.handle_append(&AppendEntries {
            term: 1,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![Entry {
                term: 1,
                command: 1,
            }],
            leader_commit: 10,
        });
        assert_eq!(f.commit_index(), 1);
    }

    #[test]
    fn votes_respect_log_freshness_and_single_vote() {
        let mut f = RaftNode::<u32>::new(1);
        f.handle_append(&AppendEntries {
            term: 2,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![Entry {
                term: 2,
                command: 1,
            }],
            leader_commit: 0,
        });
        // A candidate with a stale log is refused.
        let stale = f.handle_vote(&RequestVote {
            term: 3,
            candidate: 7,
            last_log_index: 0,
            last_log_term: 0,
        });
        assert!(!stale.granted);
        // A fresh candidate gets the vote; a second one in the same term
        // does not.
        let fresh = f.handle_vote(&RequestVote {
            term: 4,
            candidate: 8,
            last_log_index: 5,
            last_log_term: 3,
        });
        assert!(fresh.granted);
        let rival = f.handle_vote(&RequestVote {
            term: 4,
            candidate: 9,
            last_log_index: 9,
            last_log_term: 3,
        });
        assert!(!rival.granted, "one vote per term");
    }

    #[test]
    fn leader_commit_counts_only_current_term() {
        let mut leader = RaftNode::<u32>::new(0);
        leader.become_leader(2);
        // A term-1 entry somehow in the log (from a previous leadership).
        leader.log.push(Entry {
            term: 1,
            command: 1,
        });
        leader.leader_advance_commit(&[1, 1, 1]);
        assert_eq!(
            leader.commit_index(),
            0,
            "old-term entries don't commit by counting"
        );
        leader.leader_append(2);
        leader.leader_advance_commit(&[2, 2, 1]);
        assert_eq!(
            leader.commit_index(),
            2,
            "current-term commit covers older entries"
        );
    }
}
