//! The replicated SQL-ish KV store: Raft-replicated writes, leader reads,
//! and exclusive transactions with row locks — enough surface to express
//! the critical-section pattern of §X-B3 with the cost model of §X-B4
//! (two consensus operations per exclusive read-write transaction).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;

use music_simnet::combinators::{quorum, timeout};
use music_simnet::net::{Network, NodeId};
use music_simnet::time::SimDuration;

use crate::raft::{Index, RaftNode};

const HEADER: usize = 48;

/// Errors surfaced to transaction clients.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CdbError {
    /// A row lock could not be acquired before the wait timeout.
    LockTimeout,
    /// The cluster could not replicate within the operation timeout.
    Unavailable,
}

impl std::fmt::Display for CdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdbError::LockTimeout => write!(f, "row lock wait timed out"),
            CdbError::Unavailable => write!(f, "replication quorum unavailable"),
        }
    }
}

impl std::error::Error for CdbError {}

/// One replicated command: an atomic batch of row writes.
type Command = Vec<(String, Option<Bytes>)>;

struct Inner {
    net: Network,
    nodes: Vec<NodeId>,
    leader: usize,
    rafts: Vec<Rc<RefCell<RaftNode<Command>>>>,
    kv: Vec<Rc<RefCell<HashMap<String, Bytes>>>>,
    applied: Vec<Cell<Index>>,
    /// Leader's replication progress per node (match index).
    match_index: RefCell<Vec<Index>>,
    /// Leader-side row lock table: key → owning txn.
    locks: RefCell<HashMap<String, u64>>,
    next_txn: Cell<u64>,
    op_timeout: SimDuration,
    lock_wait: SimDuration,
}

impl Inner {
    fn apply_committed(&self, node: usize) {
        let raft = self.rafts[node].borrow();
        let from = self.applied[node].get();
        for entry in raft.committed_after(from) {
            let mut kv = self.kv[node].borrow_mut();
            for (k, v) in &entry.command {
                match v {
                    Some(v) => {
                        kv.insert(k.clone(), v.clone());
                    }
                    None => {
                        kv.remove(k);
                    }
                }
            }
        }
        self.applied[node].set(raft.commit_index());
    }
}

/// A CockroachDB-like cluster with a stable leader at `nodes[0]`.
#[derive(Clone)]
pub struct CdbCluster {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for CdbCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CdbCluster")
            .field("nodes", &self.inner.nodes)
            .finish()
    }
}

impl CdbCluster {
    /// Creates a cluster over `nodes`; `nodes[0]` is the stable leader.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(net: Network, nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        let n = nodes.len();
        let rafts: Vec<_> = (0..n)
            .map(|i| Rc::new(RefCell::new(RaftNode::new(i as u32))))
            .collect();
        rafts[0].borrow_mut().become_leader(1);
        CdbCluster {
            inner: Rc::new(Inner {
                net,
                nodes,
                leader: 0,
                rafts,
                kv: (0..n)
                    .map(|_| Rc::new(RefCell::new(HashMap::new())))
                    .collect(),
                applied: (0..n).map(|_| Cell::new(0)).collect(),
                match_index: RefCell::new(vec![0; n]),
                locks: RefCell::new(HashMap::new()),
                next_txn: Cell::new(1),
                op_timeout: SimDuration::from_secs(4),
                lock_wait: SimDuration::from_secs(10),
            }),
        }
    }

    /// The leader's node id.
    pub fn leader_node(&self) -> NodeId {
        self.inner.nodes[self.inner.leader]
    }

    /// Opens a session from `client_node`.
    pub fn session(&self, client_node: NodeId) -> CdbSession {
        CdbSession {
            cluster: self.clone(),
            client_node,
        }
    }

    /// Direct view of a node's applied KV state (tests/instrumentation).
    pub fn peek_kv(&self, node: usize, key: &str) -> Option<Bytes> {
        self.inner.apply_committed(node);
        self.inner.kv[node].borrow().get(key).cloned()
    }

    /// One Raft consensus round: append `cmd` at the leader, replicate to a
    /// quorum, advance commit, apply at the leader, and asynchronously
    /// bring followers up to date.
    async fn consensus(&self, cmd: Command) -> Result<(), CdbError> {
        let inner = &self.inner;
        let sim = inner.net.sim().clone();
        let leader_node = inner.nodes[inner.leader];
        let bytes: usize = HEADER
            + cmd
                .iter()
                .map(|(k, v)| k.len() + v.as_ref().map_or(0, |b| b.len()))
                .sum::<usize>();

        let index = inner.rafts[inner.leader].borrow_mut().leader_append(cmd);
        {
            let mut mi = inner.match_index.borrow_mut();
            mi[inner.leader] = index;
        }

        let mut acks = Vec::new();
        for i in 0..inner.nodes.len() {
            if i == inner.leader {
                continue;
            }
            let net = inner.net.clone();
            let follower_node = inner.nodes[i];
            let leader_raft = Rc::clone(&inner.rafts[inner.leader]);
            let follower_raft = Rc::clone(&inner.rafts[i]);
            let this = self.clone();
            acks.push(sim.spawn(async move {
                let next = this.inner.match_index.borrow()[i] + 1;
                let req = leader_raft.borrow().build_append(next);
                let req_bytes = HEADER
                    + req
                        .entries
                        .iter()
                        .map(|e| {
                            e.command
                                .iter()
                                .map(|(k, v)| k.len() + v.as_ref().map_or(0, |b| b.len()))
                                .sum::<usize>()
                        })
                        .sum::<usize>();
                net.transmit(leader_node, follower_node, req_bytes.max(bytes))
                    .await;
                let reply = follower_raft.borrow_mut().handle_append(&req);
                this.inner.apply_committed(i);
                net.transmit(follower_node, leader_node, HEADER).await;
                (i, reply)
            }));
        }
        let need = (inner.nodes.len() / 2 + 1).saturating_sub(1);
        if need > 0 {
            let replies = timeout(&sim, inner.op_timeout, quorum(acks, need))
                .await
                .map_err(|_| CdbError::Unavailable)?;
            let mut mi = inner.match_index.borrow_mut();
            for (_, (i, reply)) in replies {
                if reply.success {
                    mi[i] = mi[i].max(reply.last_index);
                }
            }
        }
        // Advance commit and apply at the leader.
        {
            let mi = inner.match_index.borrow().clone();
            inner.rafts[inner.leader]
                .borrow_mut()
                .leader_advance_commit(&mi);
        }
        inner.apply_committed(inner.leader);
        // Propagate the new commit index to followers asynchronously (the
        // heartbeat piggyback of real Raft); detached stragglers are fine.
        for i in 0..inner.nodes.len() {
            if i == inner.leader {
                continue;
            }
            let net = inner.net.clone();
            let follower_node = inner.nodes[i];
            let leader_raft = Rc::clone(&inner.rafts[inner.leader]);
            let follower_raft = Rc::clone(&inner.rafts[i]);
            let this = self.clone();
            sim.spawn(async move {
                let next = this.inner.match_index.borrow()[i] + 1;
                let req = leader_raft.borrow().build_append(next);
                net.transmit(leader_node, follower_node, HEADER).await;
                let reply = follower_raft.borrow_mut().handle_append(&req);
                if reply.success {
                    let mut mi = this.inner.match_index.borrow_mut();
                    mi[i] = mi[i].max(reply.last_index);
                }
                this.inner.apply_committed(i);
            });
        }
        Ok(())
    }
}

/// A client session (CockroachDB gateway connection).
#[derive(Clone, Debug)]
pub struct CdbSession {
    cluster: CdbCluster,
    client_node: NodeId,
}

impl CdbSession {
    /// Begins an exclusive read-write transaction.
    pub fn transaction(&self) -> CdbTxn {
        let id = self.cluster.inner.next_txn.get();
        self.cluster.inner.next_txn.set(id + 1);
        CdbTxn {
            cluster: self.cluster.clone(),
            client_node: self.client_node,
            id,
            writes: Vec::new(),
            held_locks: Vec::new(),
            record_written: false,
            finished: false,
        }
    }
}

/// An exclusive transaction: row locks at the leader, write intents + a
/// transaction record replicated through Raft (one consensus op), and a
/// commit (a second consensus op) — the 2C cost model of §X-B4.
#[derive(Debug)]
pub struct CdbTxn {
    cluster: CdbCluster,
    client_node: NodeId,
    id: u64,
    writes: Vec<(String, Option<Bytes>)>,
    held_locks: Vec<String>,
    record_written: bool,
    finished: bool,
}

impl CdbTxn {
    /// Waits for (then takes) the leader-side row lock on `key`.
    async fn lock_row(&mut self, key: &str) -> Result<(), CdbError> {
        if self.held_locks.iter().any(|k| k == key) {
            return Ok(());
        }
        let inner = &self.cluster.inner;
        let sim = inner.net.sim().clone();
        let deadline = sim.now() + inner.lock_wait;
        loop {
            {
                let mut locks = inner.locks.borrow_mut();
                match locks.get(key) {
                    None => {
                        locks.insert(key.to_string(), self.id);
                        self.held_locks.push(key.to_string());
                        return Ok(());
                    }
                    Some(owner) if *owner == self.id => {
                        self.held_locks.push(key.to_string());
                        return Ok(());
                    }
                    Some(_) => {}
                }
            }
            if sim.now() >= deadline {
                return Err(CdbError::LockTimeout);
            }
            sim.sleep(SimDuration::from_millis(1)).await;
        }
    }

    fn release_locks(&mut self) {
        let mut locks = self.cluster.inner.locks.borrow_mut();
        for k in self.held_locks.drain(..) {
            if locks.get(&k) == Some(&self.id) {
                locks.remove(&k);
            }
        }
    }

    /// `SELECT`: latest committed value at the leader (or this txn's own
    /// buffered write). Costs a client→leader round trip.
    ///
    /// # Errors
    ///
    /// Currently infallible network-wise (reads are leader-local), but
    /// kept fallible for interface stability.
    pub async fn select(&self, key: &str) -> Result<Option<Bytes>, CdbError> {
        if let Some((_, v)) = self.writes.iter().rev().find(|(k, _)| k == key) {
            return Ok(v.clone());
        }
        let inner = &self.cluster.inner;
        let leader = self.cluster.leader_node();
        let kv = Rc::clone(&inner.kv[inner.leader]);
        let key = key.to_string();
        let leader_idx = inner.leader;
        let cluster = self.cluster.clone();
        let v = inner
            .net
            .rpc(self.client_node, leader, HEADER + key.len(), move || {
                cluster.inner.apply_committed(leader_idx);
                let v = kv.borrow().get(&key).cloned();
                let bytes = HEADER + v.as_ref().map_or(0, |b| b.len());
                (v, bytes)
            })
            .await;
        Ok(v)
    }

    /// `UPSERT`: takes the row lock and buffers the write. The first write
    /// of the transaction also replicates the transaction record + intent
    /// (one consensus round, with the client→leader hop).
    ///
    /// # Errors
    ///
    /// [`CdbError::LockTimeout`] or [`CdbError::Unavailable`].
    pub async fn upsert(&mut self, key: &str, value: Bytes) -> Result<(), CdbError> {
        let net = self.cluster.inner.net.clone();
        let leader_node = self.cluster.leader_node();
        // Client → leader statement hop.
        net.transmit(
            self.client_node,
            leader_node,
            HEADER + key.len() + value.len(),
        )
        .await;
        self.lock_row(key).await?;
        self.writes.push((key.to_string(), Some(value)));
        if !self.record_written {
            self.record_written = true;
            // Transaction record + first intent: consensus op #1.
            self.cluster
                .consensus(vec![(
                    format!("~txn/{}", self.id),
                    Some(Bytes::from_static(b"PENDING")),
                )])
                .await?;
        }
        // Ack back to the client.
        net.transmit(leader_node, self.client_node, HEADER).await;
        Ok(())
    }

    /// `DELETE` a row (buffered like an upsert).
    ///
    /// # Errors
    ///
    /// [`CdbError::LockTimeout`] or [`CdbError::Unavailable`].
    pub async fn delete(&mut self, key: &str) -> Result<(), CdbError> {
        self.lock_row(key).await?;
        self.writes.push((key.to_string(), None));
        Ok(())
    }

    /// `COMMIT`: replicates the write batch (consensus op #2), releases the
    /// row locks, and acknowledges the client.
    ///
    /// # Errors
    ///
    /// [`CdbError::Unavailable`] if replication fails; locks are released
    /// either way.
    pub async fn commit(mut self) -> Result<(), CdbError> {
        self.finished = true;
        let mut batch = std::mem::take(&mut self.writes);
        if self.record_written {
            batch.push((format!("~txn/{}", self.id), None)); // resolve the record
        }
        let net = self.cluster.inner.net.clone();
        net.transmit(self.client_node, self.cluster.leader_node(), HEADER)
            .await;
        let res = self.cluster.consensus(batch).await;
        self.release_locks();
        net.transmit(self.cluster.leader_node(), self.client_node, HEADER)
            .await;
        res
    }

    /// `ROLLBACK`: discards buffered writes and releases locks.
    pub fn rollback(mut self) {
        self.finished = true;
        self.writes.clear();
        self.release_locks();
    }
}

impl Drop for CdbTxn {
    fn drop(&mut self) {
        if !self.finished {
            self.release_locks();
        }
    }
}
