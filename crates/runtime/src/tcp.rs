//! [`TcpTransport`]: request/response messaging over real TCP sockets.
//!
//! Frames are length-prefixed little-endian: `[u32 len][u64 corr][payload]`
//! where `len` counts the correlation id plus payload. Each peer pair uses
//! one outbound connection per direction — requests flow out on the
//! initiator's connection and responses return on the same socket, matched
//! by correlation id.
//!
//! Threading model: the protocol state machines run single-threaded on a
//! [`NativeRuntime`]; this module adds per-connection OS threads that only
//! move bytes — a reader and a writer per established connection, plus an
//! accept loop per server. Inbound requests are queued to the executor
//! thread and served there by [`TcpServer`]'s drain task, so replica state
//! needs no locks.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use music_simnet::net::NodeId;
use music_simnet::time::{SimDuration, SimTime};

use crate::native::NativeRuntime;
use crate::rt::Runtime;
use crate::transport::{RequestFuture, Transport, TransportError};

/// Largest accepted frame (a snapshot of a huge partition still fits).
const MAX_FRAME: u32 = 64 * 1024 * 1024;

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<(u64, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if !(8..=MAX_FRAME).contains(&len) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad frame length",
        ));
    }
    let mut corr_buf = [0u8; 8];
    stream.read_exact(&mut corr_buf)?;
    let mut payload = vec![0u8; len as usize - 8];
    stream.read_exact(&mut payload)?;
    Ok(Some((u64::from_le_bytes(corr_buf), payload)))
}

fn frame(corr: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + payload.len());
    buf.extend_from_slice(&((payload.len() as u32 + 8).to_le_bytes()));
    buf.extend_from_slice(&corr.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Spawns the writer thread for one connection: drains framed messages
/// from a channel onto the socket.
fn spawn_writer(mut stream: TcpStream, label: String) -> Sender<Vec<u8>> {
    let (tx, rx) = channel::<Vec<u8>>();
    std::thread::Builder::new()
        .name(format!("tcp-writer-{label}"))
        .spawn(move || {
            while let Ok(buf) = rx.recv() {
                if stream.write_all(&buf).is_err() {
                    break;
                }
            }
            let _ = stream.shutdown(std::net::Shutdown::Both);
        })
        .expect("spawn writer thread");
    tx
}

/// One in-flight outbound request.
#[derive(Default)]
struct Pending {
    result: Option<Result<Vec<u8>, TransportError>>,
    waker: Option<Waker>,
}

type PendingMap = Arc<Mutex<HashMap<u64, Pending>>>;

/// An established outbound connection.
struct Conn {
    tx: Sender<Vec<u8>>,
    pending: PendingMap,
    dead: Arc<AtomicBool>,
}

/// Future resolving to a response payload (or transport failure).
struct ResponseFuture {
    pending: PendingMap,
    corr: u64,
}

impl std::future::Future for ResponseFuture {
    type Output = Result<Vec<u8>, TransportError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut map = self.pending.lock().expect("pending map poisoned");
        match map.get_mut(&self.corr) {
            None => Poll::Ready(Err(TransportError::Closed)),
            Some(slot) => match slot.result.take() {
                Some(res) => {
                    map.remove(&self.corr);
                    Poll::Ready(res)
                }
                None => {
                    slot.waker = Some(cx.waker().clone());
                    Poll::Pending
                }
            },
        }
    }
}

impl Drop for ResponseFuture {
    fn drop(&mut self) {
        // Abandoned (timed out) request: forget the correlation slot.
        if let Ok(mut map) = self.pending.lock() {
            map.remove(&self.corr);
        }
    }
}

struct TcpInner {
    rt: NativeRuntime,
    addrs: HashMap<u32, SocketAddr>,
    conns: Mutex<HashMap<u32, Conn>>,
    next_corr: AtomicU64,
}

/// The socket-backed [`Transport`]. Clones share one connection pool.
///
/// Lives on the executor thread only (like the protocol state it serves);
/// the IO threads it spawns share the per-connection maps, not this handle.
#[derive(Clone)]
pub struct TcpTransport {
    inner: Rc<TcpInner>,
}

impl TcpTransport {
    /// Creates a transport over `rt` that reaches each node id at the given
    /// socket address.
    pub fn new(rt: NativeRuntime, addrs: HashMap<u32, SocketAddr>) -> Self {
        TcpTransport {
            inner: Rc::new(TcpInner {
                rt,
                addrs,
                conns: Mutex::new(HashMap::new()),
                next_corr: AtomicU64::new(1),
            }),
        }
    }

    /// The addresses this transport routes to.
    pub fn addrs(&self) -> &HashMap<u32, SocketAddr> {
        &self.inner.addrs
    }

    /// Drops every pooled connection (used at shutdown; writer/reader
    /// threads exit as their sockets close).
    pub fn disconnect_all(&self) {
        self.inner.conns.lock().expect("conn pool poisoned").clear();
    }

    fn connect(&self, to: u32) -> Result<(), TransportError> {
        let addr = *self
            .inner
            .addrs
            .get(&to)
            .ok_or(TransportError::UnknownNode(to))?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
            .map_err(|e| TransportError::Connect(format!("{addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
        let dead = Arc::new(AtomicBool::new(false));
        let tx = spawn_writer(
            stream
                .try_clone()
                .map_err(|e| TransportError::Connect(format!("clone stream: {e}")))?,
            format!("to-{to}"),
        );
        // Reader: complete pending requests as responses arrive; on EOF or
        // error, fail everything still outstanding.
        {
            let pending = Arc::clone(&pending);
            let dead = Arc::clone(&dead);
            let mut stream = stream;
            std::thread::Builder::new()
                .name(format!("tcp-reader-to-{to}"))
                .spawn(move || {
                    while let Ok(Some((corr, payload))) = read_frame(&mut stream) {
                        let mut map = pending.lock().expect("pending map poisoned");
                        if let Some(slot) = map.get_mut(&corr) {
                            slot.result = Some(Ok(payload));
                            if let Some(w) = slot.waker.take() {
                                w.wake();
                            }
                        }
                    }
                    dead.store(true, Ordering::Release);
                    let mut map = pending.lock().expect("pending map poisoned");
                    for (_, slot) in map.iter_mut() {
                        if slot.result.is_none() {
                            slot.result = Some(Err(TransportError::Closed));
                            if let Some(w) = slot.waker.take() {
                                w.wake();
                            }
                        }
                    }
                })
                .expect("spawn reader thread");
        }
        self.inner
            .conns
            .lock()
            .expect("conn pool poisoned")
            .insert(to, Conn { tx, pending, dead });
        Ok(())
    }

    fn send_request(&self, to: u32, payload: &[u8]) -> Result<ResponseFuture, TransportError> {
        // Reconnect once if the pooled connection is missing or dead.
        for _ in 0..2 {
            let needs_connect = {
                let conns = self.inner.conns.lock().expect("conn pool poisoned");
                !matches!(conns.get(&to), Some(c) if !c.dead.load(Ordering::Acquire))
            };
            if needs_connect {
                self.connect(to)?;
            }
            let corr = self.inner.next_corr.fetch_add(1, Ordering::Relaxed);
            let (tx, pending) = {
                let conns = self.inner.conns.lock().expect("conn pool poisoned");
                let c = conns.get(&to).expect("just connected");
                (c.tx.clone(), Arc::clone(&c.pending))
            };
            pending
                .lock()
                .expect("pending map poisoned")
                .insert(corr, Pending::default());
            if tx.send(frame(corr, payload)).is_ok() {
                return Ok(ResponseFuture { pending, corr });
            }
            // Writer gone: drop the stale conn and retry the loop once.
            pending.lock().expect("pending map poisoned").remove(&corr);
            self.inner
                .conns
                .lock()
                .expect("conn pool poisoned")
                .remove(&to);
        }
        Err(TransportError::Closed)
    }
}

impl Runtime for TcpTransport {
    type Sleep = <NativeRuntime as Runtime>::Sleep;
    type JoinHandle<T: 'static> = <NativeRuntime as Runtime>::JoinHandle<T>;

    fn now(&self) -> SimTime {
        self.inner.rt.now()
    }
    fn sleep(&self, dur: SimDuration) -> Self::Sleep {
        self.inner.rt.sleep(dur)
    }
    fn sleep_until(&self, deadline: SimTime) -> Self::Sleep {
        self.inner.rt.sleep_until(deadline)
    }
    fn spawn<F>(&self, future: F) -> Self::JoinHandle<F::Output>
    where
        F: std::future::Future + 'static,
        F::Output: 'static,
    {
        self.inner.rt.spawn(future)
    }
    fn trace(&self) -> u64 {
        self.inner.rt.trace()
    }
    fn set_trace(&self, tag: u64) {
        self.inner.rt.set_trace(tag)
    }
    fn span(&self) -> u64 {
        self.inner.rt.span()
    }
    fn set_span(&self, tag: u64) {
        self.inner.rt.set_span(tag)
    }
}

impl Transport for TcpTransport {
    fn request(&self, _from: NodeId, to: NodeId, payload: Vec<u8>) -> RequestFuture {
        match self.send_request(to.0, &payload) {
            Ok(fut) => Box::pin(fut),
            Err(e) => Box::pin(std::future::ready(Err(e))),
        }
    }
}

/// An inbound request waiting to be served on the executor thread.
struct InboundReq {
    corr: u64,
    payload: Vec<u8>,
    reply: Sender<Vec<u8>>,
}

struct ServerShared {
    inbox: Mutex<VecDeque<InboundReq>>,
    waker: Mutex<Option<Waker>>,
    shutdown: AtomicBool,
}

impl ServerShared {
    fn wake(&self) {
        if let Some(w) = self.waker.lock().expect("server waker poisoned").take() {
            w.wake();
        }
    }
}

/// Completes when the inbox is non-empty or shutdown was requested.
struct InboxWait {
    shared: Arc<ServerShared>,
}

impl std::future::Future for InboxWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.shared.shutdown.load(Ordering::Acquire)
            || !self.shared.inbox.lock().expect("inbox poisoned").is_empty()
        {
            return Poll::Ready(());
        }
        *self.shared.waker.lock().expect("server waker poisoned") = Some(cx.waker().clone());
        // Re-check after registering: an IO thread may have pushed between
        // the emptiness check and the waker store.
        if self.shared.shutdown.load(Ordering::Acquire)
            || !self.shared.inbox.lock().expect("inbox poisoned").is_empty()
        {
            return Poll::Ready(());
        }
        Poll::Pending
    }
}

/// A listening server: accepts connections and serves each inbound request
/// on the executor thread through the registered handler.
///
/// `bind` is runtime-free (and the result is `Send`), so a caller can bind
/// ports on a coordinating thread and hand each server to the thread that
/// owns its [`NativeRuntime`].
pub struct TcpServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
}

impl TcpServer {
    /// Binds `addr` (port 0 picks a free port) and starts the accept loop.
    /// Requests are queued until [`TcpServer::serve`] installs a handler.
    pub fn bind(addr: SocketAddr) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            inbox: Mutex::new(VecDeque::new()),
            waker: Mutex::new(None),
            shutdown: AtomicBool::new(false),
        });
        {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("tcp-accept-{local_addr}"))
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shared.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        stream.set_nodelay(true).ok();
                        let peer = stream
                            .peer_addr()
                            .map(|a| a.to_string())
                            .unwrap_or_else(|_| "?".into());
                        let reply = spawn_writer(
                            match stream.try_clone() {
                                Ok(s) => s,
                                Err(_) => continue,
                            },
                            format!("serve-{peer}"),
                        );
                        let shared = Arc::clone(&shared);
                        let mut stream = stream;
                        std::thread::Builder::new()
                            .name(format!("tcp-serve-{peer}"))
                            .spawn(move || {
                                while let Ok(Some((corr, payload))) = read_frame(&mut stream) {
                                    shared.inbox.lock().expect("inbox poisoned").push_back(
                                        InboundReq {
                                            corr,
                                            payload,
                                            reply: reply.clone(),
                                        },
                                    );
                                    shared.wake();
                                }
                            })
                            .expect("spawn serve thread");
                    }
                })
                .expect("spawn accept thread");
        }
        Ok(TcpServer { shared, local_addr })
    }

    /// The bound address (with the OS-assigned port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A flag shared with the drain task; setting it (via
    /// [`TcpServer::shutdown`]) stops serving.
    pub fn shutdown_handle(&self) -> TcpServerHandle {
        TcpServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.local_addr,
        }
    }

    /// Spawns the drain task on `rt`: every inbound request is passed to
    /// `handler` (synchronously, on the executor thread) and its return
    /// payload sent back. Returns a handle resolving at shutdown.
    pub fn serve(
        self,
        rt: &NativeRuntime,
        mut handler: impl FnMut(&[u8]) -> Vec<u8> + 'static,
    ) -> <NativeRuntime as Runtime>::JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        rt.spawn(async move {
            loop {
                loop {
                    let req = shared.inbox.lock().expect("inbox poisoned").pop_front();
                    match req {
                        Some(req) => {
                            let resp = handler(&req.payload);
                            // A send failure means the requester hung up;
                            // nothing to do, drop the response.
                            let _ = req.reply.send(frame(req.corr, &resp));
                        }
                        None => break,
                    }
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                InboxWait {
                    shared: Arc::clone(&shared),
                }
                .await;
            }
        })
    }
}

/// Cross-thread shutdown handle for a [`TcpServer`].
#[derive(Clone)]
pub struct TcpServerHandle {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
}

impl TcpServerHandle {
    /// Stops the accept loop and the drain task. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A connected loopback socket pair: write raw bytes on one end, run
    /// the framing decoder on the other.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn frames_roundtrip_including_the_empty_payload() {
        let (mut client, mut server) = socket_pair();
        client.write_all(&frame(7, b"payload")).unwrap();
        // len == 8 (bare correlation id, empty payload) is the floor and
        // must be accepted.
        client.write_all(&frame(u64::MAX, b"")).unwrap();
        assert_eq!(
            read_frame(&mut server).unwrap(),
            Some((7, b"payload".to_vec()))
        );
        assert_eq!(read_frame(&mut server).unwrap(), Some((u64::MAX, vec![])));
        // A clean hang-up between frames is EOF, not an error.
        drop(client);
        assert_eq!(read_frame(&mut server).unwrap(), None);
    }

    #[test]
    fn undersized_frame_length_is_rejected() {
        let (mut client, mut server) = socket_pair();
        // len < 8 cannot even hold the correlation id.
        client.write_all(&7u32.to_le_bytes()).unwrap();
        client.write_all(&[0u8; 7]).unwrap();
        let err = read_frame(&mut server).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_frame_length_is_rejected_before_allocating() {
        let (mut client, mut server) = socket_pair();
        // A corrupt length prefix just past the cap must be refused up
        // front — not trusted as a 4 GiB allocation size.
        client.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
        let err = read_frame(&mut server).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_short_frame() {
        let (mut client, mut server) = socket_pair();
        // Header promises 92 payload bytes; the peer dies after 3.
        client.write_all(&100u32.to_le_bytes()).unwrap();
        client.write_all(&1u64.to_le_bytes()).unwrap();
        client.write_all(&[0xAB; 3]).unwrap();
        drop(client);
        let err = read_frame(&mut server).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn request_response_over_loopback() {
        let server = TcpServer::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || {
            let server_rt = NativeRuntime::new();
            let done = server.serve(&server_rt, |req| {
                let s = String::from_utf8(req.to_vec()).unwrap();
                format!("ack:{s}").into_bytes()
            });
            server_rt.block_on(done);
        });

        let rt = NativeRuntime::new();
        let t = TcpTransport::new(rt.clone(), HashMap::from([(1u32, addr)]));
        let t2 = t.clone();
        let out = rt.block_on(async move {
            let raw = t2.request(NodeId(0), NodeId(1), b"ping".to_vec()).await?;
            Ok::<_, TransportError>(String::from_utf8(raw).unwrap())
        });
        assert_eq!(out.unwrap(), "ack:ping");

        handle.shutdown();
        t.disconnect_all();
        server_thread.join().unwrap();
    }

    #[test]
    fn unknown_peer_errors_fast() {
        let rt = NativeRuntime::new();
        let t = TcpTransport::new(rt.clone(), HashMap::new());
        let t2 = t.clone();
        let out = rt.block_on(async move { t2.request(NodeId(0), NodeId(9), vec![0]).await });
        assert_eq!(out, Err(TransportError::UnknownNode(9)));
    }

    #[test]
    fn concurrent_requests_are_correlated() {
        let server = TcpServer::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || {
            let server_rt = NativeRuntime::new();
            let done = server.serve(&server_rt, |req| req.to_vec()); // echo
            server_rt.block_on(done);
        });

        let rt = NativeRuntime::new();
        let t = TcpTransport::new(rt.clone(), HashMap::from([(1u32, addr)]));
        let t2 = t.clone();
        let outs = rt.block_on(async move {
            let handles: Vec<_> = (0..16u8)
                .map(|i| {
                    let t3 = t2.clone();
                    t2.spawn(async move { t3.request(NodeId(0), NodeId(1), vec![i; 3]).await })
                })
                .collect();
            let mut outs = Vec::new();
            for h in handles {
                outs.push(h.await.unwrap());
            }
            outs
        });
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out, &vec![i as u8; 3]);
        }
        handle.shutdown();
        t.disconnect_all();
        server_thread.join().unwrap();
    }
}
