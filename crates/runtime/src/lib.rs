//! # music-runtime — the sim/prod runtime split
//!
//! The MUSIC protocol crates (`music`, `music-quorumstore`,
//! `music-lockstore`) are generic over the [`Runtime`] trait defined here:
//! a clock, timers, task spawning, and per-task telemetry tags. Two
//! implementations exist:
//!
//! * [`SimRuntime`] — the deterministic `music-simnet` executor (an alias:
//!   `Sim` implements [`Runtime`] directly, so every existing test, nemesis
//!   schedule, and BENCH artifact runs unchanged, byte-for-byte);
//! * [`NativeRuntime`] — a real-time executor over `std::time` + OS
//!   threads, paired with [`TcpTransport`] for length-prefixed frames over
//!   real sockets. (The workspace builds offline from vendored crates — no
//!   tokio — so this is a minimal hand-rolled executor with the same task
//!   semantics as the simulator's.)
//!
//! [`Transport`] is the messaging sub-trait: typed request/response between
//! named nodes, implemented by [`SimTransport`] (payloads ride the
//! simulated network's latency/partition/loss machinery) and
//! [`TcpTransport`] (real sockets). The [`wire`] module holds the binary
//! codec message types implement to cross a socket.
//!
//! ## Quickstart (native)
//!
//! ```
//! use music_runtime::prelude::*;
//! use std::collections::HashMap;
//!
//! // A server thread serving `double` at an OS-assigned port…
//! let server = TcpServer::bind("127.0.0.1:0".parse().unwrap()).unwrap();
//! let addr = server.local_addr();
//! let stop = server.shutdown_handle();
//! let t = std::thread::spawn(move || {
//!     let server_rt = NativeRuntime::new();
//!     let done = server.serve(&server_rt, |req| {
//!         let n = u64::from_slice(req).unwrap();
//!         (n * 2).to_vec()
//!     });
//!     server_rt.block_on(done);
//! });
//!
//! // …and a client runtime calling it over loopback.
//! let rt = NativeRuntime::new();
//! let transport = TcpTransport::new(rt.clone(), HashMap::from([(1, addr)]));
//! let t2 = transport.clone();
//! let doubled: u64 = rt
//!     .block_on(async move { call(&t2, NodeId(0), NodeId(1), &21u64).await })
//!     .unwrap();
//! assert_eq!(doubled, 42);
//! stop.shutdown();
//! t.join().unwrap();
//! ```

#![warn(missing_docs)]

pub mod combinators;
pub mod native;
pub mod rt;
pub mod sim_transport;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use combinators::{join_all, never, quorum, timeout, yield_now, Elapsed};
pub use native::{NativeJoinHandle, NativeRuntime, NativeSleep};
pub use rt::{RtJoinHandle, Runtime, SimRuntime};
pub use sim_transport::SimTransport;
pub use tcp::{TcpServer, TcpServerHandle, TcpTransport};
pub use transport::{call, call_reliable, RequestFuture, Transport, TransportError};
pub use wire::{Wire, WireError, WireReader};

/// Everything needed to write runtime-generic protocol code or drive a
/// native deployment.
pub mod prelude {
    pub use crate::combinators::{join_all, never, quorum, timeout, yield_now, Elapsed};
    pub use crate::native::NativeRuntime;
    pub use crate::rt::{RtJoinHandle, Runtime, SimRuntime};
    pub use crate::sim_transport::SimTransport;
    pub use crate::tcp::{TcpServer, TcpServerHandle, TcpTransport};
    pub use crate::transport::{call, call_reliable, Transport, TransportError};
    pub use crate::wire::{Wire, WireError, WireReader};
    pub use music_simnet::net::NodeId;
    pub use music_simnet::time::{SimDuration, SimTime};
}
