//! Runtime-generic future combinators.
//!
//! These are field-for-field copies of `music_simnet::combinators`
//! parameterized over [`Runtime`]: identical structure and poll order, so a
//! protocol path compiled against `RT = Sim` behaves byte-for-byte like one
//! written against the simulator's own combinators (same wakeups, same
//! completion order, same telemetry), while `RT = NativeRuntime` gets real
//! timers for free.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use music_simnet::time::SimDuration;

use crate::rt::{RtJoinHandle, Runtime};

pub use music_simnet::combinators::{join_all, never, yield_now, Elapsed};

/// Future returned by [`timeout`].
pub struct Timeout<RT: Runtime, F> {
    future: Pin<Box<F>>,
    sleep: Pin<Box<RT::Sleep>>,
}

impl<RT: Runtime, F: Future> Future for Timeout<RT, F> {
    type Output = Result<F::Output, Elapsed>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = self.future.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        match self.sleep.as_mut().poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Races `future` against a deadline on `rt`'s clock.
///
/// The inner future is dropped if the deadline fires first; pair with
/// detached tasks ([`Runtime::spawn`]) when the underlying effect must
/// survive the timeout (as replica-side writes do).
pub fn timeout<RT: Runtime, F: Future>(rt: &RT, dur: SimDuration, future: F) -> Timeout<RT, F> {
    Timeout {
        future: Box::pin(future),
        sleep: Box::pin(rt.sleep(dur)),
    }
}

/// Future returned by [`quorum`].
pub struct Quorum<H, T> {
    handles: Vec<Option<H>>,
    results: Vec<(usize, T)>,
    need: usize,
}

// `Quorum` owns no self-referential data; all fields live behind owned
// containers, so moving it is always sound.
impl<H, T> Unpin for Quorum<H, T> {}

impl<H: RtJoinHandle<T>, T> Future for Quorum<H, T> {
    type Output = Vec<(usize, T)>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        for i in 0..this.handles.len() {
            if this.results.len() >= this.need {
                break;
            }
            if let Some(h) = &mut this.handles[i] {
                if let Poll::Ready(v) = Pin::new(h).poll(cx) {
                    this.handles[i] = None;
                    this.results.push((i, v));
                }
            }
        }
        if this.results.len() >= this.need {
            Poll::Ready(std::mem::take(&mut this.results))
        } else {
            Poll::Pending
        }
    }
}

/// Waits for the first `need` completions among spawned sub-operations,
/// returning `(index, output)` pairs in completion order. Remaining handles
/// are dropped — the detached stragglers still run to completion, exactly
/// like the laggard replicas of a real quorum write.
///
/// # Panics
///
/// Panics immediately if `need > handles.len()`.
pub fn quorum<H: RtJoinHandle<T>, T>(handles: Vec<H>, need: usize) -> Quorum<H, T> {
    assert!(
        need <= handles.len(),
        "quorum of {need} impossible with {} replicas",
        handles.len()
    );
    Quorum {
        results: Vec::with_capacity(need),
        handles: handles.into_iter().map(Some).collect(),
        need,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use music_simnet::executor::Sim;
    use music_simnet::time::SimTime;

    #[test]
    fn generic_timeout_matches_sim_semantics() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        let out = sim.block_on(async move {
            timeout(&sim2, SimDuration::from_millis(10), never::<u32>()).await
        });
        assert_eq!(out, Err(Elapsed));
        assert_eq!(sim.now(), SimTime::from_micros(10_000));
    }

    #[test]
    fn generic_quorum_completion_order_matches_sim() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        let (at, ids) = sim.block_on(async move {
            let mut handles = Vec::new();
            for i in 0..3u64 {
                let sim3 = sim2.clone();
                handles.push(Runtime::spawn(&sim2, async move {
                    sim3.sleep(SimDuration::from_millis(10 * (i + 1))).await;
                    i
                }));
            }
            let res = quorum(handles, 2).await;
            (
                sim2.now(),
                res.into_iter().map(|(i, _)| i).collect::<Vec<_>>(),
            )
        });
        assert_eq!(at.as_millis(), 20);
        assert_eq!(ids, vec![0, 1]);
    }
}
