//! The [`Runtime`] trait: the clock/spawn/telemetry surface the protocol
//! crates are generic over.
//!
//! Two implementations exist:
//!
//! * [`SimRuntime`] (an alias for [`Sim`]) — the deterministic discrete-event
//!   executor from `music-simnet`. Virtual time, single-threaded, seedable;
//!   every existing test, nemesis schedule, and BENCH artifact runs on it
//!   unchanged.
//! * [`NativeRuntime`](crate::native::NativeRuntime) — a single-threaded
//!   real-time executor over `std::time` + OS threads, used by the
//!   `music-node` / `music-load` binaries to run the same state machines on
//!   real sockets.
//!
//! Time is expressed in the simulator's [`SimTime`]/[`SimDuration`] units
//! (microseconds) on both runtimes, so protocol code does not branch on the
//! clock source: on the native runtime `now()` is microseconds since the
//! UNIX epoch, which co-located processes agree on closely enough for the
//! demo cluster (leases, which need tighter bounds, are disabled there).

use std::future::Future;

use music_simnet::executor::{JoinHandle, Sim, Sleep};
use music_simnet::time::{SimDuration, SimTime};

/// A handle to a spawned task: a future for its output plus non-blocking
/// completion probes, mirroring `music_simnet::executor::JoinHandle`.
///
/// Dropping a handle must *detach* the task (never cancel it): quorum
/// operations rely on straggler sub-operations completing in the background
/// exactly like the laggard replicas of a real quorum write.
pub trait RtJoinHandle<T>: Future<Output = T> + Unpin {
    /// Takes the result if the task has finished.
    fn try_result(&self) -> Option<T>;
    /// Whether the task has finished (result may already be taken).
    fn is_done(&self) -> bool;
}

/// The runtime surface MUSIC's state machines need: a clock, timers, task
/// spawning, and the per-task telemetry trace/span tags.
///
/// Implementations are cheap-to-clone handles (reference-counted cores);
/// everything is single-threaded and `!Send`-friendly by design — protocol
/// state lives behind `Rc<RefCell<...>>` on both runtimes.
pub trait Runtime: Clone + 'static {
    /// Timer future returned by [`sleep`](Runtime::sleep).
    type Sleep: Future<Output = ()> + 'static;
    /// Handle type returned by [`spawn`](Runtime::spawn).
    type JoinHandle<T: 'static>: RtJoinHandle<T> + 'static;

    /// Current time (virtual on the simulator, wall-clock on native).
    fn now(&self) -> SimTime;

    /// A future that completes after `dur`.
    fn sleep(&self, dur: SimDuration) -> Self::Sleep;

    /// A future that completes when the clock reaches `deadline`.
    fn sleep_until(&self, deadline: SimTime) -> Self::Sleep;

    /// Spawns a task. Dropping the handle detaches it (see [`RtJoinHandle`]).
    fn spawn<F>(&self, future: F) -> Self::JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static;

    /// The telemetry trace tag of the currently running task (0 = none).
    /// Inherited by spawned tasks; purely observational.
    fn trace(&self) -> u64;

    /// Sets the current task's trace tag.
    fn set_trace(&self, tag: u64);

    /// The phase-span tag of the currently running task (0 = none).
    fn span(&self) -> u64;

    /// Sets the current task's span tag.
    fn set_span(&self, tag: u64);
}

/// The deterministic simulator *is* a runtime; the alias names the sim side
/// of the split at call sites (`MusicReplica<SimRuntime>` vs
/// `MusicReplica<NativeRuntime>`).
pub type SimRuntime = Sim;

impl<T> RtJoinHandle<T> for JoinHandle<T> {
    fn try_result(&self) -> Option<T> {
        JoinHandle::try_result(self)
    }
    fn is_done(&self) -> bool {
        JoinHandle::is_done(self)
    }
}

impl Runtime for Sim {
    type Sleep = Sleep;
    type JoinHandle<T: 'static> = JoinHandle<T>;

    fn now(&self) -> SimTime {
        Sim::now(self)
    }
    fn sleep(&self, dur: SimDuration) -> Sleep {
        Sim::sleep(self, dur)
    }
    fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sim::sleep_until(self, deadline)
    }
    fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        Sim::spawn(self, future)
    }
    fn trace(&self) -> u64 {
        Sim::trace(self)
    }
    fn set_trace(&self, tag: u64) {
        Sim::set_trace(self, tag)
    }
    fn span(&self) -> u64 {
        Sim::span(self)
    }
    fn set_span(&self, tag: u64) {
        Sim::set_span(self, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises the trait surface generically, as protocol code does.
    async fn sleep_then_spawn<RT: Runtime>(rt: RT) -> u32 {
        let before = rt.now();
        rt.sleep(SimDuration::from_millis(5)).await;
        assert_eq!(rt.now() - before, SimDuration::from_millis(5));
        let h = rt.spawn(async { 40u32 });
        h.await + 2
    }

    #[test]
    fn sim_implements_runtime() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        let got = sim.block_on(sleep_then_spawn(sim2));
        assert_eq!(got, 42);
    }

    #[test]
    fn sim_trace_tags_via_trait() {
        let sim = Sim::new();
        let sim2 = sim.clone();
        sim.block_on(async move {
            Runtime::set_trace(&sim2, 99);
            assert_eq!(Runtime::trace(&sim2), 99);
            Runtime::set_span(&sim2, 7);
            assert_eq!(Runtime::span(&sim2), 7);
        });
    }
}
