//! [`NativeRuntime`]: a single-threaded real-time executor over `std::time`
//! and OS threads.
//!
//! This is the production side of the runtime split. The workspace builds
//! hermetically from vendored crates (no registry, no tokio), so instead of
//! binding to an external async runtime the native runtime is a minimal
//! hand-rolled executor with the same shape as the simulator's: a ready
//! queue of tasks, a timer heap, and `Rc`-based join handles. The
//! differences are exactly the ones that matter for production:
//!
//! * the clock is wall time (microseconds since the UNIX epoch, monotonic
//!   after process start), not virtual time;
//! * an idle executor *blocks* on a condition variable until the next timer
//!   or an external wake, instead of advancing the clock;
//! * wakers are `Send + Sync`, so socket reader threads (see
//!   [`crate::tcp`]) can wake tasks from outside the executor thread.
//!
//! Protocol state stays single-threaded (`Rc<RefCell<...>>`) on the
//! executor thread, exactly as under the simulator — IO threads only move
//! bytes and wake tasks.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant, SystemTime};

use music_simnet::time::{SimDuration, SimTime};

use crate::rt::{RtJoinHandle, Runtime};

/// Cross-thread wake state: the ready queue plus a condvar the executor
/// parks on when idle.
pub(crate) struct Shared {
    ready: Mutex<VecDeque<usize>>,
    idle: Condvar,
}

impl Shared {
    fn push(&self, id: usize) {
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
        self.idle.notify_one();
    }
}

struct NativeWaker {
    id: usize,
    queued: AtomicBool,
    shared: Arc<Shared>,
}

impl Wake for NativeWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            self.shared.push(self.id);
        }
    }
}

struct TaskSlot {
    future: RefCell<Pin<Box<dyn Future<Output = ()>>>>,
    waker_state: Arc<NativeWaker>,
    waker: Waker,
    // Causal inheritance, mirroring the simulator: a spawned task belongs
    // to the trace/span that spawned it until it opens its own.
    trace_tag: Cell<u64>,
    span_tag: Cell<u64>,
}

struct TimerEntry {
    deadline: SimTime,
    seq: u64,
    waker: Waker,
    cancelled: Rc<Cell<bool>>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct Inner {
    shared: Arc<Shared>,
    tasks: RefCell<Vec<Option<Rc<TaskSlot>>>>,
    free: RefCell<Vec<usize>>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    timer_seq: Cell<u64>,
    live: Cell<usize>,
    current_trace: Cell<u64>,
    current_span: Cell<u64>,
    /// Monotonic anchor for `now()`.
    started: Instant,
    /// Wall-clock microseconds at `started` (UNIX epoch offset), so
    /// co-located processes read roughly the same clock.
    epoch_us: u64,
}

/// The real-time [`Runtime`]: see the module docs.
///
/// Cheap to clone (a reference-counted core); `!Send`, like the simulator —
/// one runtime per thread.
#[derive(Clone)]
pub struct NativeRuntime {
    inner: Rc<Inner>,
}

impl Default for NativeRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for NativeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeRuntime")
            .field("now", &self.now())
            .field("live_tasks", &self.inner.live.get())
            .finish()
    }
}

/// Longest the idle executor sleeps before re-checking external conditions
/// (shutdown flags set by IO threads that do not notify the condvar).
const MAX_PARK: Duration = Duration::from_millis(50);

impl NativeRuntime {
    /// Creates a runtime; the clock reads wall time from construction on.
    pub fn new() -> Self {
        let epoch_us = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        NativeRuntime {
            inner: Rc::new(Inner {
                shared: Arc::new(Shared {
                    ready: Mutex::new(VecDeque::new()),
                    idle: Condvar::new(),
                }),
                tasks: RefCell::new(Vec::new()),
                free: RefCell::new(Vec::new()),
                timers: RefCell::new(BinaryHeap::new()),
                timer_seq: Cell::new(0),
                live: Cell::new(0),
                current_trace: Cell::new(0),
                current_span: Cell::new(0),
                started: Instant::now(),
                epoch_us,
            }),
        }
    }

    /// Number of tasks spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.live.get()
    }

    fn poll_task(&self, id: usize) {
        let slot = {
            let tasks = self.inner.tasks.borrow();
            match tasks.get(id).and_then(|s| s.clone()) {
                Some(s) => s,
                None => return, // already completed; stale wake
            }
        };
        slot.waker_state.queued.store(false, Ordering::Release);
        let mut cx = Context::from_waker(&slot.waker);
        let outer_trace = self.inner.current_trace.replace(slot.trace_tag.get());
        let outer_span = self.inner.current_span.replace(slot.span_tag.get());
        let poll = slot.future.borrow_mut().as_mut().poll(&mut cx);
        slot.trace_tag
            .set(self.inner.current_trace.replace(outer_trace));
        slot.span_tag
            .set(self.inner.current_span.replace(outer_span));
        if poll.is_ready() {
            self.inner.tasks.borrow_mut()[id] = None;
            self.inner.free.borrow_mut().push(id);
            self.inner.live.set(self.inner.live.get() - 1);
        }
    }

    /// Fires every timer whose deadline has passed. Returns the next
    /// pending deadline, if any.
    fn fire_due_timers(&self) -> Option<SimTime> {
        let now = self.now();
        loop {
            let entry = {
                let mut timers = self.inner.timers.borrow_mut();
                match timers.peek() {
                    Some(Reverse(e)) if e.cancelled.get() => {
                        timers.pop();
                        continue;
                    }
                    Some(Reverse(e)) if e.deadline <= now => timers.pop().map(|Reverse(e)| e),
                    Some(Reverse(e)) => return Some(e.deadline),
                    None => return None,
                }
            };
            if let Some(e) = entry {
                e.waker.wake();
            }
        }
    }

    /// Runs one scheduler turn: drain runnable tasks, fire due timers, and
    /// if nothing is runnable park until the next timer or an external wake
    /// (bounded by [`MAX_PARK`] so callers can re-check stop conditions).
    pub fn turn(&self) {
        loop {
            let next = {
                let mut ready = self
                    .inner
                    .shared
                    .ready
                    .lock()
                    .expect("ready queue poisoned");
                ready.pop_front()
            };
            match next {
                Some(id) => self.poll_task(id),
                None => break,
            }
        }
        let next_deadline = self.fire_due_timers();
        let ready = self
            .inner
            .shared
            .ready
            .lock()
            .expect("ready queue poisoned");
        if !ready.is_empty() {
            return;
        }
        let wait = match next_deadline {
            Some(d) => {
                let now = self.now();
                if d <= now {
                    return;
                }
                Duration::from_micros((d - now).as_micros()).min(MAX_PARK)
            }
            None => MAX_PARK,
        };
        // Park until woken or the wait elapses; spurious wakeups are fine,
        // the caller loops.
        let _unused = self
            .inner
            .shared
            .idle
            .wait_timeout(ready, wait)
            .expect("ready queue poisoned");
    }

    /// Runs turns until `stop` returns true.
    pub fn run_while(&self, mut keep_going: impl FnMut() -> bool) {
        while keep_going() {
            self.turn();
        }
    }

    /// Spawns `future` and runs the executor until it completes.
    pub fn block_on<F>(&self, future: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let handle = self.spawn(future);
        loop {
            if let Some(v) = handle.state.borrow_mut().result.take() {
                return v;
            }
            self.turn();
        }
    }

    pub(crate) fn register_timer(&self, deadline: SimTime, waker: Waker) -> Rc<Cell<bool>> {
        let seq = self.inner.timer_seq.get();
        self.inner.timer_seq.set(seq + 1);
        let cancelled = Rc::new(Cell::new(false));
        self.inner.timers.borrow_mut().push(Reverse(TimerEntry {
            deadline,
            seq,
            waker,
            cancelled: Rc::clone(&cancelled),
        }));
        cancelled
    }
}

struct JoinState<T> {
    result: Option<T>,
    done: bool,
    waker: Option<Waker>,
}

/// Future resolving to a spawned task's output. Dropping it detaches the
/// task (never cancels), mirroring the simulator's handle semantics.
pub struct NativeJoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> RtJoinHandle<T> for NativeJoinHandle<T> {
    fn try_result(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
    fn is_done(&self) -> bool {
        self.state.borrow().done
    }
}

impl<T> Future for NativeJoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        match s.result.take() {
            Some(v) => Poll::Ready(v),
            None => {
                s.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Timer future; dropping it cancels the underlying heap entry.
pub struct NativeSleep {
    rt: NativeRuntime,
    deadline: SimTime,
    registration: Option<(Rc<Cell<bool>>, Waker)>,
}

impl Future for NativeSleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.rt.now() >= self.deadline {
            self.registration = None;
            Poll::Ready(())
        } else {
            let needs_registration = match &self.registration {
                None => true,
                Some((_, registered)) => !registered.will_wake(cx.waker()),
            };
            if needs_registration {
                if let Some((old, _)) = self.registration.take() {
                    old.set(true);
                }
                let deadline = self.deadline;
                let waker = cx.waker().clone();
                let flag = self.rt.register_timer(deadline, waker.clone());
                self.registration = Some((flag, waker));
            }
            Poll::Pending
        }
    }
}

impl Drop for NativeSleep {
    fn drop(&mut self) {
        if let Some((flag, _)) = self.registration.take() {
            flag.set(true);
        }
    }
}

impl Runtime for NativeRuntime {
    type Sleep = NativeSleep;
    type JoinHandle<T: 'static> = NativeJoinHandle<T>;

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.inner.epoch_us + self.inner.started.elapsed().as_micros() as u64)
    }

    fn sleep(&self, dur: SimDuration) -> NativeSleep {
        self.sleep_until(self.now() + dur)
    }

    fn sleep_until(&self, deadline: SimTime) -> NativeSleep {
        NativeSleep {
            rt: self.clone(),
            deadline,
            registration: None,
        }
    }

    fn spawn<F>(&self, future: F) -> NativeJoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            done: false,
            waker: None,
        }));
        let state2 = Rc::clone(&state);
        let wrapped = async move {
            let out = future.await;
            let mut s = state2.borrow_mut();
            s.result = Some(out);
            s.done = true;
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        };
        let id = {
            let mut free = self.inner.free.borrow_mut();
            if let Some(id) = free.pop() {
                id
            } else {
                let mut tasks = self.inner.tasks.borrow_mut();
                tasks.push(None);
                tasks.len() - 1
            }
        };
        let waker_state = Arc::new(NativeWaker {
            id,
            queued: AtomicBool::new(true),
            shared: Arc::clone(&self.inner.shared),
        });
        let waker = Waker::from(Arc::clone(&waker_state));
        let slot = Rc::new(TaskSlot {
            future: RefCell::new(Box::pin(wrapped)),
            waker_state,
            waker,
            trace_tag: Cell::new(self.inner.current_trace.get()),
            span_tag: Cell::new(self.inner.current_span.get()),
        });
        self.inner.tasks.borrow_mut()[id] = Some(slot);
        self.inner.live.set(self.inner.live.get() + 1);
        self.inner.shared.push(id);
        NativeJoinHandle { state }
    }

    fn trace(&self) -> u64 {
        self.inner.current_trace.get()
    }
    fn set_trace(&self, tag: u64) {
        self.inner.current_trace.set(tag);
    }
    fn span(&self) -> u64 {
        self.inner.current_span.get()
    }
    fn set_span(&self, tag: u64) {
        self.inner.current_span.set(tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_runs_spawned_tasks() {
        let rt = NativeRuntime::new();
        let rt2 = rt.clone();
        let got = rt.block_on(async move {
            let h = rt2.spawn(async { 40u32 });
            h.await + 2
        });
        assert_eq!(got, 42);
    }

    #[test]
    fn sleep_advances_wall_time() {
        let rt = NativeRuntime::new();
        let rt2 = rt.clone();
        let before = rt.now();
        rt.block_on(async move {
            rt2.sleep(SimDuration::from_millis(20)).await;
        });
        let elapsed = rt.now() - before;
        assert!(
            elapsed >= SimDuration::from_millis(19),
            "slept only {elapsed:?}"
        );
    }

    #[test]
    fn cross_thread_wake_reaches_task() {
        let rt = NativeRuntime::new();
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        struct WaitFlag {
            flag: Arc<AtomicBool>,
            registered: Arc<Mutex<Option<Waker>>>,
        }
        impl Future for WaitFlag {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.flag.load(Ordering::Acquire) {
                    Poll::Ready(())
                } else {
                    *self.registered.lock().unwrap() = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
        let slot: Arc<Mutex<Option<Waker>>> = Arc::new(Mutex::new(None));
        let slot2 = Arc::clone(&slot);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            flag2.store(true, Ordering::Release);
            if let Some(w) = slot2.lock().unwrap().take() {
                w.wake();
            }
        });
        rt.block_on(WaitFlag {
            flag,
            registered: slot,
        });
        t.join().unwrap();
    }

    #[test]
    fn timeout_combinator_works_on_native() {
        use crate::combinators::{never, timeout, Elapsed};
        let rt = NativeRuntime::new();
        let rt2 = rt.clone();
        let out = rt.block_on(async move {
            timeout(&rt2, SimDuration::from_millis(15), never::<u32>()).await
        });
        assert_eq!(out, Err(Elapsed));
    }

    #[test]
    fn quorum_combinator_works_on_native() {
        use crate::combinators::quorum;
        let rt = NativeRuntime::new();
        let rt2 = rt.clone();
        let ids = rt.block_on(async move {
            let mut handles = Vec::new();
            for i in 0..3u64 {
                let rt3 = rt2.clone();
                handles.push(rt2.spawn(async move {
                    rt3.sleep(SimDuration::from_millis(5 * (i + 1))).await;
                    i
                }));
            }
            let res = quorum(handles, 2).await;
            res.into_iter().map(|(i, _)| i).collect::<Vec<_>>()
        });
        assert_eq!(ids, vec![0, 1]);
    }
}
