//! The [`Transport`] sub-trait: typed request/response messaging between
//! named nodes, plus the retry helper protocol code uses for reliable
//! fan-out.
//!
//! Two implementations:
//!
//! * [`SimTransport`](crate::sim_transport::SimTransport) — routes payloads
//!   through `music_simnet::net::Network`, so remote-style stores can be
//!   exercised deterministically (latency profiles, partitions, loss) in
//!   tests;
//! * [`TcpTransport`](crate::tcp::TcpTransport) — length-prefixed frames
//!   over real TCP sockets, used by `music-node` / `music-load`.

use std::future::Future;
use std::pin::Pin;

use music_simnet::net::NodeId;
use music_simnet::time::SimDuration;

use crate::combinators::timeout;
use crate::rt::Runtime;
use crate::wire::{Wire, WireError};

/// A request that could not be completed by the transport.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TransportError {
    /// No route/connection to the peer could be established.
    Connect(String),
    /// The connection died before a response arrived.
    Closed,
    /// The peer answered, but the payload failed to decode.
    Codec(&'static str),
    /// The peer has no node serving the requested id.
    UnknownNode(u32),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Connect(e) => write!(f, "connect failed: {e}"),
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::Codec(e) => write!(f, "codec error: {e}"),
            TransportError::UnknownNode(n) => write!(f, "unknown node {n}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Codec(e.0)
    }
}

/// Boxed response future (transports are object-shaped behind `Rc` cores;
/// one allocation per request is noise next to a socket round trip).
pub type RequestFuture = Pin<Box<dyn Future<Output = Result<Vec<u8>, TransportError>>>>;

/// A [`Runtime`] that can also carry request/response payloads between
/// named nodes. `from` names the requesting node (used for telemetry and,
/// on the simulated transport, latency lookup); `to` the serving node.
pub trait Transport: Runtime {
    /// Sends `payload` to `to` and resolves with the response payload.
    ///
    /// The returned future is detached from `&self` (safe to spawn). A
    /// response that never arrives manifests as an error on real sockets
    /// and as a never-completing future on the simulated transport — either
    /// way, callers guard with [`timeout`].
    fn request(&self, from: NodeId, to: NodeId, payload: Vec<u8>) -> RequestFuture;
}

/// Typed request/response: encode, send, decode.
pub async fn call<T, Req, Resp>(
    transport: &T,
    from: NodeId,
    to: NodeId,
    req: &Req,
) -> Result<Resp, TransportError>
where
    T: Transport,
    Req: Wire,
    Resp: Wire,
{
    let raw = transport.request(from, to, req.to_vec()).await?;
    Ok(Resp::from_slice(&raw)?)
}

/// Typed request with retries, mirroring the simulator's `rpc_reliable`:
/// `attempts` tries total, re-sending after `retry_after` when an attempt
/// errors or stalls. The last attempt is not raced against a timer (callers
/// wrap whole operations in their own timeout).
pub async fn call_reliable<T, Req, Resp>(
    transport: &T,
    from: NodeId,
    to: NodeId,
    req: &Req,
    attempts: u32,
    retry_after: SimDuration,
) -> Result<Resp, TransportError>
where
    T: Transport,
    Req: Wire,
    Resp: Wire,
{
    let payload = req.to_vec();
    let mut last_err = TransportError::Closed;
    for attempt in 0..attempts.max(1) {
        let last = attempt + 1 == attempts.max(1);
        let fut = transport.request(from, to, payload.clone());
        let outcome = if last {
            Some(fut.await)
        } else {
            // A timeout (None) means the request stalled: retransmit.
            timeout(transport, retry_after, fut).await.ok()
        };
        match outcome {
            Some(Ok(raw)) => return Ok(Resp::from_slice(&raw)?),
            Some(Err(e)) => {
                last_err = e;
                if last {
                    break;
                }
                // Errored fast (e.g. connection refused): pace retries so a
                // dead peer is not hammered in a tight loop.
                transport.sleep(retry_after).await;
            }
            None => last_err = TransportError::Closed,
        }
    }
    Err(last_err)
}
