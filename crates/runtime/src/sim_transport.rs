//! [`SimTransport`]: the [`Transport`] implementation over the
//! deterministic simulated network.
//!
//! Handlers (one per serving node) run synchronously against replica state,
//! exactly like the closure-based RPC handlers the simulated stores use;
//! payload bytes ride the same latency/loss/partition machinery via
//! [`Network::rpc`], so remote-style stores can be tested under every
//! existing nemesis condition without opening a socket.

use std::cell::RefCell;
use std::collections::HashMap;
use std::future::Future;
use std::rc::Rc;

use music_simnet::executor::Sim;
use music_simnet::net::{Network, NodeId};
use music_simnet::time::{SimDuration, SimTime};

use crate::rt::Runtime;
use crate::transport::{RequestFuture, Transport, TransportError};

type Handler = Rc<RefCell<dyn FnMut(&[u8]) -> Vec<u8>>>;

/// Fixed per-message framing overhead charged to the simulated network,
/// matching the TCP transport's frame header (length + correlation id).
pub const FRAME_OVERHEAD: usize = 12;

/// A simulated-network transport: requests are delivered to registered
/// per-node handlers with real payload byte counts.
#[derive(Clone)]
pub struct SimTransport {
    net: Network,
    handlers: Rc<RefCell<HashMap<u32, Handler>>>,
}

impl SimTransport {
    /// Wraps a simulated network.
    pub fn new(net: Network) -> Self {
        SimTransport {
            net,
            handlers: Rc::new(RefCell::new(HashMap::new())),
        }
    }

    /// The underlying network (for partitions, loss, stats in tests).
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Registers the serving handler for `node`, replacing any previous one.
    pub fn serve(&self, node: NodeId, handler: impl FnMut(&[u8]) -> Vec<u8> + 'static) {
        self.handlers
            .borrow_mut()
            .insert(node.0, Rc::new(RefCell::new(handler)));
    }

    fn sim(&self) -> &Sim {
        self.net.sim()
    }
}

impl Runtime for SimTransport {
    type Sleep = <Sim as Runtime>::Sleep;
    type JoinHandle<T: 'static> = <Sim as Runtime>::JoinHandle<T>;

    fn now(&self) -> SimTime {
        self.sim().now()
    }
    fn sleep(&self, dur: SimDuration) -> Self::Sleep {
        self.sim().sleep(dur)
    }
    fn sleep_until(&self, deadline: SimTime) -> Self::Sleep {
        self.sim().sleep_until(deadline)
    }
    fn spawn<F>(&self, future: F) -> Self::JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.sim().spawn(future)
    }
    fn trace(&self) -> u64 {
        self.sim().trace()
    }
    fn set_trace(&self, tag: u64) {
        self.sim().set_trace(tag)
    }
    fn span(&self) -> u64 {
        self.sim().span()
    }
    fn set_span(&self, tag: u64) {
        self.sim().set_span(tag)
    }
}

impl Transport for SimTransport {
    fn request(&self, from: NodeId, to: NodeId, payload: Vec<u8>) -> RequestFuture {
        let net = self.net.clone();
        let handlers = Rc::clone(&self.handlers);
        Box::pin(async move {
            let handler = match handlers.borrow().get(&to.0) {
                Some(h) => Rc::clone(h),
                None => return Err(TransportError::UnknownNode(to.0)),
            };
            let req_bytes = payload.len() + FRAME_OVERHEAD;
            let resp = net
                .rpc(from, to, req_bytes, || {
                    let resp = (handler.borrow_mut())(&payload);
                    let bytes = resp.len() + FRAME_OVERHEAD;
                    (resp, bytes)
                })
                .await;
            Ok(resp)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::call;
    use crate::wire::Wire;
    use music_simnet::net::NetConfig;
    use music_simnet::topology::{LatencyProfile, SiteId};

    fn echo_upper(req: &[u8]) -> Vec<u8> {
        let s = String::from_slice(req).unwrap();
        s.to_uppercase().to_vec()
    }

    #[test]
    fn typed_call_roundtrips_through_simulated_network() {
        let sim = Sim::new();
        let net = Network::new(
            sim.clone(),
            LatencyProfile::one_l(),
            NetConfig::default(),
            7,
        );
        let a = net.add_node(SiteId(0));
        let b = net.add_node(SiteId(0));
        let t = SimTransport::new(net);
        t.serve(b, echo_upper);
        let t2 = t.clone();
        let out: String = sim
            .block_on(async move { call(&t2, a, b, &"hello".to_string()).await })
            .unwrap();
        assert_eq!(out, "HELLO");
        assert!(sim.now() > SimTime::ZERO, "rpc consumed simulated latency");
    }

    #[test]
    fn unknown_node_is_an_error() {
        let sim = Sim::new();
        let net = Network::new(
            sim.clone(),
            LatencyProfile::one_l(),
            NetConfig::default(),
            7,
        );
        let a = net.add_node(SiteId(0));
        let t = SimTransport::new(net);
        let t2 = t.clone();
        let out = sim.block_on(async move { t2.request(a, NodeId(99), vec![1]).await });
        assert_eq!(out, Err(TransportError::UnknownNode(99)));
    }
}
