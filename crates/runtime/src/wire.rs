//! A tiny hand-rolled binary codec for request/response payloads.
//!
//! The vendored dependency set has no serde binary format (no bincode), so
//! the transport layer frames messages with this fixed little-endian codec:
//! explicit, versionless, and dependency-free. Every message type that
//! crosses a socket implements [`Wire`]; framing (length prefixes,
//! correlation ids) lives in [`crate::tcp`].

use bytes::Bytes;
use music_simnet::time::{SimDuration, SimTime};

/// Decode failure: truncated or structurally invalid payload.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct WireError(pub &'static str);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Cursor over an incoming payload.
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError("truncated payload"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u32()? as usize;
        self.take(n)
    }
}

/// Symmetric binary encoding for socket payloads.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes one value from the reader.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Convenience: encodes into a fresh buffer.
    fn to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Convenience: decodes a complete payload, rejecting trailing bytes.
    fn from_slice(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError("trailing bytes"));
        }
        Ok(v)
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u8()
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError("invalid bool")),
        }
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(r.u64()? as usize)
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let raw = r.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError("invalid utf8"))
    }
}

impl Wire for Bytes {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Bytes::copy_from_slice(r.bytes()?))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError("invalid option tag")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.u32()? as usize;
        // Guard allocation against corrupt length prefixes.
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Wire for SimTime {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_micros().encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SimTime::from_micros(r.u64()?))
    }
}

impl Wire for SimDuration {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_micros().encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SimDuration::from_micros(r.u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let buf = v.to_vec();
        assert_eq!(T::from_slice(&buf).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip("héllo wörld".to_string());
        roundtrip(vec![1u8, 2, 3]);
        roundtrip(Bytes::from_static(b"abc"));
        roundtrip(Option::<u64>::None);
        roundtrip(Some(42u64));
        roundtrip(vec!["a".to_string(), "b".to_string()]);
        roundtrip((7u32, "x".to_string()));
        roundtrip(SimTime::from_micros(123_456));
        roundtrip(SimDuration::from_millis(9));
    }

    #[test]
    fn truncated_and_trailing_are_rejected() {
        let buf = 12345u64.to_vec();
        assert!(u64::from_slice(&buf[..7]).is_err());
        let mut long = buf.clone();
        long.push(0);
        assert!(u64::from_slice(&long).is_err());
        assert!(bool::from_slice(&[9]).is_err());
    }
}
