//! Deployment builder: wires the simulator, network, back-end stores, and
//! MUSIC replicas into the Figure-1 topology.
//!
//! The default layout mirrors the paper's production deployment: per site,
//! one (or more) back-end store node — used by *both* the lock store and
//! the data store, as the production system uses one Cassandra cluster for
//! both — plus one MUSIC replica, with clients talking to the closest
//! replica.

use bytes::Bytes;

use music_lockstore::LockStore;
use music_quorumstore::{DataRow, ReplicatedTable, TableConfig};
use music_simnet::clock::DriftSpec;
use music_simnet::executor::Sim;
use music_simnet::net::{NetConfig, Network, NodeId};
use music_simnet::time::SimDuration;
use music_simnet::topology::{LatencyProfile, SiteId};

use crate::client::MusicClient;
use crate::config::MusicConfig;
use crate::replica::{synch_key, MusicReplica};
use crate::stats::OpStats;

/// Per-node clock drift for a simulated deployment: every MUSIC replica
/// (and its co-spawned daemons) reads time through its own seeded skewed
/// clock whose |local − true| stays within `max_skew` over `horizon`.
///
/// Event delivery and timer scheduling stay on true virtual time, so a
/// seeded run replays byte-identically with or without telemetry; only the
/// *timestamps* nodes take (lease expiries, watchdog staleness scans) are
/// skewed. Pair with [`MusicConfig::clock_epsilon`](crate::MusicConfig):
/// the drift-safe lease guards tolerate exactly `max_skew ≤ ε`.
#[derive(Copy, Clone, Debug)]
pub struct ClockDrift {
    /// Per-node skew budget: |local − true| ≤ `max_skew` over `horizon`.
    pub max_skew: SimDuration,
    /// Virtual-time horizon the budget is guaranteed over.
    pub horizon: SimDuration,
}

impl ClockDrift {
    /// A drift budget over a 120-second horizon — generous for every
    /// simulated workload in this repo (nemesis runs quiesce in ~10 s).
    pub fn bounded(max_skew: SimDuration) -> Self {
        ClockDrift {
            max_skew,
            horizon: SimDuration::from_secs(120),
        }
    }

    /// The deterministic per-node drift spec this configuration assigns to
    /// `node` under deployment seed `seed`.
    pub fn spec_for(&self, seed: u64, node: NodeId) -> DriftSpec {
        let node_seed = seed ^ (u64::from(node.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DriftSpec::bounded(node_seed, self.max_skew, self.horizon)
    }
}

/// Builder for a complete simulated MUSIC deployment.
///
/// # Examples
///
/// ```
/// use music::system::MusicSystemBuilder;
/// use music_simnet::prelude::*;
/// use bytes::Bytes;
///
/// let system = MusicSystemBuilder::new()
///     .profile(LatencyProfile::one_us())
///     .seed(42)
///     .build();
/// let client = system.client_at_site(0);
/// let sim = system.sim().clone();
/// sim.block_on(async move {
///     let cs = client.enter("greeting").await.unwrap();
///     cs.put(Bytes::from_static(b"hello")).await.unwrap();
///     let v = cs.get().await.unwrap();
///     assert_eq!(v.unwrap(), Bytes::from_static(b"hello"));
///     cs.release().await.unwrap();
/// });
/// ```
#[derive(Clone, Debug)]
pub struct MusicSystemBuilder {
    profile: LatencyProfile,
    net_cfg: NetConfig,
    table_cfg: TableConfig,
    music_cfg: MusicConfig,
    store_nodes_per_site: usize,
    replicas_per_site: usize,
    rf: usize,
    seed: u64,
    recorder: music_telemetry::Recorder,
    drift: Option<ClockDrift>,
}

impl Default for MusicSystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MusicSystemBuilder {
    /// A 3-site deployment on the `1Us` profile with one store node and one
    /// MUSIC replica per site, RF = 3.
    pub fn new() -> Self {
        MusicSystemBuilder {
            profile: LatencyProfile::one_us(),
            net_cfg: NetConfig::default(),
            table_cfg: TableConfig::default(),
            music_cfg: MusicConfig::default(),
            store_nodes_per_site: 1,
            replicas_per_site: 1,
            rf: 3,
            seed: 0,
            recorder: music_telemetry::Recorder::off(),
            drift: None,
        }
    }

    /// Gives every MUSIC replica a seeded skewed clock (see [`ClockDrift`]).
    /// `None` (the default) keeps all nodes on true virtual time.
    pub fn clock_drift(mut self, drift: Option<ClockDrift>) -> Self {
        self.drift = drift;
        self
    }

    /// Installs a telemetry recorder: every layer (network, stores, MUSIC
    /// replicas, clients, daemons) reports counters — and, for a tracing
    /// recorder, causal events — into it. Recording never perturbs the
    /// simulation: a seeded run produces the identical schedule with
    /// telemetry on or off.
    pub fn telemetry(mut self, recorder: music_telemetry::Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Sets the WAN latency profile (Table II or custom).
    pub fn profile(mut self, profile: LatencyProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the network cost model.
    pub fn net_config(mut self, cfg: NetConfig) -> Self {
        self.net_cfg = cfg;
        self
    }

    /// Sets store-operation tunables (timeouts, LWT retries).
    pub fn table_config(mut self, cfg: TableConfig) -> Self {
        self.table_cfg = cfg;
        self
    }

    /// Sets the MUSIC configuration (T, δ, retry policy, put mode).
    pub fn music_config(mut self, cfg: MusicConfig) -> Self {
        self.music_cfg = cfg;
        self
    }

    /// Sets how many store nodes each site hosts (Fig. 4(b) scales this
    /// from 1 to 3 with RF fixed at 3, i.e. clusters of 3 → 9 nodes).
    pub fn store_nodes_per_site(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one store node per site");
        self.store_nodes_per_site = n;
        self
    }

    /// Sets how many MUSIC replicas each site hosts. The paper's production
    /// deployment pairs a 9-replica MUSIC cluster with a 9-node Cassandra
    /// cluster (Fig. 1); scale this together with
    /// [`MusicSystemBuilder::store_nodes_per_site`] to reproduce Fig. 4(b).
    pub fn replicas_per_site(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one MUSIC replica per site");
        self.replicas_per_site = n;
        self
    }

    /// Sets the replication factor.
    pub fn replication_factor(mut self, rf: usize) -> Self {
        self.rf = rf;
        self
    }

    /// Sets the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the deployment.
    pub fn build(self) -> MusicSystem {
        let sim = Sim::new();
        let net = Network::new(sim.clone(), self.profile.clone(), self.net_cfg, self.seed);
        net.set_recorder(self.recorder.clone());
        let sites = self.profile.site_count();

        // Store nodes, site-interleaved so ring neighbours sit on distinct
        // sites (one copy of every key per site, as in the paper).
        let mut store_nodes = Vec::new();
        for round in 0..self.store_nodes_per_site {
            let _ = round;
            for s in 0..sites {
                store_nodes.push(net.add_node(SiteId(s as u32)));
            }
        }

        let data = ReplicatedTable::new(
            net.clone(),
            store_nodes.clone(),
            self.rf,
            self.table_cfg.clone(),
        );
        let locks = LockStore::new(
            net.clone(),
            store_nodes.clone(),
            self.rf,
            self.table_cfg.clone(),
        );

        let stats = OpStats::new();
        // Site-interleaved (s0, s1, s2, s0, …) so `replica(site)` keeps
        // addressing each site's first replica.
        let mut replicas: Vec<MusicReplica> = Vec::with_capacity(sites * self.replicas_per_site);
        for _round in 0..self.replicas_per_site {
            for s in 0..sites {
                let node = net.add_node(SiteId(s as u32));
                let rt = match &self.drift {
                    Some(d) => sim.with_drift(d.spec_for(self.seed, node)),
                    None => sim.clone(),
                };
                replicas.push(MusicReplica::with_runtime(
                    node,
                    rt,
                    net.site_of(node).0,
                    net.recorder(),
                    locks.clone(),
                    data.clone(),
                    self.music_cfg.clone(),
                    stats.clone(),
                ));
            }
        }

        MusicSystem {
            sim,
            net,
            data,
            locks,
            replicas,
            store_nodes,
            stats,
        }
    }
}

/// A fully wired MUSIC deployment (Fig. 1).
#[derive(Clone, Debug)]
pub struct MusicSystem {
    sim: Sim,
    net: Network,
    data: ReplicatedTable<DataRow>,
    locks: LockStore,
    replicas: Vec<MusicReplica>,
    store_nodes: Vec<NodeId>,
    stats: OpStats,
}

impl MusicSystem {
    /// The simulation driving this deployment.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The network (for failure injection).
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The shared data table.
    pub fn data(&self) -> &ReplicatedTable<DataRow> {
        &self.data
    }

    /// The shared lock store.
    pub fn locks(&self) -> &LockStore {
        &self.locks
    }

    /// All MUSIC replicas, site-interleaved (`s0, s1, s2, s0, …`).
    pub fn replicas(&self) -> &[MusicReplica] {
        &self.replicas
    }

    /// The first MUSIC replica at `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn replica(&self, site: usize) -> &MusicReplica {
        &self.replicas[site]
    }

    /// Back-end store node ids (site-interleaved).
    pub fn store_nodes(&self) -> &[NodeId] {
        &self.store_nodes
    }

    /// The shared per-operation stats sink.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// The telemetry recorder every layer reports into (a no-op recorder
    /// unless one was installed via
    /// [`MusicSystemBuilder::telemetry`]).
    pub fn recorder(&self) -> music_telemetry::Recorder {
        self.net.recorder()
    }

    /// A client homed at `site`, failing over to other sites in distance
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn client_at_site(&self, site: usize) -> MusicClient {
        assert!(site < self.replicas.len(), "no such site");
        let home = self.replicas[site].node();
        let mut ordered = self.replicas.clone();
        ordered.sort_by_key(|r| self.net.propagation(home, r.node()));
        MusicClient::new(self.sim.clone(), ordered).expect("site has at least one replica")
    }

    /// Whether the data store is *defined* for `key` (§IV-A): fewer than a
    /// quorum of the key's replicas hold a value different from the
    /// plurality value. Returns the defining value if so.
    ///
    /// Instrumentation for invariant checks in tests; inspects replicas
    /// directly without network traffic.
    pub fn data_store_defined(&self, key: &str) -> Option<Option<Bytes>> {
        let placement = self.data.placement();
        let replicas = placement.replicas_of(key);
        let quorum = placement.quorum();
        let snaps: Vec<Option<Bytes>> = replicas
            .iter()
            .map(|&i| self.data.peek_replica(i, key).value)
            .collect();
        for candidate in &snaps {
            let differing = snaps.iter().filter(|s| *s != candidate).count();
            if differing < quorum {
                return Some(candidate.clone());
            }
        }
        None
    }

    /// The `synchFlag` value for `key` as held at each of its data
    /// replicas (instrumentation).
    pub fn synch_flags(&self, key: &str) -> Vec<Option<Bytes>> {
        let skey = synch_key(key);
        self.data
            .placement()
            .replicas_of(&skey)
            .into_iter()
            .map(|i| self.data.peek_replica(i, &skey).value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_is_one_replica_and_store_node_per_site() {
        let sys = MusicSystemBuilder::new().build();
        assert_eq!(sys.replicas().len(), 3);
        assert_eq!(sys.store_nodes().len(), 3);
        // replica(site) addresses the site's first replica.
        for site in 0..3 {
            assert_eq!(
                sys.net().site_of(sys.replica(site).node()),
                SiteId(site as u32)
            );
        }
    }

    #[test]
    fn scaled_layout_interleaves_replicas_by_site() {
        let sys = MusicSystemBuilder::new()
            .store_nodes_per_site(3)
            .replicas_per_site(3)
            .build();
        assert_eq!(sys.replicas().len(), 9);
        assert_eq!(sys.store_nodes().len(), 9);
        for (i, r) in sys.replicas().iter().enumerate() {
            assert_eq!(
                sys.net().site_of(r.node()),
                SiteId((i % 3) as u32),
                "replica {i} must interleave"
            );
        }
        // replica(site) still picks each site's first replica.
        for site in 0..3 {
            assert_eq!(sys.replica(site).node(), sys.replicas()[site].node());
        }
    }

    #[test]
    fn client_prefers_its_home_site() {
        let sys = MusicSystemBuilder::new().replicas_per_site(2).build();
        for site in 0..3 {
            let client = sys.client_at_site(site);
            assert_eq!(
                sys.net().site_of(client.primary().node()),
                SiteId(site as u32)
            );
        }
    }

    #[test]
    #[should_panic(expected = "no such site")]
    fn out_of_range_site_panics() {
        let sys = MusicSystemBuilder::new().build();
        let _ = sys.client_at_site(7);
    }
}
