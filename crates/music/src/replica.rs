//! The MUSIC replica: a stateless front-end executing the §IV algorithms
//! against the lock store and data store.
//!
//! Clients send each operation to a MUSIC replica of their choice (usually
//! the closest); the replica runs a single-threaded sequence of back-end
//! requests and reports success or failure. All ECF guarantees come from
//! the algorithms here plus the stores' semantics — replicas themselves
//! hold no authoritative state and can be lost or bypassed freely.

use bytes::Bytes;

use music_lockstore::{LockRef, LockStore};
use music_quorumstore::{DataRow, Put, ReplicatedTable, RowSnapshot, StoreError};
use music_simnet::executor::JoinHandle;
use music_simnet::net::{Network, NodeId};
use music_simnet::time::{SimDuration, SimTime};
use music_telemetry::{EventKind, Recorder, Scope, TraceId};

use crate::config::{MusicConfig, PeekMode, PutMode};
use crate::error::{AcquireOutcome, CriticalError};
use crate::stats::{OpKind, OpStats};
use crate::timestamp::{V2s, VectorTimestamp};

/// Reserved separator for internal keys; client keys must not contain it.
const INTERNAL_SEP: char = '\u{1}';

/// The data-store key holding `key`'s `synchFlag`.
pub(crate) fn synch_key(key: &str) -> String {
    format!("{key}{INTERNAL_SEP}synch")
}

fn is_internal_key(key: &str) -> bool {
    key.contains(INTERNAL_SEP)
}

const FLAG_TRUE: Bytes = Bytes::from_static(b"1");
const FLAG_FALSE: Bytes = Bytes::from_static(b"0");

fn flag_is_true(snap: &RowSnapshot) -> bool {
    snap.value.as_deref() == Some(b"1")
}

/// A MUSIC replica bound to a network node.
///
/// Cheap to clone; all clones share the same back-end handles and stats
/// sink. Build deployments with [`crate::system::MusicSystemBuilder`].
#[derive(Clone, Debug)]
pub struct MusicReplica {
    node: NodeId,
    net: Network,
    locks: LockStore,
    data: ReplicatedTable<DataRow>,
    v2s: V2s,
    cfg: MusicConfig,
    stats: OpStats,
}

impl MusicReplica {
    /// Creates a replica at `node` over shared store handles.
    pub fn new(
        node: NodeId,
        net: Network,
        locks: LockStore,
        data: ReplicatedTable<DataRow>,
        cfg: MusicConfig,
        stats: OpStats,
    ) -> Self {
        MusicReplica {
            node,
            net,
            locks,
            data,
            v2s: V2s::new(cfg.t_max),
            cfg,
            stats,
        }
    }

    /// The network node this replica runs at.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This replica's configuration.
    pub fn config(&self) -> &MusicConfig {
        &self.cfg
    }

    /// The shared stats sink.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// The lock store handle (instrumentation/tests).
    pub fn locks(&self) -> &LockStore {
        &self.locks
    }

    /// The data table handle (instrumentation/tests).
    pub fn data(&self) -> &ReplicatedTable<DataRow> {
        &self.data
    }

    fn now(&self) -> SimTime {
        self.net.sim().now()
    }

    /// The telemetry recorder shared through the network (see
    /// [`crate::system::MusicSystemBuilder::telemetry`]).
    pub fn recorder(&self) -> Recorder {
        self.net.recorder()
    }

    /// Emits a telemetry event attributed to this replica's node, under the
    /// running task's trace tag. No-op unless tracing.
    fn emit(&self, kind: impl FnOnce() -> EventKind) {
        let rec = self.net.recorder();
        if rec.is_tracing() {
            let sim = self.net.sim();
            rec.record(sim.now().as_micros(), sim.trace(), self.node.0, kind());
        }
    }

    /// Bumps a per-node counter. No-op when the recorder is off.
    fn count(&self, name: &'static str, n: u64) {
        let rec = self.net.recorder();
        if rec.is_on() {
            rec.count(Scope::Node(self.node.0), name, n);
        }
    }

    /// Opens an operation span: mints a fresh trace id, tags the current
    /// task with it (so every message the operation sends inherits the id),
    /// and emits `opStart`. Returns the tag to restore in
    /// [`MusicReplica::span_end`]. No-op (returns 0) unless tracing.
    fn span_start(&self, op: &'static str, key: &str) -> TraceId {
        let rec = self.net.recorder();
        if !rec.is_tracing() {
            return 0;
        }
        let sim = self.net.sim();
        let prev = sim.trace();
        let trace = rec.next_trace();
        sim.set_trace(trace);
        rec.record(
            sim.now().as_micros(),
            trace,
            self.node.0,
            EventKind::OpStart {
                op,
                key: key.to_string(),
            },
        );
        prev
    }

    /// Closes an operation span: emits `opEnd` and restores the task's
    /// previous trace tag.
    fn span_end(&self, prev: TraceId, op: &'static str, key: &str, ok: bool) {
        let rec = self.net.recorder();
        if !rec.is_tracing() {
            return;
        }
        let sim = self.net.sim();
        rec.record(
            sim.now().as_micros(),
            sim.trace(),
            self.node.0,
            EventKind::OpEnd {
                op,
                key: key.to_string(),
                ok,
            },
        );
        sim.set_trace(prev);
    }

    /// Lock-queue head view per the configured [`PeekMode`].
    async fn peek(
        &self,
        key: &str,
    ) -> Result<Option<(LockRef, music_lockstore::LockEntry)>, StoreError> {
        match self.cfg.peek_mode {
            PeekMode::Local => self.locks.peek_local(self.node, key).await,
            PeekMode::Quorum => self.locks.peek_quorum(self.node, key).await,
        }
    }

    fn assert_client_key(key: &str) {
        assert!(
            !is_internal_key(key),
            "client keys must not contain the internal separator"
        );
    }

    /// `createLockRef`: enqueues a per-key unique increasing identifier,
    /// good for one critical section. Cost: one consensus write (LWT).
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] when the lock store cannot reach a quorum;
    /// the client retries (§III-A). A nacked call may still have enqueued
    /// an orphan reference, which `forcedRelease` eventually collects.
    ///
    /// # Panics
    ///
    /// Panics if `key` contains the reserved internal separator `'\u{1}'`.
    pub async fn create_lock_ref(&self, key: &str) -> Result<LockRef, StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("createLockRef", key);
        let t0 = self.now();
        let r = self.locks.generate_and_enqueue(self.node, key).await;
        if r.is_ok() {
            self.stats.record(OpKind::CreateLockRef, self.now() - t0);
        }
        self.span_end(span, "createLockRef", key, r.is_ok());
        r
    }

    /// `acquireLock`: returns [`AcquireOutcome::Acquired`] iff `lock_ref`
    /// is first in the queue; synchronizes the data store first when the
    /// `synchFlag` is set (a previous holder was preempted mid-put).
    ///
    /// Cost: a local peek; plus, for the winning poll, a `synchFlag` quorum
    /// read — and only after a forced release, a value quorum read, a value
    /// quorum write, and a `synchFlag` quorum write (§IV-A).
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] if the data store cannot reach a quorum
    /// during synchronization.
    pub async fn acquire_lock(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<AcquireOutcome, StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("acquireLock", key);
        let r = self.acquire_lock_inner(key, lock_ref).await;
        if matches!(r, Ok(AcquireOutcome::Acquired)) {
            self.count("lock_grants", 1);
            self.emit(|| EventKind::LockGrant {
                key: key.to_string(),
                lock_ref: lock_ref.value(),
            });
        }
        self.span_end(span, "acquireLock", key, r.is_ok());
        r
    }

    async fn acquire_lock_inner(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<AcquireOutcome, StoreError> {
        let t0 = self.now();
        let head = self.peek(key).await?;
        self.stats.record(OpKind::AcquirePeek, self.now() - t0);
        let Some((head, entry)) = head else {
            // Local lock-store replica not updated yet: retry.
            return Ok(AcquireOutcome::NotYet);
        };
        if lock_ref > head {
            return Ok(AcquireOutcome::NotYet);
        }
        if lock_ref < head {
            return Ok(AcquireOutcome::NoLongerHolder);
        }

        // We are first in the queue: the grant path.
        let t0 = self.now();
        let flag = self.data.read_quorum(self.node, &synch_key(key)).await?;
        if flag_is_true(&flag) {
            // A previous holder may have died mid-criticalPut: synchronize.
            // Quorum-read the key, re-write the result under our lockRef
            // (committing the non-deterministic choice of §III-A), then
            // reset the flag.
            let snap = self.data.read_quorum(self.node, key).await?;
            let stamp = self
                .v2s
                .scalar(VectorTimestamp::new(lock_ref, SimDuration::ZERO));
            let rewrite = match snap.value {
                Some(v) => Put::value(v),
                None => Put::delete(),
            };
            self.data
                .write_quorum(self.node, key, rewrite, stamp)
                .await?;
            self.data
                .write_quorum(self.node, &synch_key(key), Put::value(FLAG_FALSE), stamp)
                .await?;
        }
        // Initialize startTime for the duration bound T (§VI). Re-granting
        // an already-started entry (a duplicate winning poll) keeps the
        // original start because the LWW stamp is the grant instant.
        if entry.start_time.is_none() {
            self.locks
                .set_start_time(self.node, key, lock_ref, self.now())
                .await?;
        }
        self.stats.record(OpKind::AcquireGrant, self.now() - t0);
        Ok(AcquireOutcome::Acquired)
    }

    /// Guards shared by `criticalPut`/`criticalGet`: holder check via the
    /// local peek, then the duration bound. Returns the elapsed-in-CS time.
    async fn critical_guard(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<SimDuration, CriticalError> {
        let head = self.peek(key).await?;
        let Some((head, entry)) = head else {
            return Err(CriticalError::NotYetHolder);
        };
        if lock_ref > head {
            return Err(CriticalError::NotYetHolder);
        }
        if lock_ref < head {
            return Err(CriticalError::NoLongerHolder);
        }
        let Some(start) = entry.start_time else {
            // Granted, but this replica's local view lacks startTime yet.
            return Err(CriticalError::NotYetHolder);
        };
        let elapsed = self.now() - start;
        if elapsed >= self.cfg.t_max {
            return Err(CriticalError::Expired);
        }
        Ok(elapsed)
    }

    /// `criticalPut`: writes the latest value of `key` for the current
    /// lockholder. Cost: one value quorum write (or an LWT under
    /// [`PutMode::Lwt`], the MSCP baseline).
    ///
    /// # Errors
    ///
    /// See [`CriticalError`]; on [`CriticalError::Store`] the write is
    /// *unacknowledged* — it may or may not have landed, and the client
    /// must retry until acknowledged or abandon the critical section.
    pub async fn critical_put(
        &self,
        key: &str,
        lock_ref: LockRef,
        value: Bytes,
    ) -> Result<(), CriticalError> {
        self.critical_put_with(key, lock_ref, Put::value(value), self.cfg.put_mode)
            .await
    }

    /// `criticalPut`'s delete twin (footnote 3 of the paper).
    ///
    /// # Errors
    ///
    /// Same as [`MusicReplica::critical_put`].
    pub async fn critical_delete(&self, key: &str, lock_ref: LockRef) -> Result<(), CriticalError> {
        self.critical_put_with(key, lock_ref, Put::delete(), self.cfg.put_mode)
            .await
    }

    /// `criticalPut` with an explicit [`PutMode`] (benchmarks compare the
    /// two).
    ///
    /// # Errors
    ///
    /// Same as [`MusicReplica::critical_put`].
    pub async fn critical_put_with(
        &self,
        key: &str,
        lock_ref: LockRef,
        put: Put,
        mode: PutMode,
    ) -> Result<(), CriticalError> {
        Self::assert_client_key(key);
        let span = self.span_start("criticalPut", key);
        let r = self.critical_put_inner(key, lock_ref, put, mode).await;
        self.span_end(span, "criticalPut", key, r.is_ok());
        r
    }

    async fn critical_put_inner(
        &self,
        key: &str,
        lock_ref: LockRef,
        put: Put,
        mode: PutMode,
    ) -> Result<(), CriticalError> {
        let t0 = self.now();
        let elapsed = self.critical_guard(key, lock_ref).await?;
        // Strictly above the synchronization re-write at elapsed 0.
        let elapsed = elapsed.max(SimDuration::from_micros(1));
        let stamp = self.v2s.scalar(VectorTimestamp::new(lock_ref, elapsed));
        // Deletes have no digest; the checker tracks valued writes only.
        let digest = put.value.as_deref().map(music_telemetry::digest);
        if let Some(d) = digest {
            self.emit(|| EventKind::CritPutStart {
                key: key.to_string(),
                lock_ref: lock_ref.value(),
                digest: d,
            });
        }
        match mode {
            PutMode::Quorum => {
                self.data.write_quorum(self.node, key, put, stamp).await?;
                self.stats.record(OpKind::CriticalPut, self.now() - t0);
            }
            PutMode::Lwt => {
                self.data
                    .lwt(self.node, key, |_, _| Some((put.clone(), stamp)))
                    .await?;
                self.stats.record(OpKind::MscpPut, self.now() - t0);
            }
        }
        self.count("crit_puts", 1);
        if let Some(d) = digest {
            self.emit(|| EventKind::CritPutAck {
                key: key.to_string(),
                lock_ref: lock_ref.value(),
                digest: d,
            });
        }
        Ok(())
    }

    /// Pipelined `criticalPut`: runs the holder guard and stamps the write
    /// like [`MusicReplica::critical_put`], but returns as soon as the
    /// quorum write is *issued*. The returned [`PendingPut`] resolves when
    /// a quorum acknowledges (emitting `critPutAck` at that instant).
    ///
    /// Always a quorum write — the pipelined window is defined over the
    /// quorum store's commutative last-write-wins semantics, which LWTs do
    /// not have.
    ///
    /// # Errors
    ///
    /// See [`CriticalError`] for the *issue* step (guard / local peek).
    /// Store errors of the write itself surface when the pending put is
    /// awaited; such a write is unacknowledged and may still land.
    pub async fn critical_put_async(
        &self,
        key: &str,
        lock_ref: LockRef,
        value: Bytes,
    ) -> Result<PendingPut, CriticalError> {
        Self::assert_client_key(key);
        let span = self.span_start("criticalPut", key);
        let t0 = self.now();
        let elapsed = match self.critical_guard(key, lock_ref).await {
            Ok(e) => e,
            Err(e) => {
                self.span_end(span, "criticalPut", key, false);
                return Err(e);
            }
        };
        // Strictly above the synchronization re-write at elapsed 0.
        let elapsed = elapsed.max(SimDuration::from_micros(1));
        let stamp = self.v2s.scalar(VectorTimestamp::new(lock_ref, elapsed));
        let digest = music_telemetry::digest(&value);
        self.emit(|| EventKind::CritPutStart {
            key: key.to_string(),
            lock_ref: lock_ref.value(),
            digest,
        });
        // The write itself runs detached (inheriting this span's trace
        // tag), so the caller can keep issuing puts while it is in flight.
        let me = self.clone();
        let key_owned = key.to_string();
        let write =
            self.data
                .write_quorum_spawned(self.node, key, Put::value(value.clone()), stamp);
        let handle = self.net.sim().spawn(async move {
            let r = write.await;
            if r.is_ok() {
                me.stats.record(OpKind::CriticalPut, me.now() - t0);
                me.count("crit_puts", 1);
                me.emit(|| EventKind::CritPutAck {
                    key: key_owned.clone(),
                    lock_ref: lock_ref.value(),
                    digest,
                });
            }
            r.map_err(CriticalError::from)
        });
        self.span_end(span, "criticalPut", key, true);
        Ok(PendingPut {
            value,
            elapsed,
            handle,
        })
    }

    /// Re-drives a pipelined put whose quorum write failed, replaying the
    /// **original** stamp (`v2s(lock_ref, elapsed)`): a retry must not mint
    /// a fresh (higher) stamp, or a retried early write could clobber a
    /// later write of the same section under last-write-wins. Emits only
    /// `critPutAck` on success — the original `critPutStart` is still the
    /// outstanding logical write.
    ///
    /// # Errors
    ///
    /// See [`CriticalError`]; the guard re-runs against current state, so a
    /// preempted or expired holder is rejected here.
    pub async fn critical_put_resume(
        &self,
        key: &str,
        lock_ref: LockRef,
        value: Bytes,
        elapsed: SimDuration,
    ) -> Result<(), CriticalError> {
        Self::assert_client_key(key);
        let span = self.span_start("criticalPut", key);
        let t0 = self.now();
        let r = self
            .critical_put_resume_inner(key, lock_ref, value, elapsed, t0)
            .await;
        self.span_end(span, "criticalPut", key, r.is_ok());
        r
    }

    async fn critical_put_resume_inner(
        &self,
        key: &str,
        lock_ref: LockRef,
        value: Bytes,
        elapsed: SimDuration,
        t0: SimTime,
    ) -> Result<(), CriticalError> {
        self.critical_guard(key, lock_ref).await?;
        let stamp = self.v2s.scalar(VectorTimestamp::new(lock_ref, elapsed));
        let digest = music_telemetry::digest(&value);
        self.data
            .write_quorum(self.node, key, Put::value(value), stamp)
            .await?;
        self.stats.record(OpKind::CriticalPut, self.now() - t0);
        self.count("crit_puts", 1);
        self.emit(|| EventKind::CritPutAck {
            key: key.to_string(),
            lock_ref: lock_ref.value(),
            digest,
        });
        Ok(())
    }

    /// Marks `key`'s `synchFlag` on behalf of a holder whose flush failed:
    /// some pipelined write is unacknowledged, so the *next* holder must
    /// resynchronize exactly as after a forced release. Stamped at
    /// `v2s(lock_ref, 0) + δ` — above this holder's grant-time reset,
    /// below the next holder's (§IV-B).
    ///
    /// Best-effort from the client's perspective: if this write also fails,
    /// safety still holds because the failed flush fails the release, the
    /// reference stays queued, and the failure detector's `forcedRelease`
    /// quorum-writes the flag before dequeueing it.
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] when the data store cannot reach a quorum.
    pub async fn mark_synch(&self, key: &str, lock_ref: LockRef) -> Result<(), StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("markSynch", key);
        let stamp = self.v2s.forced_release_stamp(lock_ref, self.cfg.delta);
        let r = self
            .data
            .write_quorum(self.node, &synch_key(key), Put::value(FLAG_TRUE), stamp)
            .await;
        if r.is_ok() {
            self.count("synch_marks", 1);
            self.emit(|| EventKind::SynchMark {
                key: key.to_string(),
                lock_ref: lock_ref.value(),
            });
        }
        self.span_end(span, "markSynch", key, r.is_ok());
        r
    }

    /// `criticalGet`: reads the latest (true) value of `key` for the
    /// current lockholder. Cost: one value quorum read.
    ///
    /// # Errors
    ///
    /// See [`CriticalError`].
    pub async fn critical_get(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<Option<Bytes>, CriticalError> {
        Self::assert_client_key(key);
        let span = self.span_start("criticalGet", key);
        let r = self.critical_get_inner(key, lock_ref).await;
        self.span_end(span, "criticalGet", key, r.is_ok());
        r
    }

    async fn critical_get_inner(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<Option<Bytes>, CriticalError> {
        let t0 = self.now();
        self.critical_guard(key, lock_ref).await?;
        let snap = self.data.read_quorum(self.node, key).await?;
        self.stats.record(OpKind::CriticalGet, self.now() - t0);
        self.count("crit_gets", 1);
        self.emit(|| EventKind::CritGet {
            key: key.to_string(),
            lock_ref: lock_ref.value(),
            digest: snap.value.as_deref().map(music_telemetry::digest),
        });
        Ok(snap.value)
    }

    /// `releaseLock`: removes `lock_ref` from the queue. Succeeds (as a
    /// no-op) if the lock was already forcibly released. Cost: one
    /// consensus write (LWT).
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] when the lock store cannot reach a quorum.
    pub async fn release_lock(&self, key: &str, lock_ref: LockRef) -> Result<(), StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("releaseLock", key);
        let r = self.release_lock_inner(key, lock_ref).await;
        self.span_end(span, "releaseLock", key, r.is_ok());
        r
    }

    async fn release_lock_inner(&self, key: &str, lock_ref: LockRef) -> Result<(), StoreError> {
        let t0 = self.now();
        if let Some((head, _)) = self.peek(key).await? {
            if lock_ref < head {
                return Ok(()); // lock was forcibly released already
            }
        }
        self.locks.dequeue(self.node, key, lock_ref).await?;
        self.stats.record(OpKind::ReleaseLock, self.now() - t0);
        self.emit(|| EventKind::LockRelease {
            key: key.to_string(),
            lock_ref: lock_ref.value(),
        });
        Ok(())
    }

    /// `forcedRelease`: preempts `lock_ref` on behalf of a presumed-failed
    /// holder (internal; driven by the failure detector or by takeover
    /// logic like the Portal's, §VII-b).
    ///
    /// Sets the `synchFlag` **before** dequeueing, stamped at
    /// `v2s(lockRef, 0) + δ` so it overrides the holder's own concurrent
    /// flag reset but yields to the next holder's (§IV-B).
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] when either store cannot reach a quorum.
    pub async fn forced_release(&self, key: &str, lock_ref: LockRef) -> Result<(), StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("forcedRelease", key);
        let r = self.forced_release_inner(key, lock_ref).await;
        self.span_end(span, "forcedRelease", key, r.is_ok());
        r
    }

    async fn forced_release_inner(&self, key: &str, lock_ref: LockRef) -> Result<(), StoreError> {
        let t0 = self.now();
        if let Some((head, _)) = self.peek(key).await? {
            if lock_ref < head {
                return Ok(()); // previously released
            }
        }
        let stamp = self.v2s.forced_release_stamp(lock_ref, self.cfg.delta);
        self.data
            .write_quorum(self.node, &synch_key(key), Put::value(FLAG_TRUE), stamp)
            .await?;
        // No-op if lock_ref is not in the queue.
        self.locks.dequeue(self.node, key, lock_ref).await?;
        self.stats.record(OpKind::ForcedRelease, self.now() - t0);
        self.count("forced_releases", 1);
        self.emit(|| EventKind::LockForcedRelease {
            key: key.to_string(),
            lock_ref: lock_ref.value(),
        });
        Ok(())
    }

    /// Lock-free eventual `get` — only for keys where no ECF guarantees are
    /// expected (§VI "Additional Functions").
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] if the closest replica does not answer.
    pub async fn get(&self, key: &str) -> Result<Option<Bytes>, StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("eventualGet", key);
        let t0 = self.now();
        let r = self.data.read_one(self.node, key).await;
        if r.is_ok() {
            self.stats.record(OpKind::EventualGet, self.now() - t0);
        }
        self.span_end(span, "eventualGet", key, r.is_ok());
        r.map(|snap| snap.value)
    }

    /// Lock-free eventual `put` — only for keys where no ECF guarantees are
    /// expected. Stamped with the local wall clock, far below any `v2s`
    /// stamp, so it can never clobber critical writes.
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] if no replica acknowledges.
    pub async fn put(&self, key: &str, value: Bytes) -> Result<(), StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("eventualPut", key);
        let t0 = self.now();
        let stamp = music_quorumstore::WriteStamp::new(self.now().as_micros().max(1));
        let r = self
            .data
            .write_one(self.node, key, Put::value(value), stamp)
            .await;
        if r.is_ok() {
            self.stats.record(OpKind::EventualPut, self.now() - t0);
        }
        self.span_end(span, "eventualPut", key, r.is_ok());
        r
    }

    /// `getAllKeys`: all live client keys visible at the closest data-store
    /// replica (possibly stale — the job-scheduler pattern tolerates that,
    /// §VII-a).
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] if the replica does not answer.
    pub async fn get_all_keys(&self) -> Result<Vec<String>, StoreError> {
        let keys = self.data.list_keys_local(self.node).await?;
        Ok(keys.into_iter().filter(|k| !is_internal_key(k)).collect())
    }

    /// The current queue head for `key` as seen by this replica's local
    /// lock-store view (monitoring / failure detection).
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] if the replica does not answer.
    pub async fn peek_holder(
        &self,
        key: &str,
    ) -> Result<Option<(LockRef, Option<SimTime>)>, StoreError> {
        let head = self.peek(key).await?;
        Ok(head.map(|(r, e)| (r, e.start_time)))
    }
}

/// A pipelined `criticalPut` that has been issued but not yet quorum
/// acknowledged (see [`MusicReplica::critical_put_async`]).
///
/// Dropping a pending put does **not** cancel the write — it keeps
/// propagating, exactly like a crashed holder's in-flight put.
#[derive(Debug)]
pub struct PendingPut {
    value: Bytes,
    elapsed: SimDuration,
    handle: JoinHandle<Result<(), CriticalError>>,
}

impl PendingPut {
    /// The value being written (for retries).
    pub fn value(&self) -> &Bytes {
        &self.value
    }

    /// Elapsed-in-section time the write was stamped with; a retry must
    /// replay this stamp (see [`MusicReplica::critical_put_resume`]).
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Awaits the quorum acknowledgment.
    ///
    /// # Errors
    ///
    /// [`CriticalError::Store`] if the quorum write failed; the write is
    /// then unacknowledged and may still land.
    pub async fn wait(self) -> Result<(), CriticalError> {
        self.handle.await
    }

    /// Awaits the acknowledgment, returning the retry context alongside
    /// the outcome.
    pub async fn outcome(self) -> (Bytes, SimDuration, Result<(), CriticalError>) {
        let PendingPut {
            value,
            elapsed,
            handle,
        } = self;
        let r = handle.await;
        (value, elapsed, r)
    }
}
