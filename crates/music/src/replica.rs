//! The MUSIC replica: a stateless front-end executing the §IV algorithms
//! against the lock store and data store.
//!
//! Clients send each operation to a MUSIC replica of their choice (usually
//! the closest); the replica runs a single-threaded sequence of back-end
//! requests and reports success or failure. All ECF guarantees come from
//! the algorithms here plus the stores' semantics — replicas themselves
//! hold no authoritative state and can be lost or bypassed freely.
//!
//! The replica is generic over the runtime split (see `music-runtime`): a
//! [`Runtime`] `RT` supplies the clock, timers, and task spawning, and two
//! [`TableApi`] back-ends `D`/`L` supply the data table and the lock-store
//! table. The defaults (`Sim` + [`ReplicatedTable`]) are the deterministic
//! simulator deployment every test runs on; `music-node`/`music-load` run
//! the same code over `NativeRuntime` + `RemoteTable`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use bytes::Bytes;

use music_lockstore::{BatchOutcome, EnqueueOutcome, LockPartition, LockRef, LockStore};
use music_quorumstore::{DataRow, Put, ReplicatedTable, RowSnapshot, StoreError, TableApi};
use music_runtime::Runtime;
use music_simnet::executor::Sim;
use music_simnet::net::{Network, NodeId};
use music_simnet::time::{SimDuration, SimTime};
use music_telemetry::{EventKind, Recorder, Scope, SpanId, SpanPhase, TraceId};

use crate::config::{MusicConfig, PeekMode, PutMode};
use crate::error::{AcquireOutcome, CriticalError};
use crate::stats::{OpKind, OpStats};
use crate::timestamp::{lease_claimable, V2s, VectorTimestamp};

/// Reserved separator for internal keys; client keys must not contain it.
const INTERNAL_SEP: char = '\u{1}';

/// The data-store key holding `key`'s `synchFlag`.
pub(crate) fn synch_key(key: &str) -> String {
    format!("{key}{INTERNAL_SEP}synch")
}

fn is_internal_key(key: &str) -> bool {
    key.contains(INTERNAL_SEP)
}

const FLAG_TRUE: Bytes = Bytes::from_static(b"1");
const FLAG_FALSE: Bytes = Bytes::from_static(b"0");

/// A lease retained by a clean release: the pre-minted successor reference
/// and the deadline until which the departing client may re-enter without
/// paying the LWT (see [`MusicReplica::release_lock_leased`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LeaseGrant {
    /// The pre-minted (already enqueued) lock reference.
    pub lock_ref: LockRef,
    /// Expiry deadline; past it the watchdog revokes the lease.
    pub until: SimTime,
}

fn flag_is_true(snap: &RowSnapshot) -> bool {
    snap.value.as_deref() == Some(b"1")
}

/// A forming enqueue-combining round on one key (see
/// [`MusicReplica::create_lock_ref_combined`]): the first arrival becomes
/// the round's *leader*, later arrivals park and are assigned consecutive
/// indices in arrival order — which becomes lock-reference order, so the
/// FIFO-with-preemption queue refinement is preserved exactly as if each
/// waiter had enqueued itself.
struct CombineRound {
    /// Waiters in the round so far, the leader included.
    joiners: u32,
    /// The settlement cell parked waiters poll.
    slots: Rc<RefCell<CombineSlots>>,
}

/// Outcome of one combining round, filled by the leader.
#[derive(Default)]
struct CombineSlots {
    /// The leader's batch LWT has settled (successfully or not).
    done: bool,
    /// The round failed (store nack or persistent lease block); every
    /// member falls back to the single enqueue path independently.
    failed: bool,
    /// First minted reference; waiter `i` owns `first + i`.
    first: LockRef,
    /// How many references the round minted.
    count: u32,
}

/// A MUSIC replica bound to a node identity.
///
/// Cheap to clone; all clones share the same back-end handles and stats
/// sink. Build simulated deployments with
/// [`crate::system::MusicSystemBuilder`]; build socket deployments with
/// [`MusicReplica::with_runtime`] over a `RemoteTable`.
pub struct MusicReplica<RT = Sim, D = ReplicatedTable<DataRow>, L = ReplicatedTable<LockPartition>>
{
    node: NodeId,
    rt: RT,
    site: u32,
    recorder: Recorder,
    locks: LockStore<L>,
    data: D,
    v2s: V2s,
    cfg: MusicConfig,
    stats: OpStats,
    /// Per-key floor on the `elapsed` component of put stamps, as
    /// `key → (lockRef, last stamped elapsed µs)`. A drifting local clock
    /// need not be *strictly* increasing (a slow rate or a clamped
    /// backward step stalls local time), and the data store breaks
    /// equal-stamp ties by value bytes, not issue order — so successive
    /// puts of one section must be forced onto strictly increasing
    /// stamps or a later put can lose last-write-wins to an earlier one.
    /// All of a reference's puts are issued through one replica, so a
    /// replica-local floor suffices.
    stamp_floor: Rc<RefCell<HashMap<String, (u64, u64)>>>,
    /// Forming enqueue-combining rounds, by key. Shared across clones —
    /// co-located clients hold clones of the same replica, so their
    /// same-key enqueues meet here and batch into one LWT round.
    combiner: Rc<RefCell<HashMap<String, CombineRound>>>,
    /// In-flight lock-LWT markers, by key, shared across clones. Releases
    /// and combining-round leaders mark their LWT here; a forming round's
    /// leader *waits* for the marker to clear before launching (waiters
    /// keep joining meanwhile), so same-site proposers chain into
    /// consecutive batched rounds instead of preempting each other's
    /// ballots — and a release, which never waits, always goes first: the
    /// handoff is the critical path, the enqueue is not.
    lock_lwt_gate: Rc<RefCell<HashMap<String, u32>>>,
}

/// RAII marker for one in-flight lock LWT on one key (see
/// [`MusicReplica::lock_lwt_gate`]); drop-based so every early return and
/// `?` inside the LWT path clears the marker.
struct GateGuard {
    gate: Rc<RefCell<HashMap<String, u32>>>,
    key: String,
}

impl GateGuard {
    fn mark(gate: &Rc<RefCell<HashMap<String, u32>>>, key: &str) -> GateGuard {
        *gate.borrow_mut().entry(key.to_string()).or_insert(0) += 1;
        GateGuard {
            gate: gate.clone(),
            key: key.to_string(),
        }
    }
}

impl Drop for GateGuard {
    fn drop(&mut self) {
        let mut gate = self.gate.borrow_mut();
        if let Some(n) = gate.get_mut(&self.key) {
            *n -= 1;
            if *n == 0 {
                gate.remove(&self.key);
            }
        }
    }
}

impl<RT: Clone, D: Clone, L: Clone> Clone for MusicReplica<RT, D, L> {
    fn clone(&self) -> Self {
        MusicReplica {
            node: self.node,
            rt: self.rt.clone(),
            site: self.site,
            recorder: self.recorder.clone(),
            locks: self.locks.clone(),
            data: self.data.clone(),
            v2s: self.v2s,
            cfg: self.cfg.clone(),
            stats: self.stats.clone(),
            stamp_floor: self.stamp_floor.clone(),
            combiner: self.combiner.clone(),
            lock_lwt_gate: self.lock_lwt_gate.clone(),
        }
    }
}

impl<RT, D, L> fmt::Debug for MusicReplica<RT, D, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MusicReplica")
            .field("node", &self.node)
            .field("site", &self.site)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl MusicReplica {
    /// Creates a simulated replica at `node` over shared store handles,
    /// inheriting clock, site placement, and recorder from the network.
    pub fn new(
        node: NodeId,
        net: Network,
        locks: LockStore,
        data: ReplicatedTable<DataRow>,
        cfg: MusicConfig,
        stats: OpStats,
    ) -> Self {
        let rt = net.sim().clone();
        let site = net.site_of(node).0;
        let recorder = net.recorder();
        MusicReplica::with_runtime(node, rt, site, recorder, locks, data, cfg, stats)
    }
}

impl<RT, D, L> MusicReplica<RT, D, L>
where
    RT: Runtime,
    D: TableApi<DataRow, Rt = RT>,
    L: TableApi<LockPartition, Rt = RT>,
{
    /// Creates a replica over an explicit runtime and back-end pair; the
    /// runtime-generic twin of [`MusicReplica::new`]. `site` attributes
    /// grant latency and phase spans.
    #[allow(clippy::too_many_arguments)]
    pub fn with_runtime(
        node: NodeId,
        rt: RT,
        site: u32,
        recorder: Recorder,
        locks: LockStore<L>,
        data: D,
        cfg: MusicConfig,
        stats: OpStats,
    ) -> Self {
        MusicReplica {
            node,
            rt,
            site,
            recorder,
            locks,
            data,
            v2s: V2s::new(cfg.t_max),
            cfg,
            stats,
            stamp_floor: Rc::new(RefCell::new(HashMap::new())),
            combiner: Rc::new(RefCell::new(HashMap::new())),
            lock_lwt_gate: Rc::new(RefCell::new(HashMap::new())),
        }
    }

    /// Whether a same-key lock LWT (a release or a combining round) is in
    /// flight through this replica's clones.
    fn lock_lwt_in_flight(&self, key: &str) -> bool {
        self.lock_lwt_gate.borrow().contains_key(key)
    }

    /// The node this replica runs at.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The site this replica's node lives at (per-site attribution of
    /// grant latency and phase spans).
    pub fn site(&self) -> u32 {
        self.site
    }

    /// This replica's configuration.
    pub fn config(&self) -> &MusicConfig {
        &self.cfg
    }

    /// The shared stats sink.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// The lock store handle (instrumentation/tests).
    pub fn locks(&self) -> &LockStore<L> {
        &self.locks
    }

    /// The data table handle (instrumentation/tests).
    pub fn data(&self) -> &D {
        &self.data
    }

    /// The runtime this replica schedules on.
    pub fn runtime(&self) -> &RT {
        &self.rt
    }

    fn now(&self) -> SimTime {
        self.rt.now()
    }

    /// The telemetry recorder shared through the deployment (see
    /// [`crate::system::MusicSystemBuilder::telemetry`]).
    pub fn recorder(&self) -> Recorder {
        self.recorder.clone()
    }

    /// Emits a telemetry event attributed to this replica's node, under the
    /// running task's trace tag. No-op unless tracing.
    fn emit(&self, kind: impl FnOnce() -> EventKind) {
        let rec = &self.recorder;
        if rec.is_tracing() {
            rec.record(
                self.rt.now().as_micros(),
                self.rt.trace(),
                self.node.0,
                kind(),
            );
        }
    }

    /// Bumps a per-node counter. No-op when the recorder is off.
    fn count(&self, name: &'static str, n: u64) {
        let rec = &self.recorder;
        if rec.is_on() {
            rec.count(Scope::Node(self.node.0), name, n);
        }
    }

    /// Opens an operation span: mints a fresh trace id, tags the current
    /// task with it (so every message the operation sends inherits the id),
    /// and emits `opStart`. Returns the tag to restore in
    /// [`MusicReplica::span_end`]. No-op (returns 0) unless tracing.
    fn span_start(&self, op: &'static str, key: &str) -> TraceId {
        let rec = &self.recorder;
        if !rec.is_tracing() {
            return 0;
        }
        let prev = self.rt.trace();
        let trace = rec.next_trace();
        self.rt.set_trace(trace);
        rec.record(
            self.rt.now().as_micros(),
            trace,
            self.node.0,
            EventKind::OpStart {
                op,
                key: key.to_string(),
            },
        );
        prev
    }

    /// Closes an operation span: emits `opEnd` and restores the task's
    /// previous trace tag.
    fn span_end(&self, prev: TraceId, op: &'static str, key: &str, ok: bool) {
        let rec = &self.recorder;
        if !rec.is_tracing() {
            return;
        }
        rec.record(
            self.rt.now().as_micros(),
            self.rt.trace(),
            self.node.0,
            EventKind::OpEnd {
                op,
                key: key.to_string(),
                ok,
            },
        );
        self.rt.set_trace(prev);
    }

    /// Opens a phase span parented on the task's current span (no-op
    /// unless tracing). Returns `(span, previous tag)` for
    /// [`MusicReplica::phase_close`].
    fn phase_open(&self, phase: SpanPhase, key: &str) -> (SpanId, u64) {
        let rec = &self.recorder;
        if !rec.is_tracing() {
            return (0, 0);
        }
        let parent = self.rt.span();
        let id = rec.span_open(
            self.rt.now().as_micros(),
            parent,
            self.rt.trace(),
            self.node.0,
            self.site(),
            phase,
            key,
        );
        self.rt.set_span(id);
        (id, parent)
    }

    /// Closes a phase span and restores the task's previous span tag.
    fn phase_close(&self, token: (SpanId, u64)) {
        let (id, parent) = token;
        if id == 0 {
            return;
        }
        self.recorder.span_close(self.rt.now().as_micros(), id);
        self.rt.set_span(parent);
    }

    /// Lock-queue head view per the configured [`PeekMode`].
    async fn peek(
        &self,
        key: &str,
    ) -> Result<Option<(LockRef, music_lockstore::LockEntry)>, StoreError> {
        match self.cfg.peek_mode {
            PeekMode::Local => self.locks.peek_local(self.node, key).await,
            PeekMode::Quorum => self.locks.peek_quorum(self.node, key).await,
        }
    }

    fn assert_client_key(key: &str) {
        assert!(
            !is_internal_key(key),
            "client keys must not contain the internal separator"
        );
    }

    /// `createLockRef`: enqueues a per-key unique increasing identifier,
    /// good for one critical section. Cost: one consensus write (LWT).
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] when the lock store cannot reach a quorum;
    /// the client retries (§III-A). A nacked call may still have enqueued
    /// an orphan reference, which `forcedRelease` eventually collects.
    ///
    /// # Panics
    ///
    /// Panics if `key` contains the reserved internal separator `'\u{1}'`.
    pub async fn create_lock_ref(&self, key: &str) -> Result<LockRef, StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("createLockRef", key);
        let t0 = self.now();
        let r = self.create_lock_ref_inner(key).await;
        if r.is_ok() {
            self.stats.record(OpKind::CreateLockRef, self.now() - t0);
        }
        self.span_end(span, "createLockRef", key, r.is_ok());
        r
    }

    async fn create_lock_ref_inner(&self, key: &str) -> Result<LockRef, StoreError> {
        // Mark (never wait on) the gate: combining-round leaders chain
        // behind this enqueue's LWT instead of racing its ballots.
        let _gate = GateGuard::mark(&self.lock_lwt_gate, key);
        let mut authorized: Option<LockRef> = None;
        // Bounded break attempts: back-to-back lease grants by a hot
        // leaseholder could otherwise starve this enqueue. The fallback
        // below is always safe — it queues behind the lease exactly like
        // behind any live holder.
        for _ in 0..4 {
            match self
                .locks
                .generate_and_enqueue_guarded(self.node, key, authorized)
                .await?
            {
                EnqueueOutcome::Minted(r) => return Ok(r),
                EnqueueOutcome::LeaseBlocked(leased) => {
                    // Force resynchronization *before* breaking the lease:
                    // the leaseholder may have re-entered invisibly (the
                    // claim is a CL.ONE start-time write the break LWT's
                    // quorum read can miss) with puts already in flight —
                    // exactly the mid-put preemption of §IV-B, so the break
                    // must leave the synchFlag set for the next holder.
                    // Stamped like a forcedRelease of the leased reference:
                    // above any reset it could have issued, below the next
                    // holder's.
                    let stamp = self.v2s.forced_release_stamp(leased, self.cfg.delta);
                    self.data
                        .write_quorum(self.node, &synch_key(key), Put::value(FLAG_TRUE), stamp)
                        .await?;
                    // The break deposes the leased reference exactly like a
                    // forcedRelease does, and is recorded the same way:
                    // after the covering flag is durable, before the
                    // collecting LWT commits, so a successor's grant sorts
                    // after it in the trace. If the break then loses to a
                    // concurrent claim, the event is spuriously early — the
                    // checker treats the claimed section's acts as stale
                    // (the safe direction) rather than missing a deposal.
                    self.emit(|| EventKind::LockForcedRelease {
                        key: key.to_string(),
                        lock_ref: leased.value(),
                    });
                    authorized = Some(leased);
                }
            }
        }
        self.locks.generate_and_enqueue(self.node, key).await
    }

    /// `createLockRef` through the **enqueue combiner** (the Hot-mode path
    /// of [`crate::contention`]): same-key concurrent callers on this
    /// replica's clones are batched into one
    /// [`LockMutation::EnqueueBatch`](music_lockstore::LockMutation) LWT
    /// round — one consensus write for the whole batch instead of one per
    /// waiter, which is exactly the round-trip amplification a flash crowd
    /// dies of. Arrival order becomes reference order, so the queue
    /// refinement cannot tell a combined round from individual enqueues.
    ///
    /// The first caller on a key becomes the round *leader*: it waits one
    /// `acquire_poll` gather window for co-arriving waiters, closes the
    /// round, and runs the batch LWT (with the same bounded lease-break
    /// loop as the single path). Parked waiters poll the round's
    /// settlement cell and receive `first + index`. Any round failure
    /// degrades every member to the plain single-enqueue path — combining
    /// is an optimization, never a correctness dependency.
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] exactly like
    /// [`MusicReplica::create_lock_ref`].
    ///
    /// # Panics
    ///
    /// Panics if `key` contains the reserved internal separator `'\u{1}'`.
    pub async fn create_lock_ref_combined(&self, key: &str) -> Result<LockRef, StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("createLockRef", key);
        let t0 = self.now();
        let r = self.create_lock_ref_combined_inner(key).await;
        if r.is_ok() {
            self.stats.record(OpKind::CreateLockRef, self.now() - t0);
        }
        self.span_end(span, "createLockRef", key, r.is_ok());
        r
    }

    async fn create_lock_ref_combined_inner(&self, key: &str) -> Result<LockRef, StoreError> {
        let (is_leader, index, slots) = {
            let mut rounds = self.combiner.borrow_mut();
            match rounds.get_mut(key) {
                Some(round) => {
                    round.joiners += 1;
                    (false, round.joiners - 1, round.slots.clone())
                }
                None => {
                    let slots = Rc::new(RefCell::new(CombineSlots::default()));
                    rounds.insert(
                        key.to_string(),
                        CombineRound {
                            joiners: 1,
                            slots: slots.clone(),
                        },
                    );
                    (true, 0, slots)
                }
            }
        };
        if is_leader {
            // Gather window: a few poll intervals for co-arriving waiters
            // to join, scaled by the local queue depth — when the queue is
            // already `d` deep, a joiner's section is at least `d`
            // handoffs away, so holding the round open a little longer
            // costs nothing and batches the trickle of re-enqueues into
            // fewer LWT rounds. Skipped when a same-key lock LWT is
            // already in flight: the wait on the gate below *is* the
            // gather window then.
            if !self.lock_lwt_in_flight(key) {
                let polls = match self.locks.queue_depth_local(self.node, key).await {
                    Ok(d) if d > 1 => d.min(8) as u64,
                    _ => 1,
                };
                self.rt
                    .sleep(SimDuration::from_micros(
                        self.cfg.acquire_poll.as_micros().saturating_mul(polls),
                    ))
                    .await;
            }
            // Chain on the gate: launching a ballot against an in-flight
            // release or sibling round would only preempt it (the 5ms-base
            // exponential ballot backoff is exactly what a flash crowd
            // dies of). The round stays open while we wait, so later
            // arrivals still join it.
            while self.lock_lwt_in_flight(key) {
                self.rt.sleep(self.cfg.acquire_poll).await;
            }
            // Close the round *before* the LWT: arrivals during the round
            // form the next one (its leader chains on the gate behind this
            // round's LWT).
            let count = {
                let mut rounds = self.combiner.borrow_mut();
                let round = rounds.remove(key).expect("leader owns the forming round");
                round.joiners
            };
            let _gate = GateGuard::mark(&self.lock_lwt_gate, key);
            let res = self.enqueue_batch_with_breaks(key, count).await;
            match res {
                Ok(BatchOutcome::Minted { first, count: n }) => {
                    let mut s = slots.borrow_mut();
                    s.done = true;
                    s.first = first;
                    s.count = n;
                    Ok(first)
                }
                Ok(BatchOutcome::LeaseBlocked(_)) | Err(_) => {
                    {
                        let mut s = slots.borrow_mut();
                        s.done = true;
                        s.failed = true;
                    }
                    // Leader degrades to the single path; the parked
                    // waiters observe `failed` and do the same.
                    self.create_lock_ref_inner(key).await
                }
            }
        } else {
            loop {
                {
                    let s = slots.borrow();
                    if s.done {
                        if !s.failed && index < s.count {
                            return Ok(LockRef::new(s.first.value() + u64::from(index)));
                        }
                        break;
                    }
                }
                self.rt.sleep(self.cfg.acquire_poll).await;
            }
            self.create_lock_ref_inner(key).await
        }
    }

    /// The combined twin of `create_lock_ref_inner`'s bounded-break loop:
    /// up to 4 authorized lease breaks (each preceded by the covering
    /// `synchFlag` write, §IV-B), then gives up with the blocking lease so
    /// the round can degrade to single enqueues.
    async fn enqueue_batch_with_breaks(
        &self,
        key: &str,
        count: u32,
    ) -> Result<BatchOutcome, StoreError> {
        let mut authorized: Option<LockRef> = None;
        let mut last_blocked = LockRef::NONE;
        for _ in 0..4 {
            match self
                .locks
                .generate_and_enqueue_batch_guarded(self.node, key, count, authorized, true)
                .await?
            {
                BatchOutcome::Minted { first, count } => {
                    return Ok(BatchOutcome::Minted { first, count })
                }
                BatchOutcome::LeaseBlocked(leased) => {
                    // Same break protocol as the single path: resynchronize
                    // *before* deposing the leaseholder, stamped like a
                    // forcedRelease of the leased reference.
                    let stamp = self.v2s.forced_release_stamp(leased, self.cfg.delta);
                    self.data
                        .write_quorum(self.node, &synch_key(key), Put::value(FLAG_TRUE), stamp)
                        .await?;
                    self.emit(|| EventKind::LockForcedRelease {
                        key: key.to_string(),
                        lock_ref: leased.value(),
                    });
                    authorized = Some(leased);
                    last_blocked = leased;
                }
            }
        }
        Ok(BatchOutcome::LeaseBlocked(last_blocked))
    }

    /// Lease fast re-entry: claims the pre-minted leased reference with
    /// **zero extra WAN round trips** — one local peek to revalidate that
    /// the lease still heads the queue, then the same cheap CL.ONE
    /// start-time write the normal grant path uses. Returns
    /// [`AcquireOutcome::Acquired`] on success; any other outcome means the
    /// lease is gone (broken, revoked, or not yet visible locally) and the
    /// caller must fall back to `createLockRef` + `acquireLock`.
    ///
    /// Skipping the grant path's `synchFlag` quorum read is sound: between
    /// a *clean* release-with-lease and this re-entry, the flag can only
    /// have been raised for this reference by a `forcedRelease` or a lease
    /// break — and both also dequeue the reference, which this
    /// revalidation (or the per-operation holder guard, for a stale local
    /// view) detects; in the residual stale-peek race our writes carry
    /// dominated `v2s` stamps, the standard preempted-holder safety of
    /// §IV-B.
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] when the lock store does not answer.
    ///
    /// # Panics
    ///
    /// Panics if `key` contains the reserved internal separator `'\u{1}'`.
    pub async fn lease_reenter(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<AcquireOutcome, StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("leaseReenter", key);
        let r = self.lease_reenter_inner(key, lock_ref).await;
        if matches!(r, Ok(AcquireOutcome::Acquired)) {
            self.count("lease_hits", 1);
            self.count("lock_grants", 1);
            self.emit(|| EventKind::LockGrant {
                key: key.to_string(),
                lock_ref: lock_ref.value(),
            });
        }
        self.span_end(span, "leaseReenter", key, r.is_ok());
        r
    }

    async fn lease_reenter_inner(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<AcquireOutcome, StoreError> {
        let t0 = self.now();
        let head = self.peek(key).await?;
        let Some((head, entry)) = head else {
            // Local lock-store replica has not learned the lease row yet.
            return Ok(AcquireOutcome::NotYet);
        };
        if lock_ref > head {
            return Ok(AcquireOutcome::NotYet);
        }
        if lock_ref < head {
            return Ok(AcquireOutcome::NoLongerHolder);
        }
        let Some(until) = entry.lease_until else {
            // Head matches but is not a lease row: claim through the slow
            // path (defensive; should not happen for a cached grant).
            return Ok(AcquireOutcome::NoLongerHolder);
        };
        let now = self.now();
        if !lease_claimable(now, until, self.cfg.clock_epsilon) {
            // Expired — or within ε of expiry on this node's (possibly
            // skewed) clock, where a drift-shifted watchdog may already be
            // revoking it. Take the slow path (which resynchronizes)
            // rather than racing it.
            if now < until {
                self.count("lease_drift_rejects", 1);
                self.emit(|| EventKind::LeaseDriftReject {
                    key: key.to_string(),
                    lock_ref: lock_ref.value(),
                    guard: "claim",
                    now_us: now.as_micros(),
                    until_us: until.as_micros(),
                });
            }
            return Ok(AcquireOutcome::NoLongerHolder);
        }
        // Claim: record the section start for the duration bound T and the
        // failure detector, like the normal grant path (§VI).
        if entry.start_time.is_none() {
            self.locks
                .set_start_time(self.node, key, lock_ref, self.now())
                .await?;
        }
        // Same zombie-grant revalidation as the slow path: the watchdog may
        // have revoked the lease while the startTime write was in flight.
        match self.peek(key).await? {
            Some((head, _)) if head == lock_ref => {}
            _ => return Ok(AcquireOutcome::NoLongerHolder),
        }
        self.stats.record(OpKind::LeaseReenter, self.now() - t0);
        Ok(AcquireOutcome::Acquired)
    }

    /// `acquireLock`: returns [`AcquireOutcome::Acquired`] iff `lock_ref`
    /// is first in the queue; synchronizes the data store first when the
    /// `synchFlag` is set (a previous holder was preempted mid-put).
    ///
    /// Cost: a local peek; plus, for the winning poll, a lock-queue quorum
    /// confirmation of headship and a `synchFlag` quorum read (issued
    /// concurrently: one quorum RTT of wall-clock) — and only
    /// after a forced release, a value quorum read, a value quorum write,
    /// and a `synchFlag` quorum write (§IV-A, hardened: confirming
    /// headship at quorum *before* any grant side effect closes the
    /// gappy-local-view misgrant a nemesis schedule can produce, and keeps
    /// the §III-A synchronization rewrite from poisoning the key with an
    /// unjustified `v2s(ref, 0)` stamp).
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] if the data store cannot reach a quorum
    /// during synchronization.
    pub async fn acquire_lock(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<AcquireOutcome, StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("acquireLock", key);
        let r = self.acquire_lock_inner(key, lock_ref).await;
        if matches!(r, Ok(AcquireOutcome::Acquired)) {
            self.count("lock_grants", 1);
            self.emit(|| EventKind::LockGrant {
                key: key.to_string(),
                lock_ref: lock_ref.value(),
            });
        }
        self.span_end(span, "acquireLock", key, r.is_ok());
        r
    }

    async fn acquire_lock_inner(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<AcquireOutcome, StoreError> {
        let t0 = self.now();
        let head = self.peek(key).await?;
        self.stats.record(OpKind::AcquirePeek, self.now() - t0);
        let Some((head, _)) = head else {
            // Local lock-store replica not updated yet: retry.
            return Ok(AcquireOutcome::NotYet);
        };
        if lock_ref > head {
            return Ok(AcquireOutcome::NotYet);
        }
        if lock_ref < head {
            return Ok(AcquireOutcome::NoLongerHolder);
        }

        // We are first in the *local* queue: the grant path. Before any
        // grant side effect, confirm headship at *quorum*. The waiting
        // polls stay local (they run many times per section, the cost
        // §IV-A avoids), but the winning poll must not trust the local
        // view alone: a restarted or loss-degraded lock replica can serve
        // a *gappy* queue — later enqueues applied, an earlier one never
        // delivered — whose local head skips still-queued references
        // entirely. Acting on such a misgrant is worse than a zombie
        // grant: the §III-A synchronization below re-writes the current
        // value under `v2s(ourRef, 0)`, and if `ourRef` has unconfirmed
        // predecessors that stamp *poisons* the key — every write by the
        // genuine intervening holders is silently dominated, so their
        // acked puts never become visible (a latest-state violation with
        // no release event anywhere near it). Confirming first keeps the
        // rewrite stamp justified: our reference really is the head, so
        // `v2s(ourRef, 0)` dominates exactly the writes §IV-B says it may.
        //
        // One lock-queue quorum read per granted section, overlapped with
        // the synchFlag quorum read the grant already pays, so the grant
        // still costs one quorum RTT of wall-clock (Fig. 5(b)). Reading
        // the flag concurrently is sound: both reads are side-effect-free
        // and every grant side effect below stays gated on the
        // confirmation succeeding. The §IV-B flag-visibility argument
        // survives the overlap because both reads start only after the
        // *local* head observation — and a genuine local head means the
        // dequeue LWT committed, which in turn means the forced release's
        // flag quorum write completed before it, so our flag read's quorum
        // must intersect it. (A spurious gappy-view head fails the
        // confirmation and the flag value is discarded unused.) A
        // forcedRelease can still land *after* this confirmation and
        // before the caller acts — that residual zombie window is the one
        // §IV-B argues safe (dominated stamps), the trace checker excuses
        // (deposed-reference accounting), and the per-operation holder
        // guards cut short.
        let span = self.phase_open(SpanPhase::HeadConfirm, key);
        let r = self.confirm_and_grant(key, lock_ref).await;
        self.phase_close(span);
        r
    }

    /// The winning poll's grant path: quorum headship confirm overlapped
    /// with the `synchFlag` read, optional §III-A synchronization, and the
    /// `startTime` write. Split out of `acquire_lock_inner` so the
    /// `lock.headConfirm` span covers exactly this quorum-priced section.
    async fn confirm_and_grant(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<AcquireOutcome, StoreError> {
        let t0 = self.now();
        let flag_read = {
            let data = self.data.clone();
            let node = self.node;
            let skey = synch_key(key);
            self.rt
                .spawn(async move { data.read_quorum(node, &skey).await })
        };
        let entry = match self.locks.peek_quorum(self.node, key).await? {
            Some((head, entry)) if head == lock_ref => entry,
            Some((head, _)) if lock_ref > head => return Ok(AcquireOutcome::NotYet),
            _ => return Ok(AcquireOutcome::NoLongerHolder),
        };
        let flag = flag_read.await?;
        if flag_is_true(&flag) {
            // A previous holder may have died mid-criticalPut: synchronize.
            // Quorum-read the key, re-write the result under our lockRef
            // (committing the non-deterministic choice of §III-A), then
            // reset the flag.
            let snap = self.data.read_quorum(self.node, key).await?;
            let stamp = self
                .v2s
                .scalar(VectorTimestamp::new(lock_ref, SimDuration::ZERO));
            let rewrite = match snap.value {
                Some(v) => Put::value(v),
                None => Put::delete(),
            };
            self.data
                .write_quorum(self.node, key, rewrite, stamp)
                .await?;
            self.data
                .write_quorum(self.node, &synch_key(key), Put::value(FLAG_FALSE), stamp)
                .await?;
        }
        // Initialize startTime for the duration bound T (§VI). Re-granting
        // an already-started entry (a duplicate winning poll) keeps the
        // original start because the LWW stamp is the grant instant.
        if entry.start_time.is_none() {
            self.locks
                .set_start_time(self.node, key, lock_ref, self.now())
                .await?;
        }
        self.stats.record(OpKind::AcquireGrant, self.now() - t0);
        Ok(AcquireOutcome::Acquired)
    }

    /// Guards shared by `criticalPut`/`criticalGet`: holder check via the
    /// local peek, then the duration bound. Returns the elapsed-in-CS time.
    async fn critical_guard(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<SimDuration, CriticalError> {
        let head = self.peek(key).await?;
        let Some((head, entry)) = head else {
            return Err(CriticalError::NotYetHolder);
        };
        if lock_ref > head {
            return Err(CriticalError::NotYetHolder);
        }
        if lock_ref < head {
            return Err(CriticalError::NoLongerHolder);
        }
        let Some(start) = entry.start_time else {
            // Granted, but this replica's local view lacks startTime yet.
            return Err(CriticalError::NotYetHolder);
        };
        let elapsed = self.now() - start;
        if elapsed >= self.cfg.t_max {
            return Err(CriticalError::Expired);
        }
        Ok(elapsed)
    }

    /// `criticalPut`: writes the latest value of `key` for the current
    /// lockholder. Cost: one value quorum write (or an LWT under
    /// [`PutMode::Lwt`], the MSCP baseline).
    ///
    /// # Errors
    ///
    /// See [`CriticalError`]; on [`CriticalError::Store`] the write is
    /// *unacknowledged* — it may or may not have landed, and the client
    /// must retry until acknowledged or abandon the critical section.
    pub async fn critical_put(
        &self,
        key: &str,
        lock_ref: LockRef,
        value: Bytes,
    ) -> Result<(), CriticalError> {
        self.critical_put_with(key, lock_ref, Put::value(value), self.cfg.put_mode)
            .await
    }

    /// `criticalPut`'s delete twin (footnote 3 of the paper).
    ///
    /// # Errors
    ///
    /// Same as [`MusicReplica::critical_put`].
    pub async fn critical_delete(&self, key: &str, lock_ref: LockRef) -> Result<(), CriticalError> {
        self.critical_put_with(key, lock_ref, Put::delete(), self.cfg.put_mode)
            .await
    }

    /// `criticalPut` with an explicit [`PutMode`] (benchmarks compare the
    /// two).
    ///
    /// # Errors
    ///
    /// Same as [`MusicReplica::critical_put`].
    pub async fn critical_put_with(
        &self,
        key: &str,
        lock_ref: LockRef,
        put: Put,
        mode: PutMode,
    ) -> Result<(), CriticalError> {
        Self::assert_client_key(key);
        let span = self.span_start("criticalPut", key);
        let r = self
            .critical_put_inner(key, lock_ref, put, mode, SimDuration::ZERO)
            .await
            .map(|_| ());
        self.span_end(span, "criticalPut", key, r.is_ok());
        r
    }

    /// [`MusicReplica::critical_put`] with an external stamp floor and the
    /// stamped elapsed returned. The floor is the client's *session* floor:
    /// after a mid-section fail-over, successive puts of one section run on
    /// different replicas whose drifted clocks can disagree by up to 2ε, so
    /// each replica's own `elapsed = now − start_time` is not monotone
    /// across the hand-off. The client threads the last stamped elapsed
    /// through so the new replica stamps strictly above it, keeping
    /// last-write-wins aligned with issue order.
    ///
    /// # Errors
    ///
    /// Same as [`MusicReplica::critical_put`].
    pub async fn critical_put_floored(
        &self,
        key: &str,
        lock_ref: LockRef,
        value: Bytes,
        floor: SimDuration,
    ) -> Result<SimDuration, CriticalError> {
        Self::assert_client_key(key);
        let span = self.span_start("criticalPut", key);
        let r = self
            .critical_put_inner(key, lock_ref, Put::value(value), self.cfg.put_mode, floor)
            .await;
        self.span_end(span, "criticalPut", key, r.is_ok());
        r
    }

    /// Monotonizes the `elapsed` component of a fresh put stamp: at least
    /// 1µs (strictly above the grant-time synchronization re-write at
    /// elapsed 0), strictly above every stamp this replica already minted
    /// for `key` under `lock_ref` ([`Self::stamp_floor`], covering a
    /// stalled or stepped-back local clock), and strictly above the
    /// caller-supplied `floor` (the client session floor, covering
    /// cross-replica fail-over under clock skew).
    fn stamped_elapsed(
        &self,
        key: &str,
        lock_ref: LockRef,
        elapsed: SimDuration,
        floor: SimDuration,
    ) -> SimDuration {
        let mut floors = self.stamp_floor.borrow_mut();
        let entry = floors
            .entry(key.to_string())
            .or_insert((lock_ref.value(), 0));
        if entry.0 != lock_ref.value() {
            *entry = (lock_ref.value(), 0);
        }
        let bumped = elapsed
            .as_micros()
            .max(entry.1 + 1)
            .max(floor.as_micros().saturating_add(1));
        entry.1 = bumped;
        SimDuration::from_micros(bumped)
    }

    async fn critical_put_inner(
        &self,
        key: &str,
        lock_ref: LockRef,
        put: Put,
        mode: PutMode,
        floor: SimDuration,
    ) -> Result<SimDuration, CriticalError> {
        let t0 = self.now();
        let elapsed = self.critical_guard(key, lock_ref).await?;
        let elapsed = self.stamped_elapsed(key, lock_ref, elapsed, floor);
        let stamp = self.v2s.scalar(VectorTimestamp::new(lock_ref, elapsed));
        // Deletes have no digest; the checker tracks valued writes only.
        let digest = put.value.as_deref().map(music_telemetry::digest);
        if let Some(d) = digest {
            self.emit(|| EventKind::CritPutStart {
                key: key.to_string(),
                lock_ref: lock_ref.value(),
                digest: d,
            });
        }
        match mode {
            PutMode::Quorum => {
                self.data.write_quorum(self.node, key, put, stamp).await?;
                self.stats.record(OpKind::CriticalPut, self.now() - t0);
            }
            PutMode::Lwt => {
                self.data
                    .lwt(self.node, key, |_, _| Some((put.clone(), stamp)))
                    .await?;
                self.stats.record(OpKind::MscpPut, self.now() - t0);
            }
        }
        self.count("crit_puts", 1);
        if let Some(d) = digest {
            self.emit(|| EventKind::CritPutAck {
                key: key.to_string(),
                lock_ref: lock_ref.value(),
                digest: d,
            });
        }
        Ok(elapsed)
    }

    /// Pipelined `criticalPut`: runs the holder guard and stamps the write
    /// like [`MusicReplica::critical_put`], but returns as soon as the
    /// quorum write is *issued*. The returned [`PendingPut`] resolves when
    /// a quorum acknowledges (emitting `critPutAck` at that instant).
    ///
    /// Always a quorum write — the pipelined window is defined over the
    /// quorum store's commutative last-write-wins semantics, which LWTs do
    /// not have.
    ///
    /// # Errors
    ///
    /// See [`CriticalError`] for the *issue* step (guard / local peek).
    /// Store errors of the write itself surface when the pending put is
    /// awaited; such a write is unacknowledged and may still land.
    pub async fn critical_put_async(
        &self,
        key: &str,
        lock_ref: LockRef,
        value: Bytes,
    ) -> Result<PendingPut<RT>, CriticalError> {
        self.critical_put_async_floored(key, lock_ref, value, SimDuration::ZERO)
            .await
    }

    /// [`MusicReplica::critical_put_async`] with an external stamp floor —
    /// see [`MusicReplica::critical_put_floored`] for why fail-over across
    /// skewed replica clocks needs one. The stamped elapsed is available on
    /// the returned [`PendingPut::elapsed`] *at issue time*, so the client
    /// can advance its session floor before the ack lands.
    ///
    /// # Errors
    ///
    /// Same as [`MusicReplica::critical_put_async`].
    pub async fn critical_put_async_floored(
        &self,
        key: &str,
        lock_ref: LockRef,
        value: Bytes,
        floor: SimDuration,
    ) -> Result<PendingPut<RT>, CriticalError> {
        Self::assert_client_key(key);
        let span = self.span_start("criticalPut", key);
        let t0 = self.now();
        let elapsed = match self.critical_guard(key, lock_ref).await {
            Ok(e) => e,
            Err(e) => {
                self.span_end(span, "criticalPut", key, false);
                return Err(e);
            }
        };
        let elapsed = self.stamped_elapsed(key, lock_ref, elapsed, floor);
        let stamp = self.v2s.scalar(VectorTimestamp::new(lock_ref, elapsed));
        let digest = music_telemetry::digest(&value);
        self.emit(|| EventKind::CritPutStart {
            key: key.to_string(),
            lock_ref: lock_ref.value(),
            digest,
        });
        // The write itself runs detached (inheriting this span's trace
        // tag), so the caller can keep issuing puts while it is in flight.
        let me = self.clone();
        let key_owned = key.to_string();
        let write =
            self.data
                .write_quorum_spawned(self.node, key, Put::value(value.clone()), stamp);
        let handle = self.rt.spawn(async move {
            let r = write.await;
            if r.is_ok() {
                me.stats.record(OpKind::CriticalPut, me.now() - t0);
                me.count("crit_puts", 1);
                me.emit(|| EventKind::CritPutAck {
                    key: key_owned.clone(),
                    lock_ref: lock_ref.value(),
                    digest,
                });
            }
            r.map_err(CriticalError::from)
        });
        self.span_end(span, "criticalPut", key, true);
        Ok(PendingPut {
            value,
            elapsed,
            handle,
        })
    }

    /// Re-drives a pipelined put whose quorum write failed, replaying the
    /// **original** stamp (`v2s(lock_ref, elapsed)`): a retry must not mint
    /// a fresh (higher) stamp, or a retried early write could clobber a
    /// later write of the same section under last-write-wins. Emits only
    /// `critPutAck` on success — the original `critPutStart` is still the
    /// outstanding logical write.
    ///
    /// # Errors
    ///
    /// See [`CriticalError`]; the guard re-runs against current state, so a
    /// preempted or expired holder is rejected here.
    pub async fn critical_put_resume(
        &self,
        key: &str,
        lock_ref: LockRef,
        value: Bytes,
        elapsed: SimDuration,
    ) -> Result<(), CriticalError> {
        Self::assert_client_key(key);
        let span = self.span_start("criticalPut", key);
        let t0 = self.now();
        let r = self
            .critical_put_resume_inner(key, lock_ref, value, elapsed, t0)
            .await;
        self.span_end(span, "criticalPut", key, r.is_ok());
        r
    }

    async fn critical_put_resume_inner(
        &self,
        key: &str,
        lock_ref: LockRef,
        value: Bytes,
        elapsed: SimDuration,
        t0: SimTime,
    ) -> Result<(), CriticalError> {
        self.critical_guard(key, lock_ref).await?;
        let stamp = self.v2s.scalar(VectorTimestamp::new(lock_ref, elapsed));
        let digest = music_telemetry::digest(&value);
        self.data
            .write_quorum(self.node, key, Put::value(value), stamp)
            .await?;
        self.stats.record(OpKind::CriticalPut, self.now() - t0);
        self.count("crit_puts", 1);
        self.emit(|| EventKind::CritPutAck {
            key: key.to_string(),
            lock_ref: lock_ref.value(),
            digest,
        });
        Ok(())
    }

    /// Marks `key`'s `synchFlag` on behalf of a holder whose flush failed:
    /// some pipelined write is unacknowledged, so the *next* holder must
    /// resynchronize exactly as after a forced release. Stamped at
    /// `v2s(lock_ref, 0) + δ` — above this holder's grant-time reset,
    /// below the next holder's (§IV-B).
    ///
    /// Best-effort from the client's perspective: if this write also fails,
    /// safety still holds because the failed flush fails the release, the
    /// reference stays queued, and the failure detector's `forcedRelease`
    /// quorum-writes the flag before dequeueing it.
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] when the data store cannot reach a quorum.
    pub async fn mark_synch(&self, key: &str, lock_ref: LockRef) -> Result<(), StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("markSynch", key);
        let stamp = self.v2s.forced_release_stamp(lock_ref, self.cfg.delta);
        let r = self
            .data
            .write_quorum(self.node, &synch_key(key), Put::value(FLAG_TRUE), stamp)
            .await;
        if r.is_ok() {
            self.count("synch_marks", 1);
            self.emit(|| EventKind::SynchMark {
                key: key.to_string(),
                lock_ref: lock_ref.value(),
            });
        }
        self.span_end(span, "markSynch", key, r.is_ok());
        r
    }

    /// `criticalGet`: reads the latest (true) value of `key` for the
    /// current lockholder. Cost: one value quorum read.
    ///
    /// # Errors
    ///
    /// See [`CriticalError`].
    pub async fn critical_get(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<Option<Bytes>, CriticalError> {
        Self::assert_client_key(key);
        let span = self.span_start("criticalGet", key);
        let r = self.critical_get_inner(key, lock_ref).await;
        self.span_end(span, "criticalGet", key, r.is_ok());
        r
    }

    async fn critical_get_inner(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<Option<Bytes>, CriticalError> {
        let t0 = self.now();
        self.critical_guard(key, lock_ref).await?;
        let snap = self.data.read_quorum(self.node, key).await?;
        // Re-run the guard after the quorum read: a forcedRelease landing
        // while the read was in flight deposed this reference, and the
        // value must not be returned (or recorded) as a holder's read.
        self.critical_guard(key, lock_ref).await?;
        self.stats.record(OpKind::CriticalGet, self.now() - t0);
        self.count("crit_gets", 1);
        self.emit(|| EventKind::CritGet {
            key: key.to_string(),
            lock_ref: lock_ref.value(),
            digest: snap.value.as_deref().map(music_telemetry::digest),
        });
        Ok(snap.value)
    }

    /// `releaseLock`: removes `lock_ref` from the queue. Succeeds (as a
    /// no-op) if the lock was already forcibly released. Cost: one
    /// consensus write (LWT).
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] when the lock store cannot reach a quorum.
    pub async fn release_lock(&self, key: &str, lock_ref: LockRef) -> Result<(), StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("releaseLock", key);
        let r = self.release_lock_inner(key, lock_ref).await;
        self.span_end(span, "releaseLock", key, r.is_ok());
        r
    }

    async fn release_lock_inner(&self, key: &str, lock_ref: LockRef) -> Result<(), StoreError> {
        // Mark the gate so combining-round leaders chain behind this
        // release instead of preempting its ballots; marking is pure
        // bookkeeping (no await), so the path is unchanged when no
        // combiner runs.
        let _gate = GateGuard::mark(&self.lock_lwt_gate, key);
        let t0 = self.now();
        if let Some((head, _)) = self.peek(key).await? {
            if lock_ref < head {
                return Ok(()); // lock was forcibly released already
            }
        }
        // Emit at abdication, *before* the dequeue commits: a successor's
        // local peek can observe the dequeue (and record its grant) before
        // this coordinator's LWT round returns, so emitting afterwards
        // would order the grant ahead of the release in the trace. From
        // here the holder never acts again, so this is the release point
        // as far as exclusivity is concerned; if the LWT nacks, the retry
        // re-emits and the checker treats the duplicate as a no-op.
        self.emit(|| EventKind::LockRelease {
            key: key.to_string(),
            lock_ref: lock_ref.value(),
        });
        self.locks.dequeue(self.node, key, lock_ref).await?;
        self.stats.record(OpKind::ReleaseLock, self.now() - t0);
        Ok(())
    }

    /// `releaseLock` with lease retention: like
    /// [`MusicReplica::release_lock`], but when nothing is queued behind
    /// the released reference, the same LWT pre-mints the successor as a
    /// lease valid for `window`. Returns the grant when one was retained —
    /// the caller may then re-enter via [`MusicReplica::lease_reenter`]
    /// within the window at zero extra WAN cost.
    ///
    /// Cost: one LWT = 4 WAN round trips, identical to a plain release.
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] when the lock store cannot reach a quorum.
    ///
    /// # Panics
    ///
    /// Panics if `key` contains the reserved internal separator `'\u{1}'`.
    pub async fn release_lock_leased(
        &self,
        key: &str,
        lock_ref: LockRef,
        window: SimDuration,
    ) -> Result<Option<LeaseGrant>, StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("releaseLock", key);
        let r = self.release_lock_leased_inner(key, lock_ref, window).await;
        self.span_end(span, "releaseLock", key, r.is_ok());
        r
    }

    async fn release_lock_leased_inner(
        &self,
        key: &str,
        lock_ref: LockRef,
        window: SimDuration,
    ) -> Result<Option<LeaseGrant>, StoreError> {
        // Same gate marking as `release_lock_inner`: releases go first.
        let _gate = GateGuard::mark(&self.lock_lwt_gate, key);
        let t0 = self.now();
        if let Some((head, _)) = self.peek(key).await? {
            if lock_ref < head {
                return Ok(None); // lock was forcibly released already
            }
        }
        let until = self.now() + window;
        // Emitted before the LWT for the same reason as in
        // `release_lock_inner`: a waiter enqueued behind us may observe
        // the dequeue and grant itself before our round returns.
        self.emit(|| EventKind::LockRelease {
            key: key.to_string(),
            lock_ref: lock_ref.value(),
        });
        let granted = self
            .locks
            .release_with_lease(self.node, key, lock_ref, until)
            .await?;
        self.stats.record(OpKind::ReleaseLock, self.now() - t0);
        Ok(granted.map(|(r, until)| LeaseGrant { lock_ref: r, until }))
    }

    /// `forcedRelease`: preempts `lock_ref` on behalf of a presumed-failed
    /// holder (internal; driven by the failure detector or by takeover
    /// logic like the Portal's, §VII-b).
    ///
    /// Sets the `synchFlag` **before** dequeueing, stamped at
    /// `v2s(lockRef, 0) + δ` so it overrides the holder's own concurrent
    /// flag reset but yields to the next holder's (§IV-B).
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] when either store cannot reach a quorum.
    pub async fn forced_release(&self, key: &str, lock_ref: LockRef) -> Result<(), StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("forcedRelease", key);
        let r = self.forced_release_inner(key, lock_ref).await;
        self.span_end(span, "forcedRelease", key, r.is_ok());
        r
    }

    async fn forced_release_inner(&self, key: &str, lock_ref: LockRef) -> Result<(), StoreError> {
        let t0 = self.now();
        if let Some((head, _)) = self.peek(key).await? {
            if lock_ref < head {
                return Ok(()); // previously released
            }
        }
        let stamp = self.v2s.forced_release_stamp(lock_ref, self.cfg.delta);
        self.data
            .write_quorum(self.node, &synch_key(key), Put::value(FLAG_TRUE), stamp)
            .await?;
        // Emitted once the covering flag is durable but *before* the
        // dequeue commits: the preempted reference's entitlement is
        // formally dead here (any write it still lands is dominated by
        // the flag's stamp), and the successor's grant — which a local
        // peek may record before our LWT round returns — must sort after
        // this event in the trace.
        self.emit(|| EventKind::LockForcedRelease {
            key: key.to_string(),
            lock_ref: lock_ref.value(),
        });
        // No-op if lock_ref is not in the queue.
        self.locks.dequeue(self.node, key, lock_ref).await?;
        self.stats.record(OpKind::ForcedRelease, self.now() - t0);
        self.count("forced_releases", 1);
        Ok(())
    }

    /// Lock-free eventual `get` — only for keys where no ECF guarantees are
    /// expected (§VI "Additional Functions").
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] if the closest replica does not answer.
    pub async fn get(&self, key: &str) -> Result<Option<Bytes>, StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("eventualGet", key);
        let t0 = self.now();
        let r = self.data.read_one(self.node, key).await;
        if r.is_ok() {
            self.stats.record(OpKind::EventualGet, self.now() - t0);
        }
        self.span_end(span, "eventualGet", key, r.is_ok());
        r.map(|snap| snap.value)
    }

    /// Lock-free eventual `put` — only for keys where no ECF guarantees are
    /// expected. Stamped with the local wall clock, far below any `v2s`
    /// stamp, so it can never clobber critical writes.
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] if no replica acknowledges.
    pub async fn put(&self, key: &str, value: Bytes) -> Result<(), StoreError> {
        Self::assert_client_key(key);
        let span = self.span_start("eventualPut", key);
        let t0 = self.now();
        let stamp = music_quorumstore::WriteStamp::new(self.now().as_micros().max(1));
        let r = self
            .data
            .write_one(self.node, key, Put::value(value), stamp)
            .await;
        if r.is_ok() {
            self.stats.record(OpKind::EventualPut, self.now() - t0);
        }
        self.span_end(span, "eventualPut", key, r.is_ok());
        r
    }

    /// `getAllKeys`: all live client keys visible at the closest data-store
    /// replica (possibly stale — the job-scheduler pattern tolerates that,
    /// §VII-a).
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] if the replica does not answer.
    pub async fn get_all_keys(&self) -> Result<Vec<String>, StoreError> {
        let keys = self.data.list_keys_local(self.node).await?;
        Ok(keys.into_iter().filter(|k| !is_internal_key(k)).collect())
    }

    /// The current queue head for `key` as seen by this replica's local
    /// lock-store view (monitoring / failure detection).
    ///
    /// # Errors
    ///
    /// Nacks with [`StoreError`] if the replica does not answer.
    pub async fn peek_holder(
        &self,
        key: &str,
    ) -> Result<Option<(LockRef, Option<SimTime>)>, StoreError> {
        let head = self.peek(key).await?;
        Ok(head.map(|(r, e)| (r, e.start_time)))
    }
}

/// A pipelined `criticalPut` that has been issued but not yet quorum
/// acknowledged (see [`MusicReplica::critical_put_async`]).
///
/// Dropping a pending put does **not** cancel the write — it keeps
/// propagating, exactly like a crashed holder's in-flight put.
pub struct PendingPut<RT: Runtime = Sim> {
    value: Bytes,
    elapsed: SimDuration,
    handle: RT::JoinHandle<Result<(), CriticalError>>,
}

impl<RT: Runtime> fmt::Debug for PendingPut<RT> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingPut")
            .field("value", &self.value)
            .field("elapsed", &self.elapsed)
            .finish_non_exhaustive()
    }
}

impl<RT: Runtime> PendingPut<RT> {
    /// The value being written (for retries).
    pub fn value(&self) -> &Bytes {
        &self.value
    }

    /// Elapsed-in-section time the write was stamped with; a retry must
    /// replay this stamp (see [`MusicReplica::critical_put_resume`]).
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Awaits the quorum acknowledgment.
    ///
    /// # Errors
    ///
    /// [`CriticalError::Store`] if the quorum write failed; the write is
    /// then unacknowledged and may still land.
    pub async fn wait(self) -> Result<(), CriticalError> {
        self.handle.await
    }

    /// Awaits the acknowledgment, returning the retry context alongside
    /// the outcome.
    pub async fn outcome(self) -> (Bytes, SimDuration, Result<(), CriticalError>) {
        let PendingPut {
            value,
            elapsed,
            handle,
        } = self;
        let r = handle.await;
        (value, elapsed, r)
    }
}
