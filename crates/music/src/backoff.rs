//! Deterministic jittered exponential backoff.
//!
//! "Standard back-off mechanisms can be used to alleviate the cost of
//! polling" (§III-A). A *fixed* exponential schedule, however, makes
//! co-located contenders poll in lockstep: every waiter that entered the
//! queue in the same round wakes at the same virtual instant and hammers
//! the same lock-store replica together. This module adds *equal jitter*
//! (half deterministic, half pseudo-random) on top of the exponential
//! curve while staying a **pure function** of its inputs — no RNG state,
//! no wall clock — so a seeded simulation replays byte-identically and
//! two clients with different salts drift apart.
//!
//! The delay for attempt `a` is drawn uniformly (by a splitmix64 hash of
//! `(salt, a)`) from `[2^min(a+1,6)·base/2, 2^min(a+1,6)·base]` and is
//! therefore always within `[base, 64·base]`.

use music_simnet::time::SimDuration;

/// The exponential cap: no delay exceeds `64 × base` (§III-A backoff,
/// capped at six doublings).
pub const MAX_BACKOFF_FACTOR: u64 = 64;

/// splitmix64 — a tiny, well-mixed, allocation-free hash finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds arbitrary labelled parts into one backoff salt. Deterministic:
/// the same parts always yield the same salt.
pub fn salt(parts: &[u64]) -> u64 {
    let mut acc = 0x4D55_5349_435F_4243u64; // "MUSIC_BC"
    for &p in parts {
        acc = splitmix64(acc ^ p);
    }
    acc
}

/// Hashes a string into a salt part (FNV-1a).
pub fn hash_str(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The jittered delay before retry/poll number `attempt` (0-based).
///
/// Pure: `delay(base, attempt, salt)` always returns the same duration
/// for the same inputs, and the result is always within
/// `[base, MAX_BACKOFF_FACTOR × base]`.
pub fn delay(base: SimDuration, attempt: u32, salt: u64) -> SimDuration {
    let base_us = base.as_micros().max(1);
    let cap_us = base_us.saturating_mul(MAX_BACKOFF_FACTOR);
    // Exponential raw target: 2·base, 4·base, … capped at 64·base.
    let doublings = attempt.saturating_add(1).min(6);
    let raw = base_us.saturating_mul(1u64 << doublings).min(cap_us);
    // Equal jitter: keep half, randomize the other half.
    let half = raw / 2;
    let jitter = splitmix64(salt ^ (u64::from(attempt) << 32)) % (raw - half + 1);
    SimDuration::from_micros((half + jitter).clamp(base_us, cap_us))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_pure_and_bounded() {
        let base = SimDuration::from_millis(2);
        for attempt in 0..40 {
            for s in [0u64, 1, 42, u64::MAX] {
                let d = delay(base, attempt, s);
                assert_eq!(d, delay(base, attempt, s), "pure function");
                assert!(d >= base, "attempt {attempt}: {d:?} below base");
                assert!(d <= base * 64, "attempt {attempt}: {d:?} above cap");
            }
        }
    }

    #[test]
    fn different_salts_drift_apart() {
        let base = SimDuration::from_millis(2);
        let a: Vec<_> = (0..8).map(|i| delay(base, i, salt(&[1]))).collect();
        let b: Vec<_> = (0..8).map(|i| delay(base, i, salt(&[2]))).collect();
        assert_ne!(a, b, "two salts should not poll in lockstep");
    }

    #[test]
    fn exponential_envelope_grows() {
        let base = SimDuration::from_millis(2);
        // The *upper* envelope doubles until the cap: attempt 5 and later
        // may reach 64×base, attempt 0 at most 2×base.
        assert!(delay(base, 0, 7) <= base * 2);
        for s in 0..64u64 {
            assert!(delay(base, 9, s) >= base * 32, "late attempts stay large");
        }
    }

    #[test]
    fn salt_and_hash_are_stable() {
        assert_eq!(salt(&[1, 2]), salt(&[1, 2]));
        assert_ne!(salt(&[1, 2]), salt(&[2, 1]));
        assert_eq!(hash_str("acquireLock"), hash_str("acquireLock"));
        assert_ne!(hash_str("a"), hash_str("b"));
    }
}
