//! MUSIC error and outcome types.

use std::fmt;

use music_quorumstore::StoreError;
use music_simnet::time::SimDuration;

/// Outcome of one `acquireLock` poll (§IV-A).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AcquireOutcome {
    /// The caller's lockRef is first in the queue: the critical section has
    /// been entered (and the data store synchronized if needed).
    Acquired,
    /// The lockRef is not first yet — or the local lock-store replica has
    /// not caught up. Poll again.
    NotYet,
    /// The lockRef is below the queue head: the lock was forcibly released.
    /// "youAreNoLongerLockHolder".
    NoLongerHolder,
}

/// Errors from critical operations (`criticalPut` / `criticalGet`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CriticalError {
    /// The lockRef is not (visibly) first in the queue yet; retry shortly.
    /// For an actual lockholder this means the serving replica's local
    /// lock-store view is stale.
    NotYetHolder,
    /// The lock was forcibly released; the caller must abandon this
    /// critical section (§III-A).
    NoLongerHolder,
    /// The critical section exceeded the maximum duration `T`; the
    /// operation is rejected to keep `v2s` sound (§VI).
    Expired,
    /// The back-end store nacked (no quorum). Retry, possibly at a
    /// different MUSIC replica.
    Store(StoreError),
}

impl fmt::Display for CriticalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CriticalError::NotYetHolder => write!(f, "lock reference is not first in the queue"),
            CriticalError::NoLongerHolder => write!(f, "you are no longer the lock holder"),
            CriticalError::Expired => write!(f, "critical section exceeded its maximum duration"),
            CriticalError::Store(e) => write!(f, "back-end store unavailable: {e}"),
        }
    }
}

impl std::error::Error for CriticalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CriticalError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CriticalError {
    fn from(e: StoreError) -> Self {
        CriticalError::Store(e)
    }
}

/// How many per-attempt causes an [`AttemptTrail`] records verbatim;
/// attempts beyond the cap are still *counted*.
pub const ATTEMPT_TRAIL_CAP: usize = 8;

/// The per-attempt failure causes behind a [`MusicError::Unavailable`].
///
/// Every failed attempt is counted; the first [`ATTEMPT_TRAIL_CAP`]
/// causes are recorded verbatim (`Some(store_error)` for a store-level
/// nack, `None` for an attempt that failed without one — a holder view
/// that never caught up), and the most recent store-level cause is always
/// retained. `Copy`, so the error still fits in the critical section's
/// poison cell.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct AttemptTrail {
    causes: [Option<StoreError>; ATTEMPT_TRAIL_CAP],
    recorded: u8,
    attempts: u32,
    last: Option<StoreError>,
}

impl AttemptTrail {
    /// An empty trail (no attempts noted yet).
    pub fn new() -> Self {
        Self::default()
    }

    fn note_cause(&mut self, cause: Option<StoreError>) {
        self.attempts = self.attempts.saturating_add(1);
        if (self.recorded as usize) < ATTEMPT_TRAIL_CAP {
            self.causes[self.recorded as usize] = cause;
            self.recorded += 1;
        }
        if cause.is_some() {
            self.last = cause;
        }
    }

    /// Notes one failed attempt with a store-level cause.
    pub fn note(&mut self, e: StoreError) {
        self.note_cause(Some(e));
    }

    /// Notes one failed attempt without a store-level cause (e.g. a
    /// `NotYetHolder` poll that never converged).
    pub fn note_opaque(&mut self) {
        self.note_cause(None);
    }

    /// Total attempts noted (may exceed the number of recorded causes).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The recorded per-attempt causes, in attempt order (at most
    /// [`ATTEMPT_TRAIL_CAP`]).
    pub fn causes(&self) -> &[Option<StoreError>] {
        &self.causes[..self.recorded as usize]
    }

    /// The most recent store-level cause across *all* attempts.
    pub fn last(&self) -> Option<StoreError> {
        self.last
    }

    fn last_ref(&self) -> Option<&StoreError> {
        self.last.as_ref()
    }

    /// Whether no attempts were noted.
    pub fn is_empty(&self) -> bool {
        self.attempts == 0
    }
}

impl fmt::Display for AttemptTrail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} attempts [", self.attempts)?;
        for (i, c) in self.causes().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match c {
                Some(e) => write!(f, "{}", e.code())?,
                None => write!(f, "staleView")?,
            }
        }
        if u32::from(self.recorded) < self.attempts {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

/// Client-level errors after the retry policy of §III-A has been applied.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MusicError {
    /// Retries across MUSIC replicas exhausted without success; the client
    /// must not attempt further operations on this key in this critical
    /// section. Carries the cause of every failed attempt, so a nemesis
    /// failure is diagnosable from the error alone.
    Unavailable {
        /// Per-attempt causes, in attempt order.
        attempts: AttemptTrail,
    },
    /// The client was told it is no longer the lock holder.
    NoLongerHolder,
    /// The critical section expired (duration bound `T`).
    Expired,
    /// A client was constructed with an empty replica list.
    NoReplicas,
    /// `enter_many` was called with an empty key set.
    EmptyKeySet,
    /// A multi-key operation named a key that is not part of the held
    /// section.
    NotInSection,
    /// The admission guard fast-rejected the entry because the key's
    /// lock queue has reached the configured depth bound
    /// ([`crate::contention::ContentionKnobs::max_queue_depth`]) — the
    /// graceful-degradation floor under a flash crowd. The client should
    /// back off for at least `retry_after` before re-trying; the
    /// suggestion grows with the observed excess depth.
    Overloaded {
        /// Suggested minimum back-off before re-attempting the entry.
        retry_after: SimDuration,
    },
}

impl MusicError {
    /// An [`MusicError::Unavailable`] with an empty attempt trail.
    pub fn unavailable() -> Self {
        MusicError::Unavailable {
            attempts: AttemptTrail::new(),
        }
    }

    /// The most recent underlying store error, if this is
    /// [`MusicError::Unavailable`] with one recorded.
    pub fn store_cause(&self) -> Option<StoreError> {
        match self {
            MusicError::Unavailable { attempts } => attempts.last(),
            _ => None,
        }
    }

    /// The per-attempt failure trail, if this is
    /// [`MusicError::Unavailable`].
    pub fn attempt_trail(&self) -> Option<&AttemptTrail> {
        match self {
            MusicError::Unavailable { attempts } => Some(attempts),
            _ => None,
        }
    }
}

impl fmt::Display for MusicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MusicError::Unavailable { attempts } if attempts.is_empty() => {
                write!(f, "operation failed after retries at all replicas")
            }
            MusicError::Unavailable { attempts } => match attempts.last() {
                Some(e) => write!(
                    f,
                    "operation failed after retries at all replicas ({attempts}): {e}"
                ),
                None => write!(
                    f,
                    "operation failed after retries at all replicas ({attempts})"
                ),
            },
            MusicError::NoLongerHolder => write!(f, "you are no longer the lock holder"),
            MusicError::Expired => write!(f, "critical section exceeded its maximum duration"),
            MusicError::NoReplicas => write!(f, "a client needs at least one replica"),
            MusicError::EmptyKeySet => write!(f, "a multi-key section needs at least one key"),
            MusicError::NotInSection => write!(f, "key is not part of this critical section"),
            MusicError::Overloaded { retry_after } => write!(
                f,
                "lock queue is at its admission bound; retry after {} µs",
                retry_after.as_micros()
            ),
        }
    }
}

impl std::error::Error for MusicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MusicError::Unavailable { attempts } => {
                attempts.last_ref().map(|e| e as &dyn std::error::Error)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_error_wraps_store_error() {
        let e: CriticalError = StoreError::Unavailable.into();
        assert_eq!(e, CriticalError::Store(StoreError::Unavailable));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn displays_are_prose() {
        assert!(AcquireOutcome::Acquired == AcquireOutcome::Acquired);
        assert!(MusicError::NoLongerHolder.to_string().contains("no longer"));
        assert!(CriticalError::Expired
            .to_string()
            .contains("maximum duration"));
        assert!(MusicError::NotInSection.to_string().contains("not part"));
        let overloaded = MusicError::Overloaded {
            retry_after: SimDuration::from_micros(2_500),
        };
        assert!(overloaded.to_string().contains("admission bound"));
        assert!(overloaded.to_string().contains("2500"));
        assert!(MusicError::EmptyKeySet.to_string().contains("one key"));
        assert!(MusicError::NoReplicas.to_string().contains("one replica"));
    }

    #[test]
    fn unavailable_carries_the_last_store_error() {
        let plain = MusicError::unavailable();
        assert_eq!(plain.store_cause(), None);
        assert!(std::error::Error::source(&plain).is_none());
        let mut trail = AttemptTrail::new();
        trail.note(StoreError::Contention);
        let e = MusicError::Unavailable { attempts: trail };
        assert_eq!(e.store_cause(), Some(StoreError::Contention));
        assert!(e.to_string().contains("contention"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn attempt_trail_records_every_cause_in_order() {
        let mut trail = AttemptTrail::new();
        trail.note(StoreError::Unavailable);
        trail.note_opaque();
        trail.note(StoreError::Contention);
        assert_eq!(trail.attempts(), 3);
        assert_eq!(
            trail.causes(),
            &[
                Some(StoreError::Unavailable),
                None,
                Some(StoreError::Contention)
            ]
        );
        assert_eq!(trail.last(), Some(StoreError::Contention));
        let e = MusicError::Unavailable { attempts: trail };
        let msg = e.to_string();
        assert!(msg.contains("3 attempts"), "{msg}");
        assert!(msg.contains("unavailable, staleView, contention"), "{msg}");
    }

    #[test]
    fn attempt_trail_caps_recording_but_keeps_counting() {
        let mut trail = AttemptTrail::new();
        for _ in 0..ATTEMPT_TRAIL_CAP + 3 {
            trail.note(StoreError::Unavailable);
        }
        trail.note(StoreError::Contention);
        assert_eq!(trail.attempts() as usize, ATTEMPT_TRAIL_CAP + 4);
        assert_eq!(trail.causes().len(), ATTEMPT_TRAIL_CAP);
        assert_eq!(
            trail.last(),
            Some(StoreError::Contention),
            "last cause survives the cap"
        );
        assert!(trail.to_string().contains("…"), "overflow is visible");
    }
}
