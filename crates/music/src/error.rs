//! MUSIC error and outcome types.

use std::fmt;

use music_quorumstore::StoreError;

/// Outcome of one `acquireLock` poll (§IV-A).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AcquireOutcome {
    /// The caller's lockRef is first in the queue: the critical section has
    /// been entered (and the data store synchronized if needed).
    Acquired,
    /// The lockRef is not first yet — or the local lock-store replica has
    /// not caught up. Poll again.
    NotYet,
    /// The lockRef is below the queue head: the lock was forcibly released.
    /// "youAreNoLongerLockHolder".
    NoLongerHolder,
}

/// Errors from critical operations (`criticalPut` / `criticalGet`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CriticalError {
    /// The lockRef is not (visibly) first in the queue yet; retry shortly.
    /// For an actual lockholder this means the serving replica's local
    /// lock-store view is stale.
    NotYetHolder,
    /// The lock was forcibly released; the caller must abandon this
    /// critical section (§III-A).
    NoLongerHolder,
    /// The critical section exceeded the maximum duration `T`; the
    /// operation is rejected to keep `v2s` sound (§VI).
    Expired,
    /// The back-end store nacked (no quorum). Retry, possibly at a
    /// different MUSIC replica.
    Store(StoreError),
}

impl fmt::Display for CriticalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CriticalError::NotYetHolder => write!(f, "lock reference is not first in the queue"),
            CriticalError::NoLongerHolder => write!(f, "you are no longer the lock holder"),
            CriticalError::Expired => write!(f, "critical section exceeded its maximum duration"),
            CriticalError::Store(e) => write!(f, "back-end store unavailable: {e}"),
        }
    }
}

impl std::error::Error for CriticalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CriticalError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CriticalError {
    fn from(e: StoreError) -> Self {
        CriticalError::Store(e)
    }
}

/// Client-level errors after the retry policy of §III-A has been applied.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MusicError {
    /// Retries across MUSIC replicas exhausted without success; the client
    /// must not attempt further operations on this key in this critical
    /// section. Carries the last underlying store error, when one was
    /// observed.
    Unavailable {
        /// The final [`StoreError`] before the retry budget ran out
        /// (`None` when the failure was not store-level, e.g. a holder
        /// view that never caught up).
        last: Option<StoreError>,
    },
    /// The client was told it is no longer the lock holder.
    NoLongerHolder,
    /// The critical section expired (duration bound `T`).
    Expired,
    /// A client was constructed with an empty replica list.
    NoReplicas,
    /// `enter_many` was called with an empty key set.
    EmptyKeySet,
    /// A multi-key operation named a key that is not part of the held
    /// section.
    NotInSection,
}

impl MusicError {
    /// An [`MusicError::Unavailable`] with no underlying store error.
    pub fn unavailable() -> Self {
        MusicError::Unavailable { last: None }
    }

    /// The last underlying store error, if this is
    /// [`MusicError::Unavailable`] with one attached.
    pub fn store_cause(&self) -> Option<StoreError> {
        match self {
            MusicError::Unavailable { last } => *last,
            _ => None,
        }
    }
}

impl fmt::Display for MusicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MusicError::Unavailable { last: None } => {
                write!(f, "operation failed after retries at all replicas")
            }
            MusicError::Unavailable { last: Some(e) } => {
                write!(f, "operation failed after retries at all replicas: {e}")
            }
            MusicError::NoLongerHolder => write!(f, "you are no longer the lock holder"),
            MusicError::Expired => write!(f, "critical section exceeded its maximum duration"),
            MusicError::NoReplicas => write!(f, "a client needs at least one replica"),
            MusicError::EmptyKeySet => write!(f, "a multi-key section needs at least one key"),
            MusicError::NotInSection => write!(f, "key is not part of this critical section"),
        }
    }
}

impl std::error::Error for MusicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MusicError::Unavailable { last: Some(e) } => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_error_wraps_store_error() {
        let e: CriticalError = StoreError::Unavailable.into();
        assert_eq!(e, CriticalError::Store(StoreError::Unavailable));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn displays_are_prose() {
        assert!(AcquireOutcome::Acquired == AcquireOutcome::Acquired);
        assert!(MusicError::NoLongerHolder.to_string().contains("no longer"));
        assert!(CriticalError::Expired
            .to_string()
            .contains("maximum duration"));
        assert!(MusicError::NotInSection.to_string().contains("not part"));
        assert!(MusicError::EmptyKeySet.to_string().contains("one key"));
        assert!(MusicError::NoReplicas.to_string().contains("one replica"));
    }

    #[test]
    fn unavailable_carries_the_last_store_error() {
        let plain = MusicError::unavailable();
        assert_eq!(plain.store_cause(), None);
        assert!(std::error::Error::source(&plain).is_none());
        let e = MusicError::Unavailable {
            last: Some(StoreError::Contention),
        };
        assert_eq!(e.store_cause(), Some(StoreError::Contention));
        assert!(e.to_string().contains("contention"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
