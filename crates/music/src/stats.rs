//! Per-operation latency instrumentation, used to regenerate the paper's
//! latency breakdown (Fig. 5(b)) and CDFs (Fig. 8).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use music_simnet::metrics::Histogram;
use music_simnet::time::SimDuration;

/// The instrumented MUSIC operations (and sub-operations).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// `createLockRef` — one LWT.
    CreateLockRef,
    /// The local peek inside `acquireLock` ('L' in Fig. 5(b)).
    AcquirePeek,
    /// The grant path of `acquireLock`: the synchFlag quorum read (plus
    /// synchronization when needed) ('Q' in Fig. 5(b)).
    AcquireGrant,
    /// `criticalPut` with a quorum write (MUSIC).
    CriticalPut,
    /// `criticalPut` with an LWT write ('P' in Fig. 5(b) — MSCP).
    MscpPut,
    /// `criticalGet` — quorum read.
    CriticalGet,
    /// `releaseLock` — one LWT.
    ReleaseLock,
    /// Lease fast re-entry: local revalidation + CL.ONE claim.
    LeaseReenter,
    /// Lock-free eventual `get`.
    EventualGet,
    /// Lock-free eventual `put` (the CassaEV baseline op).
    EventualPut,
    /// Internal `forcedRelease`.
    ForcedRelease,
    /// A whole critical section, entry to exit.
    CriticalSection,
}

impl OpKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [OpKind; 12] = [
        OpKind::CreateLockRef,
        OpKind::AcquirePeek,
        OpKind::AcquireGrant,
        OpKind::CriticalPut,
        OpKind::MscpPut,
        OpKind::CriticalGet,
        OpKind::ReleaseLock,
        OpKind::LeaseReenter,
        OpKind::EventualGet,
        OpKind::EventualPut,
        OpKind::ForcedRelease,
        OpKind::CriticalSection,
    ];
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpKind::CreateLockRef => "createLockRef",
            OpKind::AcquirePeek => "acquireLock/peek",
            OpKind::AcquireGrant => "acquireLock/grant",
            OpKind::CriticalPut => "criticalPut",
            OpKind::MscpPut => "criticalPut(LWT)",
            OpKind::CriticalGet => "criticalGet",
            OpKind::ReleaseLock => "releaseLock",
            OpKind::LeaseReenter => "leaseReenter",
            OpKind::EventualGet => "get",
            OpKind::EventualPut => "put",
            OpKind::ForcedRelease => "forcedRelease",
            OpKind::CriticalSection => "criticalSection",
        };
        f.write_str(s)
    }
}

/// Shared, cheaply clonable sink of per-operation latency samples.
///
/// # Examples
///
/// ```
/// use music::stats::{OpKind, OpStats};
/// use music_simnet::time::SimDuration;
///
/// let stats = OpStats::new();
/// stats.record(OpKind::CriticalPut, SimDuration::from_millis(93));
/// assert_eq!(stats.histogram(OpKind::CriticalPut).count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct OpStats {
    inner: Rc<RefCell<HashMap<OpKind, Histogram>>>,
}

impl OpStats {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, kind: OpKind, latency: SimDuration) {
        self.inner
            .borrow_mut()
            .entry(kind)
            .or_default()
            .record(latency);
    }

    /// Snapshot of the histogram for `kind` (empty if never recorded).
    pub fn histogram(&self, kind: OpKind) -> Histogram {
        self.inner.borrow().get(&kind).cloned().unwrap_or_default()
    }

    /// Total samples recorded for `kind`.
    pub fn count(&self, kind: OpKind) -> usize {
        self.inner.borrow().get(&kind).map_or(0, |h| h.count())
    }

    /// Clears all recorded samples (e.g. after a warm-up phase).
    pub fn reset(&self) {
        self.inner.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_reset() {
        let s = OpStats::new();
        s.record(OpKind::CreateLockRef, SimDuration::from_millis(220));
        s.record(OpKind::CreateLockRef, SimDuration::from_millis(230));
        assert_eq!(s.count(OpKind::CreateLockRef), 2);
        assert_eq!(
            s.histogram(OpKind::CreateLockRef).mean(),
            SimDuration::from_millis(225)
        );
        assert_eq!(s.count(OpKind::ReleaseLock), 0);
        s.reset();
        assert_eq!(s.count(OpKind::CreateLockRef), 0);
    }

    #[test]
    fn clones_share_the_sink() {
        let a = OpStats::new();
        let b = a.clone();
        b.record(OpKind::EventualPut, SimDuration::from_micros(10));
        assert_eq!(a.count(OpKind::EventualPut), 1);
    }

    #[test]
    fn display_names_match_paper_vocabulary() {
        assert_eq!(OpKind::CreateLockRef.to_string(), "createLockRef");
        assert_eq!(OpKind::MscpPut.to_string(), "criticalPut(LWT)");
        assert_eq!(OpKind::LeaseReenter.to_string(), "leaseReenter");
        assert_eq!(OpKind::ALL.len(), 12);
    }
}
