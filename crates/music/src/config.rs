//! MUSIC configuration knobs.

use music_simnet::time::SimDuration;

use crate::contention::ContentionKnobs;

/// How `criticalPut` reaches the data store — the paper's MUSIC-vs-MSCP
/// axis (§VIII-b).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum PutMode {
    /// Quorum write (1 WAN RTT) — MUSIC proper.
    #[default]
    Quorum,
    /// Sequentially consistent LWT write (4 WAN RTTs) — the MSCP baseline,
    /// "a write in a MUSIC critical section using a SC LWT put rather than
    /// a quorum put".
    Lwt,
}

/// How `acquireLock`/critical guards read the lock queue head — an
/// ablation knob for the paper's design choice (§IV-A): the peek is a
/// *local* read precisely because clients poll it many times per critical
/// section.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum PeekMode {
    /// Eventual read of the closest lock-store replica (the paper's
    /// design; intra-site round trip).
    #[default]
    Local,
    /// Quorum read (one WAN round trip per poll) — what the design avoids;
    /// used by the `ablation` bench to quantify the saving.
    Quorum,
}

/// How a [`crate::client::CriticalSection`] issues its `criticalPut`s.
///
/// Entry consistency only requires a holder's writes to be visible to the
/// *next* holder, so intra-section writes need not each wait for their
/// quorum ack — they only have to be acknowledged by the time the lock is
/// handed off. [`WriteMode::Pipelined`] exploits that: puts are issued
/// asynchronously with a bounded in-flight window, and `release` /
/// `criticalGet` / multi-key crossings act as flush barriers.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum WriteMode {
    /// Every `put` awaits its quorum ack before returning (the paper's
    /// behaviour; one WAN RTT per put).
    #[default]
    Sync,
    /// `put`s return once issued; at most `window` quorum writes are in
    /// flight at a time. A window of 1 degenerates to `Sync` order with
    /// deferred error reporting.
    Pipelined {
        /// Maximum quorum writes in flight per critical section.
        window: usize,
    },
}

impl WriteMode {
    /// The in-flight window this mode allows (1 for [`WriteMode::Sync`]).
    pub fn window(self) -> usize {
        match self {
            WriteMode::Sync => 1,
            WriteMode::Pipelined { window } => window.max(1),
        }
    }

    /// Whether puts are issued asynchronously.
    pub fn is_pipelined(self) -> bool {
        matches!(self, WriteMode::Pipelined { .. })
    }
}

/// Tunables of a MUSIC deployment.
#[derive(Clone, Debug)]
pub struct MusicConfig {
    /// `T`: the maximum duration of one critical section; bounds the time
    /// component of `v2s` and lets replicas reject expired holders (§VI).
    pub t_max: SimDuration,
    /// `δ`: how far above `v2s(lockRef, 0)` a `forcedRelease` stamps the
    /// `synchFlag` (1 µs in the paper's production deployment, §IV-B).
    pub delta: SimDuration,
    /// Client-side polling interval while waiting in `acquireLock`.
    pub acquire_poll: SimDuration,
    /// How many times a client retries a nacked operation (across MUSIC
    /// replicas) before giving up, per the failure semantics of §III-A.
    pub client_retries: u32,
    /// How long a queue head may sit unchanged before a MUSIC replica's
    /// failure detector presumes the holder dead and forcibly releases the
    /// lock. Deliberately imperfect: a slow-but-alive holder will be
    /// preempted (false failure detection, §IV-B).
    pub failure_timeout: SimDuration,
    /// Consecutive failures at one replica before the client's circuit
    /// breaker opens and fail-over skips that replica outright.
    pub breaker_threshold: u32,
    /// How long an open breaker quarantines a replica before admitting a
    /// probationary half-open probe.
    pub breaker_cooldown: SimDuration,
    /// How `criticalPut` writes the data store (MUSIC vs. MSCP).
    pub put_mode: PutMode,
    /// How lock-queue heads are peeked (local vs. quorum; ablation).
    pub peek_mode: PeekMode,
    /// How critical sections issue their puts (sync vs. pipelined).
    pub write_mode: WriteMode,
    /// When set, clean releases retain a *lease* of this duration: the
    /// release LWT pre-mints the next lock reference for the departing
    /// client iff nothing is queued behind it, and a re-entry within the
    /// window skips `createLockRef` + the grant's quorum read entirely
    /// (0 extra WAN RTTs). `None` (the default) disables leasing and
    /// preserves the paper's exact protocol.
    pub lease_window: Option<SimDuration>,
    /// `ε`: the clock-uncertainty bound every time-based lease decision
    /// must absorb. A lease is claimed only while `local_now + ε < expiry`
    /// and revoked only once `local_now − ε > expiry`
    /// ([`crate::timestamp::lease_claimable`] /
    /// [`crate::timestamp::lease_breakable`]), so as long as every node's
    /// clock skew stays within ε the fast path is drift-safe; skew beyond
    /// ε is the documented unsafe region (DESIGN.md §8). `ZERO` (the
    /// default) reproduces the pre-drift strict comparisons exactly.
    pub clock_epsilon: SimDuration,
    /// The contention-adaptive locking controller
    /// ([`crate::contention`]): per-key spin-then-queue strategy
    /// switching, enqueue combining, lease-window auto-tuning, admission
    /// control, and the anti-starvation lease-suspension rule. Disabled
    /// by default — a default config behaves exactly like the
    /// pre-adaptive protocol.
    pub contention: ContentionKnobs,
}

impl Default for MusicConfig {
    fn default() -> Self {
        MusicConfig {
            t_max: SimDuration::from_secs(600),
            delta: SimDuration::from_micros(1),
            acquire_poll: SimDuration::from_millis(2),
            client_retries: 8,
            failure_timeout: SimDuration::from_secs(30),
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::from_secs(1),
            put_mode: PutMode::Quorum,
            peek_mode: PeekMode::Local,
            write_mode: WriteMode::Sync,
            lease_window: None,
            clock_epsilon: SimDuration::ZERO,
            contention: ContentionKnobs::default(),
        }
    }
}

impl MusicConfig {
    /// Starts a [`MusicConfigBuilder`] seeded with the defaults — the one
    /// entry point for assembling a config (the accreted one-off
    /// constructors `mscp`/`pipelined`/`leased` are deprecated shims over
    /// it since 0.6.0).
    pub fn builder() -> MusicConfigBuilder {
        MusicConfigBuilder {
            cfg: MusicConfig::default(),
        }
    }

    /// A config with the MSCP baseline's LWT critical puts.
    #[deprecated(
        since = "0.6.0",
        note = "use MusicConfig::builder().put_mode(PutMode::Lwt).build()"
    )]
    pub fn mscp() -> Self {
        Self::builder().put_mode(PutMode::Lwt).build()
    }

    /// A config whose critical sections pipeline their puts with the given
    /// in-flight window.
    #[deprecated(
        since = "0.6.0",
        note = "use MusicConfig::builder().write_mode(WriteMode::Pipelined { window }).build()"
    )]
    pub fn pipelined(window: usize) -> Self {
        Self::builder()
            .write_mode(WriteMode::Pipelined { window })
            .build()
    }

    /// A config whose clean releases retain a lease of duration `window`
    /// (the lease-cached fast re-entry path).
    #[deprecated(
        since = "0.6.0",
        note = "use MusicConfig::builder().lease_window(window).build()"
    )]
    pub fn leased(window: SimDuration) -> Self {
        Self::builder().lease_window(window).build()
    }
}

/// Fluent builder for [`MusicConfig`], seeded with the defaults by
/// [`MusicConfig::builder`]. Every knob has a setter; unset knobs keep
/// their default.
///
/// ```
/// use music::config::{MusicConfig, PutMode, WriteMode};
/// use music_simnet::time::SimDuration;
///
/// let cfg = MusicConfig::builder()
///     .put_mode(PutMode::Lwt)
///     .write_mode(WriteMode::Pipelined { window: 8 })
///     .lease_window(SimDuration::from_secs(5))
///     .build();
/// assert_eq!(cfg.put_mode, PutMode::Lwt);
/// ```
#[derive(Clone, Debug)]
pub struct MusicConfigBuilder {
    cfg: MusicConfig,
}

impl MusicConfigBuilder {
    /// Sets `T`, the maximum duration of one critical section.
    #[must_use]
    pub fn t_max(mut self, t_max: SimDuration) -> Self {
        self.cfg.t_max = t_max;
        self
    }

    /// Sets `δ`, the `forcedRelease` synch-flag stamp offset.
    #[must_use]
    pub fn delta(mut self, delta: SimDuration) -> Self {
        self.cfg.delta = delta;
        self
    }

    /// Sets the `acquireLock` polling interval.
    #[must_use]
    pub fn acquire_poll(mut self, poll: SimDuration) -> Self {
        self.cfg.acquire_poll = poll;
        self
    }

    /// Sets the cross-replica client retry budget.
    #[must_use]
    pub fn client_retries(mut self, retries: u32) -> Self {
        self.cfg.client_retries = retries;
        self
    }

    /// Sets the failure detector's presumed-dead timeout.
    #[must_use]
    pub fn failure_timeout(mut self, timeout: SimDuration) -> Self {
        self.cfg.failure_timeout = timeout;
        self
    }

    /// Sets the circuit-breaker consecutive-failure threshold.
    #[must_use]
    pub fn breaker_threshold(mut self, threshold: u32) -> Self {
        self.cfg.breaker_threshold = threshold;
        self
    }

    /// Sets the circuit-breaker quarantine cooldown.
    #[must_use]
    pub fn breaker_cooldown(mut self, cooldown: SimDuration) -> Self {
        self.cfg.breaker_cooldown = cooldown;
        self
    }

    /// Sets how `criticalPut` writes the data store (MUSIC vs. MSCP).
    #[must_use]
    pub fn put_mode(mut self, mode: PutMode) -> Self {
        self.cfg.put_mode = mode;
        self
    }

    /// Sets how lock-queue heads are peeked (local vs. quorum).
    #[must_use]
    pub fn peek_mode(mut self, mode: PeekMode) -> Self {
        self.cfg.peek_mode = mode;
        self
    }

    /// Sets how critical sections issue their puts (sync vs. pipelined).
    #[must_use]
    pub fn write_mode(mut self, mode: WriteMode) -> Self {
        self.cfg.write_mode = mode;
        self
    }

    /// Enables lease retention on clean releases with the given window.
    #[must_use]
    pub fn lease_window(mut self, window: SimDuration) -> Self {
        self.cfg.lease_window = Some(window);
        self
    }

    /// Disables lease retention (the default; named for symmetry so a
    /// builder chain can override an earlier [`Self::lease_window`]).
    #[must_use]
    pub fn no_lease(mut self) -> Self {
        self.cfg.lease_window = None;
        self
    }

    /// Sets `ε`, the clock-uncertainty bound for lease claim/break and
    /// watchdog revocation decisions.
    #[must_use]
    pub fn clock_epsilon(mut self, epsilon: SimDuration) -> Self {
        self.cfg.clock_epsilon = epsilon;
        self
    }

    /// Installs the contention-adaptive locking knobs (validated at
    /// [`Self::build`]).
    #[must_use]
    pub fn contention(mut self, knobs: ContentionKnobs) -> Self {
        self.cfg.contention = knobs;
        self
    }

    /// Enables the contention controller with its default thresholds.
    #[must_use]
    pub fn adaptive(mut self) -> Self {
        self.cfg.contention = ContentionKnobs::adaptive();
        self
    }

    /// Finishes the chain.
    ///
    /// # Panics
    ///
    /// Panics when enabled contention knobs are inconsistent (inverted
    /// hysteresis thresholds or an inverted lease clamp).
    pub fn build(self) -> MusicConfig {
        let mut cfg = self.cfg;
        cfg.contention = cfg.contention.validate();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MusicConfig::default();
        assert!(c.delta < c.t_max);
        assert!(c.acquire_poll < c.failure_timeout);
        assert!(c.breaker_threshold >= 1);
        assert!(c.breaker_cooldown < c.failure_timeout);
        assert_eq!(c.put_mode, PutMode::Quorum);
        let mscp = MusicConfig::builder().put_mode(PutMode::Lwt).build();
        assert_eq!(mscp.put_mode, PutMode::Lwt);
        assert_eq!(c.write_mode, WriteMode::Sync);
        assert_eq!(c.lease_window, None, "leasing is opt-in");
        let leased = MusicConfig::builder()
            .lease_window(SimDuration::from_secs(5))
            .build();
        assert_eq!(leased.lease_window, Some(SimDuration::from_secs(5)));
        assert!(leased.lease_window.unwrap() < leased.failure_timeout);
        assert_eq!(
            c.clock_epsilon,
            SimDuration::ZERO,
            "ε defaults to zero: strict pre-drift comparisons"
        );
        let eps = MusicConfig::builder()
            .clock_epsilon(SimDuration::from_millis(2))
            .build();
        assert_eq!(eps.clock_epsilon, SimDuration::from_millis(2));
        assert!(eps.clock_epsilon < eps.lease_window.unwrap_or(eps.failure_timeout));
        assert!(
            !c.contention.enabled,
            "contention adaptation is opt-in: default config is the pre-adaptive protocol"
        );
        let adaptive = MusicConfig::builder().adaptive().build();
        assert!(adaptive.contention.enabled);
        assert!(adaptive.contention.hot_exit_us < adaptive.contention.hot_enter_us);
    }

    #[test]
    fn write_mode_windows_are_positive() {
        assert_eq!(WriteMode::Sync.window(), 1);
        assert_eq!(WriteMode::Pipelined { window: 16 }.window(), 16);
        assert_eq!(WriteMode::Pipelined { window: 0 }.window(), 1);
        let pipelined = MusicConfig::builder()
            .write_mode(WriteMode::Pipelined { window: 8 })
            .build();
        assert!(pipelined.write_mode.is_pipelined());
        assert!(!WriteMode::Sync.is_pipelined());
    }

    /// The deprecated one-off constructors must stay exact shims over the
    /// builder until they are removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_builder() {
        assert_eq!(
            MusicConfig::mscp().put_mode,
            MusicConfig::builder()
                .put_mode(PutMode::Lwt)
                .build()
                .put_mode
        );
        assert_eq!(
            MusicConfig::pipelined(8).write_mode,
            WriteMode::Pipelined { window: 8 }
        );
        assert_eq!(
            MusicConfig::leased(SimDuration::from_secs(5)).lease_window,
            Some(SimDuration::from_secs(5))
        );
        let chained = MusicConfig::builder()
            .lease_window(SimDuration::from_secs(5))
            .no_lease()
            .build();
        assert_eq!(chained.lease_window, None);
    }
}
