//! MUSIC configuration knobs.

use music_simnet::time::SimDuration;

/// How `criticalPut` reaches the data store — the paper's MUSIC-vs-MSCP
/// axis (§VIII-b).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum PutMode {
    /// Quorum write (1 WAN RTT) — MUSIC proper.
    #[default]
    Quorum,
    /// Sequentially consistent LWT write (4 WAN RTTs) — the MSCP baseline,
    /// "a write in a MUSIC critical section using a SC LWT put rather than
    /// a quorum put".
    Lwt,
}

/// How `acquireLock`/critical guards read the lock queue head — an
/// ablation knob for the paper's design choice (§IV-A): the peek is a
/// *local* read precisely because clients poll it many times per critical
/// section.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum PeekMode {
    /// Eventual read of the closest lock-store replica (the paper's
    /// design; intra-site round trip).
    #[default]
    Local,
    /// Quorum read (one WAN round trip per poll) — what the design avoids;
    /// used by the `ablation` bench to quantify the saving.
    Quorum,
}

/// How a [`crate::client::CriticalSection`] issues its `criticalPut`s.
///
/// Entry consistency only requires a holder's writes to be visible to the
/// *next* holder, so intra-section writes need not each wait for their
/// quorum ack — they only have to be acknowledged by the time the lock is
/// handed off. [`WriteMode::Pipelined`] exploits that: puts are issued
/// asynchronously with a bounded in-flight window, and `release` /
/// `criticalGet` / multi-key crossings act as flush barriers.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum WriteMode {
    /// Every `put` awaits its quorum ack before returning (the paper's
    /// behaviour; one WAN RTT per put).
    #[default]
    Sync,
    /// `put`s return once issued; at most `window` quorum writes are in
    /// flight at a time. A window of 1 degenerates to `Sync` order with
    /// deferred error reporting.
    Pipelined {
        /// Maximum quorum writes in flight per critical section.
        window: usize,
    },
}

impl WriteMode {
    /// The in-flight window this mode allows (1 for [`WriteMode::Sync`]).
    pub fn window(self) -> usize {
        match self {
            WriteMode::Sync => 1,
            WriteMode::Pipelined { window } => window.max(1),
        }
    }

    /// Whether puts are issued asynchronously.
    pub fn is_pipelined(self) -> bool {
        matches!(self, WriteMode::Pipelined { .. })
    }
}

/// Tunables of a MUSIC deployment.
#[derive(Clone, Debug)]
pub struct MusicConfig {
    /// `T`: the maximum duration of one critical section; bounds the time
    /// component of `v2s` and lets replicas reject expired holders (§VI).
    pub t_max: SimDuration,
    /// `δ`: how far above `v2s(lockRef, 0)` a `forcedRelease` stamps the
    /// `synchFlag` (1 µs in the paper's production deployment, §IV-B).
    pub delta: SimDuration,
    /// Client-side polling interval while waiting in `acquireLock`.
    pub acquire_poll: SimDuration,
    /// How many times a client retries a nacked operation (across MUSIC
    /// replicas) before giving up, per the failure semantics of §III-A.
    pub client_retries: u32,
    /// How long a queue head may sit unchanged before a MUSIC replica's
    /// failure detector presumes the holder dead and forcibly releases the
    /// lock. Deliberately imperfect: a slow-but-alive holder will be
    /// preempted (false failure detection, §IV-B).
    pub failure_timeout: SimDuration,
    /// Consecutive failures at one replica before the client's circuit
    /// breaker opens and fail-over skips that replica outright.
    pub breaker_threshold: u32,
    /// How long an open breaker quarantines a replica before admitting a
    /// probationary half-open probe.
    pub breaker_cooldown: SimDuration,
    /// How `criticalPut` writes the data store (MUSIC vs. MSCP).
    pub put_mode: PutMode,
    /// How lock-queue heads are peeked (local vs. quorum; ablation).
    pub peek_mode: PeekMode,
    /// How critical sections issue their puts (sync vs. pipelined).
    pub write_mode: WriteMode,
    /// When set, clean releases retain a *lease* of this duration: the
    /// release LWT pre-mints the next lock reference for the departing
    /// client iff nothing is queued behind it, and a re-entry within the
    /// window skips `createLockRef` + the grant's quorum read entirely
    /// (0 extra WAN RTTs). `None` (the default) disables leasing and
    /// preserves the paper's exact protocol.
    pub lease_window: Option<SimDuration>,
}

impl Default for MusicConfig {
    fn default() -> Self {
        MusicConfig {
            t_max: SimDuration::from_secs(600),
            delta: SimDuration::from_micros(1),
            acquire_poll: SimDuration::from_millis(2),
            client_retries: 8,
            failure_timeout: SimDuration::from_secs(30),
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::from_secs(1),
            put_mode: PutMode::Quorum,
            peek_mode: PeekMode::Local,
            write_mode: WriteMode::Sync,
            lease_window: None,
        }
    }
}

impl MusicConfig {
    /// A config with the MSCP baseline's LWT critical puts.
    pub fn mscp() -> Self {
        MusicConfig {
            put_mode: PutMode::Lwt,
            ..Self::default()
        }
    }

    /// A config whose critical sections pipeline their puts with the given
    /// in-flight window.
    pub fn pipelined(window: usize) -> Self {
        MusicConfig {
            write_mode: WriteMode::Pipelined { window },
            ..Self::default()
        }
    }

    /// A config whose clean releases retain a lease of duration `window`
    /// (the lease-cached fast re-entry path).
    pub fn leased(window: SimDuration) -> Self {
        MusicConfig {
            lease_window: Some(window),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MusicConfig::default();
        assert!(c.delta < c.t_max);
        assert!(c.acquire_poll < c.failure_timeout);
        assert!(c.breaker_threshold >= 1);
        assert!(c.breaker_cooldown < c.failure_timeout);
        assert_eq!(c.put_mode, PutMode::Quorum);
        assert_eq!(MusicConfig::mscp().put_mode, PutMode::Lwt);
        assert_eq!(c.write_mode, WriteMode::Sync);
        assert_eq!(c.lease_window, None, "leasing is opt-in");
        let leased = MusicConfig::leased(SimDuration::from_secs(5));
        assert_eq!(leased.lease_window, Some(SimDuration::from_secs(5)));
        assert!(leased.lease_window.unwrap() < leased.failure_timeout);
    }

    #[test]
    fn write_mode_windows_are_positive() {
        assert_eq!(WriteMode::Sync.window(), 1);
        assert_eq!(WriteMode::Pipelined { window: 16 }.window(), 16);
        assert_eq!(WriteMode::Pipelined { window: 0 }.window(), 1);
        assert!(MusicConfig::pipelined(8).write_mode.is_pipelined());
        assert!(!WriteMode::Sync.is_pipelined());
    }
}
