//! Real-socket deployment wiring for the `music-node` / `music-load`
//! binaries.
//!
//! A MUSIC replica is *two* replicated tables — the eventually consistent
//! data store and the sequentially consistent lock store — served by the
//! same set of storage nodes. Over the simulated network each table gets
//! its own `Network` port map; over TCP we instead multiplex both stores
//! onto **one socket per peer** by prefixing every request frame with a
//! single store-tag byte:
//!
//! * [`STORE_DATA`] (`0`) — the frame body is a
//!   `StoreReq<DataRow>` for the data table;
//! * [`STORE_LOCK`] (`1`) — the frame body is a
//!   `StoreReq<LockPartition>` for the lock table.
//!
//! [`TaggedTransport`] adds the byte on the client side;
//! [`serve_node_frame`] strips it on the server side and dispatches to the
//! right [`TableReplica`]. Because [`RemoteTable`]'s runtime *is* its
//! transport (`TableApi::Rt = T`), tagging also solves a type-level
//! problem: both stores' coordinators end up with the same runtime type
//! `TaggedTransport<TcpTransport>`, which is what
//! [`MusicReplica`](crate::MusicReplica)`<RT, D, L>` requires
//! (`D::Rt = L::Rt = RT`).
//!
//! The rest of the module is the small amount of config plumbing the
//! binaries share: a TOML-subset config-file parser (`key = value` lines),
//! a `--peers "id=addr,id=addr"` list parser, and [`remote_replica`] /
//! [`remote_client`] which assemble the full client stack over sockets.

use std::collections::HashMap;
use std::net::SocketAddr;

use music_lockstore::{LockPartition, LockStore};
use music_quorumstore::{serve_frame, DataRow, RemoteTable, TableConfig, TableReplica};
use music_runtime::{NativeRuntime, RequestFuture, Runtime, TcpTransport, Transport};
use music_simnet::net::NodeId;
use music_simnet::time::{SimDuration, SimTime};
use music_telemetry::Recorder;

use crate::config::MusicConfig;
use crate::error::MusicError;
use crate::replica::MusicReplica;
use crate::stats::OpStats;
use crate::MusicClient;

/// Store tag for data-table frames.
pub const STORE_DATA: u8 = 0;
/// Store tag for lock-table frames.
pub const STORE_LOCK: u8 = 1;

/// Coordinator node ids handed to load clients start here: well above any
/// plausible storage-node id, and below the `2^20` ballot-proposer ceiling
/// of the quorum store's LWT path.
pub const CLIENT_ID_BASE: u32 = 1_000_000;

/// Highest node id accepted anywhere (exclusive): LWT ballots pack the
/// proposer id into 20 bits.
pub const MAX_NODE_ID: u32 = 1 << 20;

/// A [`Transport`] adapter that prefixes every request payload with a
/// store-tag byte, so two logical stores share one physical connection.
///
/// As a [`Runtime`] it delegates verbatim to the inner transport.
pub struct TaggedTransport<T> {
    inner: T,
    tag: u8,
}

impl<T: Transport> TaggedTransport<T> {
    /// Wraps `inner` for data-table traffic ([`STORE_DATA`]).
    pub fn data(inner: T) -> Self {
        TaggedTransport {
            inner,
            tag: STORE_DATA,
        }
    }

    /// Wraps `inner` for lock-table traffic ([`STORE_LOCK`]).
    pub fn lock(inner: T) -> Self {
        TaggedTransport {
            inner,
            tag: STORE_LOCK,
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The tag byte this handle prefixes.
    pub fn tag(&self) -> u8 {
        self.tag
    }
}

impl<T: Clone> Clone for TaggedTransport<T> {
    fn clone(&self) -> Self {
        TaggedTransport {
            inner: self.inner.clone(),
            tag: self.tag,
        }
    }
}

impl<T> std::fmt::Debug for TaggedTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaggedTransport")
            .field("tag", &self.tag)
            .finish_non_exhaustive()
    }
}

impl<T: Runtime> Runtime for TaggedTransport<T> {
    type Sleep = T::Sleep;
    type JoinHandle<U: 'static> = T::JoinHandle<U>;

    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn sleep(&self, dur: SimDuration) -> Self::Sleep {
        self.inner.sleep(dur)
    }
    fn sleep_until(&self, deadline: SimTime) -> Self::Sleep {
        self.inner.sleep_until(deadline)
    }
    fn spawn<F>(&self, future: F) -> Self::JoinHandle<F::Output>
    where
        F: std::future::Future + 'static,
        F::Output: 'static,
    {
        self.inner.spawn(future)
    }
    fn trace(&self) -> u64 {
        self.inner.trace()
    }
    fn set_trace(&self, tag: u64) {
        self.inner.set_trace(tag)
    }
    fn span(&self) -> u64 {
        self.inner.span()
    }
    fn set_span(&self, tag: u64) {
        self.inner.set_span(tag)
    }
}

impl<T: Transport> Transport for TaggedTransport<T> {
    fn request(&self, from: NodeId, to: NodeId, payload: Vec<u8>) -> RequestFuture {
        let mut buf = Vec::with_capacity(payload.len() + 1);
        buf.push(self.tag);
        buf.extend_from_slice(&payload);
        self.inner.request(from, to, buf)
    }
}

/// Serves one multiplexed request frame: dispatches on the store-tag byte
/// to the matching table replica.
///
/// Unknown tags (and empty frames) yield an empty response, which the
/// coordinator's typed decode rejects and retries — the same containment
/// strategy [`serve_frame`] uses for undecodable bodies.
pub fn serve_node_frame(
    data: &mut TableReplica<DataRow>,
    locks: &mut TableReplica<LockPartition>,
    raw: &[u8],
) -> Vec<u8> {
    match raw.split_first() {
        Some((&STORE_DATA, body)) => serve_frame(data, body),
        Some((&STORE_LOCK, body)) => serve_frame(locks, body),
        _ => Vec::new(),
    }
}

/// The transport a socket-backed MUSIC client stack runs on.
pub type NodeTransport = TaggedTransport<TcpTransport>;
/// Socket-backed data-table coordinator.
pub type RemoteDataTable = RemoteTable<DataRow, NodeTransport>;
/// Socket-backed lock-table coordinator.
pub type RemoteLockTable = RemoteTable<LockPartition, NodeTransport>;
/// A MUSIC replica handle whose stores fan out over real sockets.
pub type RemoteMusicReplica = MusicReplica<NodeTransport, RemoteDataTable, RemoteLockTable>;
/// A MUSIC client over socket-backed replicas.
pub type RemoteMusicClient = MusicClient<NodeTransport, RemoteDataTable, RemoteLockTable>;

/// Builds a socket-backed [`MusicReplica`] coordinating the storage nodes
/// in `peers` (a sorted `(id, addr)` list, e.g. from [`parse_peers`]).
///
/// `coordinator` names this client in RPC envelopes, ballot proposers, and
/// lock tokens — it must be unique per client and below [`MAX_NODE_ID`]
/// (use [`CLIENT_ID_BASE`]` + i`).
///
/// # Panics
///
/// Panics if `coordinator >= MAX_NODE_ID`, if `peers` is empty, or if
/// `rf` is zero or exceeds `peers.len()`.
pub fn remote_replica(
    rt: &NativeRuntime,
    coordinator: u32,
    peers: &[(u32, SocketAddr)],
    rf: usize,
    cfg: MusicConfig,
    recorder: Recorder,
) -> RemoteMusicReplica {
    assert!(
        coordinator < MAX_NODE_ID,
        "coordinator id {coordinator} exceeds the 20-bit ballot-proposer ceiling"
    );
    let addrs: HashMap<u32, SocketAddr> = peers.iter().copied().collect();
    let tcp = TcpTransport::new(rt.clone(), addrs);
    let data_t = TaggedTransport::data(tcp.clone());
    let lock_t = TaggedTransport::lock(tcp);
    let nodes: Vec<NodeId> = peers.iter().map(|&(id, _)| NodeId(id)).collect();
    let tcfg = TableConfig::default();
    let data = RemoteTable::new(
        data_t.clone(),
        nodes.clone(),
        rf,
        tcfg.clone(),
        recorder.clone(),
    );
    let locks = LockStore::from_table(RemoteTable::new(lock_t, nodes, rf, tcfg, recorder.clone()));
    // Site 0: the demo cluster is single-site; locality-based peeks are a
    // sim-experiment concern.
    MusicReplica::with_runtime(
        NodeId(coordinator),
        data_t,
        0,
        recorder,
        locks,
        data,
        cfg,
        OpStats::new(),
    )
}

/// Builds a single-replica [`MusicClient`] over [`remote_replica`].
///
/// # Errors
///
/// Propagates [`MusicError`] from client construction.
pub fn remote_client(
    rt: &NativeRuntime,
    coordinator: u32,
    peers: &[(u32, SocketAddr)],
    rf: usize,
    cfg: MusicConfig,
    recorder: Recorder,
) -> Result<RemoteMusicClient, MusicError> {
    let replica = remote_replica(rt, coordinator, peers, rf, cfg, recorder);
    let transport = replica.runtime().clone();
    MusicClient::new(transport, vec![replica])
}

/// Parses a `--peers` list: comma-separated `id=host:port` entries, e.g.
/// `1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103`.
///
/// Entries are returned sorted by id; duplicate or out-of-range ids are
/// rejected.
///
/// # Errors
///
/// Returns a human-readable message naming the offending entry.
pub fn parse_peers(s: &str) -> Result<Vec<(u32, SocketAddr)>, String> {
    let mut peers = Vec::new();
    for entry in s.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (id, addr) = entry
            .split_once('=')
            .ok_or_else(|| format!("peer entry `{entry}` is not `id=host:port`"))?;
        let id: u32 = id
            .trim()
            .parse()
            .map_err(|_| format!("peer id `{id}` is not a u32"))?;
        if id >= MAX_NODE_ID {
            return Err(format!("peer id {id} exceeds the 20-bit node-id ceiling"));
        }
        let addr: SocketAddr = addr
            .trim()
            .parse()
            .map_err(|_| format!("peer address `{addr}` is not host:port"))?;
        if peers.iter().any(|&(other, _)| other == id) {
            return Err(format!("duplicate peer id {id}"));
        }
        peers.push((id, addr));
    }
    if peers.is_empty() {
        return Err("peer list is empty".to_string());
    }
    peers.sort_by_key(|&(id, _)| id);
    Ok(peers)
}

/// Parses the TOML subset the binaries accept for `--config` files:
/// `key = value` lines, `#` comments, optional double quotes around
/// values. No sections, arrays, or escapes — the config surface is four
/// scalar keys.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_config_text(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("config line {}: expected `key = value`", idx + 1))?;
        let key = key.trim().to_string();
        let value = value.trim();
        let value = if let Some(rest) = value.strip_prefix('"') {
            let end = rest
                .find('"')
                .ok_or_else(|| format!("config line {}: unterminated quote", idx + 1))?;
            rest[..end].to_string()
        } else {
            let bare = value.split('#').next().unwrap_or("").trim();
            if bare.is_empty() {
                return Err(format!("config line {}: empty value", idx + 1));
            }
            bare.to_string()
        };
        out.push((key, value));
    }
    Ok(out)
}

/// Configuration for one `music-node` storage server, assembled from an
/// optional `--config` file plus flag overrides (flags win).
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's id (must appear in `peers` if `listen` is omitted).
    pub id: u32,
    /// Address to bind the frame server on.
    pub listen: SocketAddr,
    /// The full cluster membership, sorted by id.
    pub peers: Vec<(u32, SocketAddr)>,
    /// Replication factor (defaults to the full peer count).
    pub rf: usize,
}

impl NodeConfig {
    /// Parses `music-node` arguments: `--config PATH`, `--id N`,
    /// `--listen HOST:PORT`, `--peers LIST`, `--rf N`. The config file is
    /// applied first, then flags override. `listen` defaults to this
    /// node's own entry in `peers`.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message on unknown flags, unreadable config
    /// files, or missing required fields.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut id: Option<u32> = None;
        let mut listen: Option<SocketAddr> = None;
        let mut peers: Option<Vec<(u32, SocketAddr)>> = None;
        let mut rf: Option<usize> = None;

        let args: Vec<String> = args.into_iter().collect();
        // Pass 1: config file (so flags can override it regardless of
        // relative position on the command line).
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if flag == "--config" {
                let path = it.next().ok_or("--config needs a path")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read config `{path}`: {e}"))?;
                for (key, value) in parse_config_text(&text)? {
                    match key.as_str() {
                        "id" => id = Some(parse_num(&key, &value)?),
                        "listen" => listen = Some(parse_addr(&key, &value)?),
                        "peers" => peers = Some(parse_peers(&value)?),
                        "rf" => rf = Some(parse_num(&key, &value)?),
                        other => return Err(format!("unknown config key `{other}`")),
                    }
                }
            }
        }
        // Pass 2: flag overrides.
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut take = || {
                it.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--config" => {
                    take()?;
                }
                "--id" => id = Some(parse_num(flag, take()?)?),
                "--listen" => listen = Some(parse_addr(flag, take()?)?),
                "--peers" => peers = Some(parse_peers(take()?)?),
                "--rf" => rf = Some(parse_num(flag, take()?)?),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }

        let id = id.ok_or("missing `--id` (or `id` in the config file)")?;
        if id >= MAX_NODE_ID {
            return Err(format!("node id {id} exceeds the 20-bit node-id ceiling"));
        }
        let peers = peers.ok_or("missing `--peers` (or `peers` in the config file)")?;
        let listen = match listen {
            Some(a) => a,
            None => peers
                .iter()
                .find(|&&(pid, _)| pid == id)
                .map(|&(_, addr)| addr)
                .ok_or_else(|| {
                    format!("node {id} is not in the peer list and no --listen was given")
                })?,
        };
        let rf = rf.unwrap_or(peers.len());
        if rf == 0 || rf > peers.len() {
            return Err(format!("rf {rf} out of range for {} peers", peers.len()));
        }
        Ok(NodeConfig {
            id,
            listen,
            peers,
            rf,
        })
    }
}

/// Configuration for the `music-load` driver.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Storage-node membership, sorted by id.
    pub peers: Vec<(u32, SocketAddr)>,
    /// Replication factor (defaults to the full peer count).
    pub rf: usize,
    /// Total critical sections to complete across all clients.
    pub sections: u64,
    /// Number of concurrent client tasks.
    pub clients: u32,
    /// Number of distinct counter keys the sections contend over.
    pub keys: u32,
    /// Streaming-checker key sampling: `0` disables the online checker;
    /// `N >= 1` checks keys whose digest is divisible by `N` (so `1`
    /// checks every key) in O(live keys) memory as the load runs.
    pub online_sample: u64,
    /// Counter-key prefix (`counter` by default). Distinct prefixes give
    /// repeated passes against one cluster fresh, independent counters.
    pub key_prefix: String,
    /// Transient-failure retries per section for the *safe* operations
    /// (enter, get, release). Puts are never retried by the driver: a
    /// timed-out put may have landed, and blindly re-entering to redo it
    /// would double-increment the counter.
    pub retries: u32,
    /// Peek quorum lock-queue heads instead of reading the key's primary
    /// replica (`--peek quorum`). Local peeks pin each key to one store
    /// node; a load that must survive a node crash needs quorum peeks.
    pub peek_quorum: bool,
    /// Zipfian skew for key selection (`--zipf-theta F`). `0` keeps the
    /// default uniform round-robin; higher values concentrate sections on
    /// the low-numbered keys (θ=1.2 is the paper's hotspot setting).
    pub zipf_theta: f64,
    /// Flash-crowd mode (`--flash-crowd`): the middle half of every
    /// client's section quota targets key 0, converging all clients on
    /// one hot key at once. The driver enables the contention-adaptive
    /// controller so the crowd is absorbed (combining, admission guard)
    /// instead of livelocking the enqueue LWTs.
    pub flash_crowd: bool,
}

impl LoadConfig {
    /// Parses `music-load` arguments: `--peers LIST`, `--rf N`,
    /// `--sections N`, `--clients N`, `--keys N`, `--online-sample N`,
    /// `--key-prefix P`, `--retries N`, `--peek local|quorum`,
    /// `--zipf-theta F`, `--flash-crowd`.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message on unknown flags or bad values.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut peers: Option<Vec<(u32, SocketAddr)>> = None;
        let mut rf: Option<usize> = None;
        let mut sections: u64 = 100;
        let mut clients: u32 = 3;
        let mut keys: u32 = 4;
        let mut online_sample: u64 = 0;
        let mut key_prefix = String::from("counter");
        let mut retries: u32 = 0;
        let mut peek_quorum = false;
        let mut zipf_theta: f64 = 0.0;
        let mut flash_crowd = false;

        let args: Vec<String> = args.into_iter().collect();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut take = || {
                it.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--peers" => peers = Some(parse_peers(take()?)?),
                "--rf" => rf = Some(parse_num(flag, take()?)?),
                "--sections" => sections = parse_num(flag, take()?)?,
                "--clients" => clients = parse_num(flag, take()?)?,
                "--keys" => keys = parse_num(flag, take()?)?,
                "--online-sample" => online_sample = parse_num(flag, take()?)?,
                "--key-prefix" => key_prefix = take()?.to_string(),
                "--retries" => retries = parse_num(flag, take()?)?,
                "--zipf-theta" => zipf_theta = parse_num(flag, take()?)?,
                "--flash-crowd" => flash_crowd = true,
                "--peek" => {
                    peek_quorum = match take()? {
                        "local" => false,
                        "quorum" => true,
                        other => {
                            return Err(format!("`--peek` must be local or quorum, got `{other}`"))
                        }
                    }
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        let peers = peers.ok_or("missing `--peers`")?;
        let rf = rf.unwrap_or(peers.len());
        if rf == 0 || rf > peers.len() {
            return Err(format!("rf {rf} out of range for {} peers", peers.len()));
        }
        if sections == 0 || clients == 0 || keys == 0 {
            return Err("--sections, --clients, and --keys must be positive".to_string());
        }
        if key_prefix.is_empty() {
            return Err("--key-prefix must be non-empty".to_string());
        }
        if !zipf_theta.is_finite() || zipf_theta < 0.0 {
            return Err(format!(
                "--zipf-theta `{zipf_theta}` must be finite and >= 0"
            ));
        }
        Ok(LoadConfig {
            peers,
            rf,
            sections,
            clients,
            keys,
            online_sample,
            key_prefix,
            retries,
            peek_quorum,
            zipf_theta,
            flash_crowd,
        })
    }
}

fn parse_num<N: std::str::FromStr>(what: &str, value: &str) -> Result<N, String> {
    value
        .trim()
        .parse()
        .map_err(|_| format!("`{what}` value `{value}` is not a number"))
}

fn parse_addr(what: &str, value: &str) -> Result<SocketAddr, String> {
    value
        .trim()
        .parse()
        .map_err(|_| format!("`{what}` value `{value}` is not host:port"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peers_parse_sorted_and_validated() {
        let peers = parse_peers("3=127.0.0.1:7103, 1=127.0.0.1:7101,2=127.0.0.1:7102").unwrap();
        assert_eq!(
            peers.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(parse_peers("1=127.0.0.1:7101,1=127.0.0.1:7102").is_err());
        assert!(parse_peers("x=127.0.0.1:7101").is_err());
        assert!(parse_peers("1=not-an-addr").is_err());
        assert!(parse_peers("").is_err());
        assert!(parse_peers("1048576=127.0.0.1:7101").is_err());
    }

    #[test]
    fn config_text_subset() {
        let kv = parse_config_text(
            "# cluster\nid = 2\nlisten = \"127.0.0.1:7102\"  # quoted\nrf = 3 # trailing\n",
        )
        .unwrap();
        assert_eq!(
            kv,
            vec![
                ("id".to_string(), "2".to_string()),
                ("listen".to_string(), "127.0.0.1:7102".to_string()),
                ("rf".to_string(), "3".to_string()),
            ]
        );
        assert!(parse_config_text("id 2").is_err());
        assert!(parse_config_text("id = \"2").is_err());
        assert!(parse_config_text("id = # nothing").is_err());
    }

    #[test]
    fn node_args_flags_override_defaults() {
        let cfg = NodeConfig::from_args(
            [
                "--id",
                "2",
                "--peers",
                "1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(cfg.id, 2);
        assert_eq!(cfg.listen, "127.0.0.1:7102".parse().unwrap());
        assert_eq!(cfg.rf, 3);
        assert!(NodeConfig::from_args(["--id".to_string(), "1".to_string()]).is_err());
        assert!(NodeConfig::from_args(["--bogus".to_string()]).is_err());
    }

    #[test]
    fn load_args_defaults() {
        let cfg = LoadConfig::from_args(
            ["--peers", "1=127.0.0.1:7101", "--sections", "120"].map(String::from),
        )
        .unwrap();
        assert_eq!(cfg.sections, 120);
        assert_eq!(cfg.clients, 3);
        assert_eq!(cfg.keys, 4);
        assert_eq!(cfg.rf, 1);
        assert_eq!(cfg.online_sample, 0);
        assert_eq!(cfg.key_prefix, "counter");
        assert_eq!(cfg.retries, 0);
        assert!(!cfg.peek_quorum);
        assert_eq!(cfg.zipf_theta, 0.0);
        assert!(!cfg.flash_crowd);
    }

    #[test]
    fn load_args_contention_flags() {
        let cfg = LoadConfig::from_args(
            [
                "--peers",
                "1=127.0.0.1:7101",
                "--zipf-theta",
                "1.2",
                "--flash-crowd",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(cfg.zipf_theta, 1.2);
        assert!(cfg.flash_crowd);
        assert!(LoadConfig::from_args(
            ["--peers", "1=127.0.0.1:7101", "--zipf-theta", "-1"].map(String::from)
        )
        .is_err());
        assert!(LoadConfig::from_args(
            ["--peers", "1=127.0.0.1:7101", "--zipf-theta", "NaN"].map(String::from)
        )
        .is_err());
    }

    #[test]
    fn load_args_online_and_retry_flags() {
        let cfg = LoadConfig::from_args(
            [
                "--peers",
                "1=127.0.0.1:7101",
                "--online-sample",
                "2",
                "--key-prefix",
                "kill9",
                "--retries",
                "5",
                "--peek",
                "quorum",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(cfg.online_sample, 2);
        assert_eq!(cfg.key_prefix, "kill9");
        assert_eq!(cfg.retries, 5);
        assert!(cfg.peek_quorum);
        assert!(LoadConfig::from_args(
            ["--peers", "1=127.0.0.1:7101", "--peek", "eventual"].map(String::from)
        )
        .is_err());
        assert!(LoadConfig::from_args(
            ["--peers", "1=127.0.0.1:7101", "--key-prefix", ""].map(String::from)
        )
        .is_err());
    }

    #[test]
    fn unknown_store_tag_yields_empty_reply() {
        let mut data = TableReplica::<DataRow>::default();
        let mut locks = TableReplica::<LockPartition>::default();
        assert!(serve_node_frame(&mut data, &mut locks, &[]).is_empty());
        assert!(serve_node_frame(&mut data, &mut locks, &[9, 1, 2, 3]).is_empty());
        // A known tag with an undecodable body is contained the same way.
        assert!(serve_node_frame(&mut data, &mut locks, &[STORE_DATA, 0xFF]).is_empty());
        assert!(serve_node_frame(&mut data, &mut locks, &[STORE_LOCK, 0xFF]).is_empty());
    }
}
