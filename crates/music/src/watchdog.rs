//! The failure detector: time-out based preemption of presumed-failed
//! lockholders (§III-A "any MUSIC replica can preempt the lock from a
//! lockholder that appears to have failed, using time-outs for failure
//! detection").
//!
//! The detector is deliberately *imperfect*: it watches only the lock
//! store's observable state (queue head and grant time). A holder that is
//! alive but slow, partitioned, or stalled looks identical to a dead one
//! and will be preempted — the false-failure-detection case whose safety
//! the ECF semantics (and §IV-B) guarantee.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use music_lockstore::LockRef;
use music_simnet::time::{SimDuration, SimTime};

use crate::replica::MusicReplica;
use crate::timestamp::lease_breakable;

#[derive(Debug)]
struct Observation {
    head: LockRef,
    first_seen: SimTime,
    /// Whether the head had a start time when last observed. A lease claim
    /// (start time appearing on an unchanged head) is progress: it resets
    /// the staleness clock just like a head change does.
    started: bool,
}

/// A watchdog task bound to one MUSIC replica.
///
/// Tracks each watched key's queue head. A head is preempted
/// (`forcedRelease`) when it has not changed for `failure_timeout` —
/// whether it was granted and the holder stopped progressing, was granted
/// and expired, or was never granted at all (an *orphan* reference whose
/// client died before acquiring, §IV-B).
#[derive(Clone, Debug)]
pub struct Watchdog {
    replica: MusicReplica,
    interval: SimDuration,
    /// Keyed observations in key order, so that two keys becoming
    /// preemptable in the same scan are always preempted in the same
    /// order (replay determinism).
    watched: Rc<RefCell<BTreeMap<String, Observation>>>,
    running: Rc<std::cell::Cell<bool>>,
    preemptions: Rc<std::cell::Cell<u64>>,
    lease_revocations: Rc<std::cell::Cell<u64>>,
    drift_defers: Rc<std::cell::Cell<u64>>,
}

impl Watchdog {
    /// Creates a watchdog that scans every `interval`.
    pub fn new(replica: MusicReplica, interval: SimDuration) -> Self {
        Watchdog {
            replica,
            interval,
            watched: Rc::new(RefCell::new(BTreeMap::new())),
            running: Rc::new(std::cell::Cell::new(false)),
            preemptions: Rc::new(std::cell::Cell::new(0)),
            lease_revocations: Rc::new(std::cell::Cell::new(0)),
            drift_defers: Rc::new(std::cell::Cell::new(0)),
        }
    }

    /// Registers a key for failure monitoring.
    pub fn watch(&self, key: &str) {
        self.watched
            .borrow_mut()
            .entry(key.to_string())
            .or_insert(Observation {
                head: LockRef::NONE,
                first_seen: SimTime::ZERO,
                started: false,
            });
    }

    /// Stops the scan loop after its current iteration.
    pub fn stop(&self) {
        self.running.set(false);
    }

    /// Total forced releases issued by this watchdog (including lease
    /// revocations).
    pub fn preemptions(&self) -> u64 {
        self.preemptions.get()
    }

    /// How many of the forced releases revoked an expired, unclaimed lease.
    pub fn lease_revocations(&self) -> u64 {
        self.lease_revocations.get()
    }

    /// How many revocations were deferred because the lease deadline fell
    /// inside the configured clock-uncertainty margin ε: this node's clock
    /// read the lease as expired, but a clock running ε slower would not —
    /// so a drift-shifted holder may still legitimately claim it.
    pub fn drift_defers(&self) -> u64 {
        self.drift_defers.get()
    }

    /// Records one ε-deferred revocation (counter + telemetry).
    fn note_drift_defer(&self, key: &str, head: LockRef, now: SimTime, until: SimTime) {
        self.drift_defers.set(self.drift_defers.get() + 1);
        let rec = self.replica.recorder();
        if !rec.is_on() {
            return;
        }
        let node = self.replica.node().0;
        rec.count(
            music_telemetry::Scope::Node(node),
            "watchdog_drift_defers",
            1,
        );
        if rec.is_tracing() {
            let rt = self.replica.runtime();
            rec.record(
                rt.now().as_micros(),
                rt.trace(),
                node,
                music_telemetry::EventKind::LeaseDriftReject {
                    key: key.to_string(),
                    lock_ref: head.value(),
                    guard: "break",
                    now_us: now.as_micros(),
                    until_us: until.as_micros(),
                },
            );
        }
    }

    /// Spawns the periodic scan loop on the replica's simulation.
    pub fn spawn(&self) {
        if self.running.replace(true) {
            return; // already running
        }
        let this = self.clone();
        // The replica's runtime, not the network's: a drifted deployment
        // hands each replica a skewed clock, and the watchdog must judge
        // lease expiries on the same (local) clock its replica uses.
        let sim = this.replica.runtime().clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            while this.running.get() {
                this.scan_once().await;
                sim2.sleep(this.interval).await;
            }
        });
    }

    /// One scan over all watched keys (also callable directly for
    /// deterministic tests). Uses a single range scan of the local
    /// lock-store replica rather than one peek per key.
    ///
    /// Lease handling: an *unclaimed* leased head is not a stuck holder —
    /// it is a standing reservation, exempt from the staleness timeout
    /// until its deadline; once the deadline passes unclaimed, it is
    /// revoked immediately (same resynchronizing `forcedRelease` as a
    /// preemption). A *claimed* lease (start time set) is an ordinary
    /// holder, and the claim itself resets the staleness clock.
    pub async fn scan_once(&self) {
        let timeout = self.replica.config().failure_timeout;
        let eps = self.replica.config().clock_epsilon;
        let now = self.replica.runtime().now();
        let Ok(heads) = self.replica.locks().scan_heads(self.replica.node()).await else {
            return; // store unavailable; try next round
        };
        let head_of: std::collections::HashMap<String, (LockRef, music_lockstore::LockEntry)> =
            heads.into_iter().map(|(k, r, e)| (k, (r, e))).collect();
        let keys: Vec<String> = self.watched.borrow().keys().cloned().collect();
        for key in keys {
            let Some(&(head, entry)) = head_of.get(&key) else {
                // Queue currently empty: reset the observation but keep
                // watching — new references may arrive at any time.
                if let Some(obs) = self.watched.borrow_mut().get_mut(&key) {
                    obs.head = LockRef::NONE;
                    obs.first_seen = now;
                    obs.started = false;
                }
                continue;
            };
            let claimed = entry.start_time.is_some();
            let stale_since = {
                let mut watched = self.watched.borrow_mut();
                let obs = watched.entry(key.clone()).or_insert(Observation {
                    head: LockRef::NONE,
                    first_seen: now,
                    started: false,
                });
                if obs.head != head {
                    obs.head = head;
                    obs.first_seen = now;
                    obs.started = claimed;
                } else if claimed && !obs.started {
                    obs.started = true;
                    obs.first_seen = now;
                }
                obs.first_seen
            };
            let expired_lease = match (claimed, entry.lease_until) {
                // A standing, unclaimed lease: exempt from the staleness
                // timeout no matter how long it has sat at the head, and
                // revoked only once its deadline is more than ε past on
                // this node's clock (drift-safe break guard: a holder
                // whose clock runs up to ε slow may still legitimately
                // claim until then).
                (false, Some(until)) => {
                    if !lease_breakable(now, until, eps) {
                        if now >= until {
                            self.note_drift_defer(&key, head, now, until);
                        }
                        continue;
                    }
                    true
                }
                _ => false,
            };
            if expired_lease || now - stale_since >= timeout {
                if std::env::var("MUSIC_WATCHDOG_TRACE").is_ok() {
                    eprintln!(
                        "[watchdog] t={now} preempting {head} on {key} (stale since {stale_since})"
                    );
                }
                // Presumed failed (or orphaned, or an expired lease never
                // claimed): preempt. The release is safe even if the
                // holder is actually alive (ECF).
                if self.replica.forced_release(&key, head).await.is_ok() {
                    self.preemptions.set(self.preemptions.get() + 1);
                    if expired_lease {
                        self.lease_revocations.set(self.lease_revocations.get() + 1);
                    }
                    let rec = self.replica.recorder();
                    if rec.is_on() {
                        let node = self.replica.node().0;
                        let counter = if expired_lease {
                            "watchdog_lease_revocations"
                        } else {
                            "watchdog_preemptions"
                        };
                        rec.count(music_telemetry::Scope::Node(node), counter, 1);
                        if rec.is_tracing() {
                            let sim = self.replica.runtime();
                            rec.record(
                                sim.now().as_micros(),
                                sim.trace(),
                                node,
                                music_telemetry::EventKind::WatchdogPreempt {
                                    key: key.clone(),
                                    lock_ref: head.value(),
                                },
                            );
                        }
                    }
                    if let Some(obs) = self.watched.borrow_mut().get_mut(&key) {
                        obs.head = LockRef::NONE;
                        obs.first_seen = now;
                        obs.started = false;
                    }
                }
            }
        }
    }
}
