//! The client-side view of MUSIC: replica fail-over, retry policy, and the
//! ergonomic critical-section guard.
//!
//! Per §III-A, a client may use *any* non-failed MUSIC replica; when one
//! nacks (back-end quorum unreachable) the client retries the operation at
//! the next replica. [`MusicClient`] encodes exactly that policy, and
//! [`CriticalSection`] packages the Listing-1 pattern (create → poll
//! acquire → critical ops → release).

use bytes::Bytes;

use music_lockstore::LockRef;
use music_quorumstore::StoreError;
use music_simnet::executor::Sim;

use crate::error::{AcquireOutcome, CriticalError, MusicError};
use crate::replica::MusicReplica;
use crate::stats::OpKind;

/// A MUSIC client bound to an ordered list of replicas (closest first).
///
/// # Examples
///
/// See [`crate::system::MusicSystemBuilder`] for a runnable end-to-end
/// example.
#[derive(Clone, Debug)]
pub struct MusicClient {
    replicas: Vec<MusicReplica>,
    sim: Sim,
}

impl MusicClient {
    /// Creates a client that prefers `replicas[0]` and fails over in order.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(sim: Sim, replicas: Vec<MusicReplica>) -> Self {
        assert!(!replicas.is_empty(), "a client needs at least one replica");
        MusicClient { replicas, sim }
    }

    /// The replica currently preferred by this client.
    pub fn primary(&self) -> &MusicReplica {
        &self.replicas[0]
    }

    fn retries(&self) -> u32 {
        self.primary().config().client_retries
    }

    /// Records one replica fail-over: bumps the global counter and, when
    /// tracing, emits a `clientFailover` event under the current trace.
    fn note_failover(&self, op: &'static str, attempt: u32) {
        let rec = self.primary().recorder();
        if !rec.is_on() {
            return;
        }
        rec.count(music_telemetry::Scope::Global, "client_failovers", 1);
        if rec.is_tracing() {
            rec.record(
                self.sim.now().as_micros(),
                self.sim.trace(),
                self.primary().node().0,
                music_telemetry::EventKind::ClientFailover { op, attempt },
            );
        }
    }

    /// Runs `op` against replicas in preference order until one succeeds,
    /// up to the configured retry budget.
    async fn with_failover<T, F, Fut>(
        &self,
        op_name: &'static str,
        mut op: F,
    ) -> Result<T, MusicError>
    where
        F: FnMut(MusicReplica) -> Fut,
        Fut: std::future::Future<Output = Result<T, StoreError>>,
    {
        let budget = self.retries().max(1);
        for attempt in 0..budget {
            let replica = self.replicas[attempt as usize % self.replicas.len()].clone();
            match op(replica).await {
                Ok(v) => return Ok(v),
                Err(_) => {
                    self.note_failover(op_name, attempt + 1);
                    continue;
                }
            }
        }
        Err(MusicError::Unavailable)
    }

    /// `createLockRef` with fail-over.
    ///
    /// # Errors
    ///
    /// [`MusicError::Unavailable`] after the retry budget is exhausted.
    pub async fn create_lock_ref(&self, key: &str) -> Result<LockRef, MusicError> {
        self.with_failover("createLockRef", |r| {
            let key = key.to_string();
            async move { r.create_lock_ref(&key).await }
        })
        .await
    }

    /// Polls `acquireLock` (with the configured back-off) until the lock is
    /// granted or the reference is preempted.
    ///
    /// # Errors
    ///
    /// * [`MusicError::NoLongerHolder`] — the reference was forcibly
    ///   released before being granted.
    /// * [`MusicError::Unavailable`] — repeated nacks from every replica.
    pub async fn acquire_lock(&self, key: &str, lock_ref: LockRef) -> Result<(), MusicError> {
        let base_poll = self.primary().config().acquire_poll;
        // "Standard back-off mechanisms can be used to alleviate the cost
        // of polling" (§III-A): exponential, capped at 64× the base.
        let poll_cap = base_poll * 64;
        let mut poll = base_poll;
        let mut consecutive_failures = 0;
        let mut replica_idx = 0usize;
        loop {
            let replica = &self.replicas[replica_idx % self.replicas.len()];
            match replica.acquire_lock(key, lock_ref).await {
                Ok(AcquireOutcome::Acquired) => return Ok(()),
                Ok(AcquireOutcome::NotYet) => {
                    consecutive_failures = 0;
                    self.sim.sleep(poll).await;
                    poll = (poll * 2).min(poll_cap);
                }
                Ok(AcquireOutcome::NoLongerHolder) => return Err(MusicError::NoLongerHolder),
                Err(_) => {
                    consecutive_failures += 1;
                    if consecutive_failures >= self.retries().max(1) {
                        return Err(MusicError::Unavailable);
                    }
                    replica_idx += 1; // fail over
                    self.note_failover("acquireLock", consecutive_failures);
                    self.sim.sleep(poll).await;
                    poll = (poll * 2).min(poll_cap);
                }
            }
        }
    }

    /// One retried critical operation (put/get share this policy):
    /// `NotYetHolder` and store nacks are retried (the latter with
    /// fail-over); holder-loss and expiry abort.
    async fn critical_with_retry<T, F, Fut>(
        &self,
        op_name: &'static str,
        mut op: F,
    ) -> Result<T, MusicError>
    where
        F: FnMut(MusicReplica) -> Fut,
        Fut: std::future::Future<Output = Result<T, CriticalError>>,
    {
        let poll = self.primary().config().acquire_poll;
        let budget = self.retries().max(1);
        let mut failures = 0;
        let mut replica_idx = 0usize;
        loop {
            let replica = self.replicas[replica_idx % self.replicas.len()].clone();
            match op(replica).await {
                Ok(v) => return Ok(v),
                Err(CriticalError::NotYetHolder) => {
                    failures += 1;
                    if failures >= budget {
                        return Err(MusicError::Unavailable);
                    }
                    // A persistently stale local lock-store view at one
                    // replica must not starve the holder: rotate replicas
                    // after a few polls.
                    if failures % 4 == 0 {
                        replica_idx += 1;
                        self.note_failover(op_name, failures);
                    }
                    self.sim.sleep(poll).await;
                }
                Err(CriticalError::NoLongerHolder) => return Err(MusicError::NoLongerHolder),
                Err(CriticalError::Expired) => return Err(MusicError::Expired),
                Err(CriticalError::Store(_)) => {
                    failures += 1;
                    if failures >= budget {
                        return Err(MusicError::Unavailable);
                    }
                    replica_idx += 1;
                    self.note_failover(op_name, failures);
                    self.sim.sleep(poll).await;
                }
            }
        }
    }

    /// `criticalPut` with retry/fail-over.
    ///
    /// # Errors
    ///
    /// [`MusicError::NoLongerHolder`], [`MusicError::Expired`], or
    /// [`MusicError::Unavailable`]. After `Unavailable` the client must not
    /// attempt other MUSIC operations on this key in this critical section
    /// (§III-A).
    pub async fn critical_put(
        &self,
        key: &str,
        lock_ref: LockRef,
        value: Bytes,
    ) -> Result<(), MusicError> {
        self.critical_with_retry("criticalPut", |r| {
            let key = key.to_string();
            let value = value.clone();
            async move { r.critical_put(&key, lock_ref, value).await }
        })
        .await
    }

    /// `criticalGet` with retry/fail-over.
    ///
    /// # Errors
    ///
    /// Same as [`MusicClient::critical_put`].
    pub async fn critical_get(
        &self,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<Option<Bytes>, MusicError> {
        self.critical_with_retry("criticalGet", |r| {
            let key = key.to_string();
            async move { r.critical_get(&key, lock_ref).await }
        })
        .await
    }

    /// `releaseLock` with fail-over.
    ///
    /// # Errors
    ///
    /// [`MusicError::Unavailable`] after the retry budget is exhausted.
    pub async fn release_lock(&self, key: &str, lock_ref: LockRef) -> Result<(), MusicError> {
        self.with_failover("releaseLock", |r| {
            let key = key.to_string();
            async move { r.release_lock(&key, lock_ref).await }
        })
        .await
    }

    /// Lock-free eventual `get` with fail-over.
    ///
    /// # Errors
    ///
    /// [`MusicError::Unavailable`] after the retry budget is exhausted.
    pub async fn get(&self, key: &str) -> Result<Option<Bytes>, MusicError> {
        self.with_failover("eventualGet", |r| {
            let key = key.to_string();
            async move { r.get(&key).await }
        })
        .await
    }

    /// Lock-free eventual `put` with fail-over.
    ///
    /// # Errors
    ///
    /// [`MusicError::Unavailable`] after the retry budget is exhausted.
    pub async fn put(&self, key: &str, value: Bytes) -> Result<(), MusicError> {
        self.with_failover("eventualPut", |r| {
            let key = key.to_string();
            let value = value.clone();
            async move { r.put(&key, value).await }
        })
        .await
    }

    /// Enters a critical section on `key`: `createLockRef` + blocking
    /// `acquireLock` (Listing 1), returning a guard for the critical
    /// operations.
    ///
    /// # Errors
    ///
    /// Any [`MusicError`] from the two steps.
    pub async fn enter(&self, key: &str) -> Result<CriticalSection, MusicError> {
        let lock_ref = self.create_lock_ref(key).await?;
        let entered_at = self.sim.now();
        self.acquire_lock(key, lock_ref).await?;
        Ok(CriticalSection {
            client: self.clone(),
            key: key.to_string(),
            lock_ref,
            entered_at,
        })
    }

    /// Enters a critical section over *several* keys, following the
    /// deadlock-avoidance rule of §III-A: locks are always acquired in
    /// lexicographic order, and the multi-key acquire succeeds only if it
    /// succeeds individually for every key. On any failure, already-held
    /// locks are released before the error is returned.
    ///
    /// # Errors
    ///
    /// Any [`MusicError`] from the per-key steps.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty.
    pub async fn enter_many(&self, keys: &[&str]) -> Result<MultiCriticalSection, MusicError> {
        assert!(!keys.is_empty(), "enter_many needs at least one key");
        let mut sorted: Vec<&str> = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut sections: Vec<CriticalSection> = Vec::with_capacity(sorted.len());
        for key in sorted {
            match self.enter(key).await {
                Ok(cs) => sections.push(cs),
                Err(e) => {
                    // Roll back in reverse order; best-effort (a failed
                    // release is collected by the failure detector).
                    while let Some(cs) = sections.pop() {
                        let _ = cs.release().await;
                    }
                    return Err(e);
                }
            }
        }
        Ok(MultiCriticalSection { sections })
    }
}

/// A critical section spanning several keys, held in lexicographic order.
#[derive(Debug)]
pub struct MultiCriticalSection {
    sections: Vec<CriticalSection>,
}

impl MultiCriticalSection {
    /// The held keys, in acquisition (lexicographic) order.
    pub fn keys(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.key()).collect()
    }

    fn section(&self, key: &str) -> Result<&CriticalSection, MusicError> {
        self.sections
            .iter()
            .find(|s| s.key() == key)
            .ok_or(MusicError::NoLongerHolder)
    }

    /// `criticalGet` on one of the held keys.
    ///
    /// # Errors
    ///
    /// [`MusicError::NoLongerHolder`] if `key` is not part of this critical
    /// section; otherwise see [`MusicClient::critical_get`].
    pub async fn get(&self, key: &str) -> Result<Option<Bytes>, MusicError> {
        self.section(key)?.get().await
    }

    /// `criticalPut` on one of the held keys.
    ///
    /// # Errors
    ///
    /// [`MusicError::NoLongerHolder`] if `key` is not part of this critical
    /// section; otherwise see [`MusicClient::critical_put`].
    pub async fn put(&self, key: &str, value: Bytes) -> Result<(), MusicError> {
        self.section(key)?.put(value).await
    }

    /// Releases every held lock, in reverse (anti-lexicographic) order.
    ///
    /// # Errors
    ///
    /// The first release error, after attempting all releases.
    pub async fn release(mut self) -> Result<(), MusicError> {
        let mut first_err = None;
        while let Some(cs) = self.sections.pop() {
            if let Err(e) = cs.release().await {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// A held critical section: the Listing-1 pattern as a guard object.
///
/// Call [`CriticalSection::release`] when done; merely dropping the guard
/// leaves the lock to the failure detector (as a crashed client would).
#[derive(Debug)]
pub struct CriticalSection {
    client: MusicClient,
    key: String,
    lock_ref: LockRef,
    entered_at: music_simnet::time::SimTime,
}

impl CriticalSection {
    /// The lock reference held by this critical section.
    pub fn lock_ref(&self) -> LockRef {
        self.lock_ref
    }

    /// The key this critical section guards.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// `criticalGet` of the guarded key — guaranteed to return the *true
    /// value* (Latest-State Property).
    ///
    /// # Errors
    ///
    /// See [`MusicClient::critical_get`].
    pub async fn get(&self) -> Result<Option<Bytes>, MusicError> {
        self.client.critical_get(&self.key, self.lock_ref).await
    }

    /// `criticalPut` of the guarded key — on success the written value is
    /// the new true value.
    ///
    /// # Errors
    ///
    /// See [`MusicClient::critical_put`].
    pub async fn put(&self, value: Bytes) -> Result<(), MusicError> {
        self.client
            .critical_put(&self.key, self.lock_ref, value)
            .await
    }

    /// Exits the critical section, releasing the lock.
    ///
    /// # Errors
    ///
    /// [`MusicError::Unavailable`] if no replica can reach the lock store.
    pub async fn release(self) -> Result<(), MusicError> {
        let res = self.client.release_lock(&self.key, self.lock_ref).await;
        if res.is_ok() {
            self.client.primary().stats().record(
                OpKind::CriticalSection,
                self.client.sim.now() - self.entered_at,
            );
        }
        res
    }
}
