//! The client-side view of MUSIC: replica fail-over, retry policy, and the
//! ergonomic critical-section guard.
//!
//! Per §III-A, a client may use *any* non-failed MUSIC replica; when one
//! nacks (back-end quorum unreachable) the client retries the operation at
//! the next replica. [`MusicClient`] encodes exactly that policy, and
//! [`CriticalSection`] packages the Listing-1 pattern (create → poll
//! acquire → critical ops → release).
//!
//! Like [`MusicReplica`], the client is generic over the runtime split: the
//! defaults run on the deterministic simulator, while `music-load` runs the
//! identical retry/fail-over/pipelining logic over `NativeRuntime` +
//! `RemoteTable`.
//!
//! # Write modes
//!
//! Under [`WriteMode::Sync`] every [`CriticalSection::put`] awaits its
//! quorum acknowledgment (one WAN RTT per put). Under
//! [`WriteMode::Pipelined`] puts are *issued* and return immediately, with
//! a bounded in-flight window; [`CriticalSection::flush`] — run implicitly
//! by `release`, `get`, and multi-key crossings — awaits every outstanding
//! ack before the section proceeds. A failed flush marks the `synchFlag`
//! (the next holder resynchronizes, §IV-B), poisons the section, and fails
//! the release, so entry consistency is preserved even when acknowledgments
//! never arrive.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use bytes::Bytes;

use music_lockstore::{LockPartition, LockRef};
use music_quorumstore::{DataRow, ReplicatedTable, StoreError, TableApi};
use music_runtime::Runtime;
use music_simnet::executor::Sim;
use music_simnet::time::{SimDuration, SimTime};
use music_telemetry::{SpanId, SpanPhase};

use crate::backoff;
use crate::config::WriteMode;
use crate::contention::ContentionController;
use crate::error::{AcquireOutcome, AttemptTrail, CriticalError, MusicError};
use crate::health::ReplicaHealth;
use crate::replica::{LeaseGrant, MusicReplica, PendingPut};
use crate::stats::OpKind;

/// A MUSIC client bound to an ordered list of replicas (closest first).
///
/// # Examples
///
/// See [`crate::system::MusicSystemBuilder`] for a runnable end-to-end
/// example.
pub struct MusicClient<RT = Sim, D = ReplicatedTable<DataRow>, L = ReplicatedTable<LockPartition>> {
    replicas: Vec<MusicReplica<RT, D, L>>,
    rt: RT,
    /// Per-client override of the deployment's configured write mode.
    write_mode: Option<WriteMode>,
    /// Per-client override of the deployment's configured lease window.
    lease_window: Option<SimDuration>,
    /// Leases retained by this client's clean releases, by key. Shared
    /// across clones so a cloned handle sees (and consumes) the same
    /// grants — a lease belongs to the client, not to one handle.
    leases: Rc<RefCell<HashMap<String, LeaseGrant>>>,
    /// Per-replica circuit breakers, shared across clones: what one
    /// handle learned about a dead replica benefits every section the
    /// client runs.
    health: Rc<ReplicaHealth>,
    /// Session stamp floor, by key: `(lockRef, last stamped elapsed µs)`
    /// of the newest put this client issued. Each replica keeps its own
    /// per-key floor, but a mid-section fail-over routes successive puts
    /// of *one* section through replicas whose drifted clocks can
    /// disagree by up to 2ε — enough to invert the v2s stamps of writes
    /// issued close together, so the older write wins last-write-wins.
    /// The client is the section's single writer, so it carries the floor
    /// to whichever replica executes; shared across clones like `leases`.
    stamp_floors: Rc<RefCell<HashMap<String, (u64, u64)>>>,
    /// The contention-adaptive controller ([`crate::contention`]): per-key
    /// strategy (spin-then-queue vs. enqueue-and-stretch), enqueue
    /// combining, lease auto-tuning/suspension, and admission control.
    /// Inert unless the deployment config enables it; shared across clones
    /// like `leases` — contention is a property of the client, not of one
    /// handle.
    contention: ContentionController,
}

impl<RT: Clone, D: Clone, L: Clone> Clone for MusicClient<RT, D, L> {
    fn clone(&self) -> Self {
        MusicClient {
            replicas: self.replicas.clone(),
            rt: self.rt.clone(),
            write_mode: self.write_mode,
            lease_window: self.lease_window,
            leases: self.leases.clone(),
            health: self.health.clone(),
            stamp_floors: self.stamp_floors.clone(),
            contention: self.contention.clone(),
        }
    }
}

impl<RT, D, L> fmt::Debug for MusicClient<RT, D, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MusicClient")
            .field("replicas", &self.replicas.len())
            .field("write_mode", &self.write_mode)
            .field("lease_window", &self.lease_window)
            .finish_non_exhaustive()
    }
}

/// The client's session stamp floor for `key` under `lock_ref`, or zero
/// if no put of this section has been stamped yet (a stale entry from an
/// earlier lock reference does not constrain the new section — the higher
/// reference already dominates in the v2s scalar).
fn session_floor(
    floors: &RefCell<HashMap<String, (u64, u64)>>,
    key: &str,
    lock_ref: LockRef,
) -> SimDuration {
    match floors.borrow().get(key) {
        Some(&(r, e)) if r == lock_ref.value() => SimDuration::from_micros(e),
        _ => SimDuration::ZERO,
    }
}

/// Advances the session stamp floor with the elapsed a replica stamped a
/// put with (recorded at *issue* time — later puts of the section must
/// stamp above even unacknowledged earlier ones).
fn note_stamp(
    floors: &RefCell<HashMap<String, (u64, u64)>>,
    key: &str,
    lock_ref: LockRef,
    elapsed: SimDuration,
) {
    let mut floors = floors.borrow_mut();
    let entry = floors
        .entry(key.to_string())
        .or_insert((lock_ref.value(), 0));
    if entry.0 != lock_ref.value() {
        *entry = (lock_ref.value(), 0);
    }
    entry.1 = entry.1.max(elapsed.as_micros());
}

impl<RT, D, L> MusicClient<RT, D, L>
where
    RT: Runtime,
    D: TableApi<DataRow, Rt = RT>,
    L: TableApi<LockPartition, Rt = RT>,
{
    /// Creates a client that prefers `replicas[0]` and fails over in order.
    ///
    /// # Errors
    ///
    /// [`MusicError::NoReplicas`] if `replicas` is empty.
    pub fn new(rt: RT, replicas: Vec<MusicReplica<RT, D, L>>) -> Result<Self, MusicError> {
        if replicas.is_empty() {
            return Err(MusicError::NoReplicas);
        }
        let cfg = replicas[0].config();
        let health = ReplicaHealth::new(
            replicas.iter().map(|r| r.node().0).collect(),
            cfg.breaker_threshold,
            cfg.breaker_cooldown,
            replicas[0].recorder(),
        );
        let contention = ContentionController::new(cfg.contention);
        Ok(MusicClient {
            replicas,
            rt,
            write_mode: None,
            lease_window: None,
            leases: Rc::new(RefCell::new(HashMap::new())),
            health: Rc::new(health),
            stamp_floors: Rc::new(RefCell::new(HashMap::new())),
            contention,
        })
    }

    /// The contention controller driving this client's adaptive behavior
    /// (instrumentation/tests; inert when the config leaves it disabled).
    pub fn contention(&self) -> &ContentionController {
        &self.contention
    }

    /// This client with its write mode overridden (sections entered through
    /// it pipeline or not regardless of the deployment config).
    ///
    /// This is a *per-client* override for running mixed modes over one
    /// deployment; to configure the deployment itself, use
    /// [`MusicConfig::builder`](crate::MusicConfig::builder)`.write_mode(..)`.
    #[must_use]
    pub fn with_write_mode(mut self, mode: WriteMode) -> Self {
        self.write_mode = Some(mode);
        self
    }

    /// This client with lease retention enabled at the given window,
    /// regardless of the deployment config: clean releases retain a lease
    /// and re-entries within `window` take the 0-RTT fast path.
    ///
    /// This is a *per-client* override; to enable leasing deployment-wide,
    /// use [`MusicConfig::builder`](crate::MusicConfig::builder)`.lease_window(..)`.
    #[must_use]
    pub fn with_lease_window(mut self, window: SimDuration) -> Self {
        self.lease_window = Some(window);
        self
    }

    /// The write mode sections entered through this client use.
    pub fn write_mode(&self) -> WriteMode {
        self.write_mode
            .unwrap_or(self.primary().config().write_mode)
    }

    /// The lease window in effect for this client, if leasing is on.
    pub fn lease_window(&self) -> Option<SimDuration> {
        self.lease_window.or(self.primary().config().lease_window)
    }

    /// The lease this client currently holds on `key`, if any. The grant
    /// may already be expired — it is consumed (and validated) by the next
    /// [`MusicClient::enter`].
    pub fn lease(&self, key: impl AsRef<str>) -> Option<LeaseGrant> {
        self.leases.borrow().get(key.as_ref()).copied()
    }

    /// The replica currently preferred by this client.
    pub fn primary(&self) -> &MusicReplica<RT, D, L> {
        &self.replicas[0]
    }

    fn retries(&self) -> u32 {
        self.primary().config().client_retries
    }

    /// Records one replica fail-over: bumps the global counter and, when
    /// tracing, emits a `clientFailover` event under the current trace.
    fn note_failover(&self, op: &'static str, attempt: u32, cause: &'static str) {
        let rec = self.primary().recorder();
        if !rec.is_on() {
            return;
        }
        rec.count(music_telemetry::Scope::Global, "client_failovers", 1);
        if rec.is_tracing() {
            rec.record(
                self.rt.now().as_micros(),
                self.rt.trace(),
                self.primary().node().0,
                music_telemetry::EventKind::ClientFailover { op, attempt, cause },
            );
        }
    }

    /// Records the start of a flush barrier over `pending` in-flight puts.
    fn note_flush(&self, key: &str, lock_ref: LockRef, pending: u64) {
        let rec = self.primary().recorder();
        if !rec.is_on() {
            return;
        }
        rec.count(music_telemetry::Scope::Global, "cs_flushes", 1);
        if rec.is_tracing() {
            rec.record(
                self.rt.now().as_micros(),
                self.rt.trace(),
                self.primary().node().0,
                music_telemetry::EventKind::CsFlush {
                    key: key.to_string(),
                    lock_ref: lock_ref.value(),
                    pending,
                },
            );
        }
    }

    /// Records a flush that could not acknowledge every in-flight put.
    fn note_flush_failure(&self) {
        let rec = self.primary().recorder();
        if rec.is_on() {
            rec.count(music_telemetry::Scope::Global, "flush_failures", 1);
        }
    }

    /// Records one pipelined issue and the in-flight high-water mark.
    fn note_inflight(&self, depth: usize) {
        let rec = self.primary().recorder();
        if rec.is_on() {
            rec.count(music_telemetry::Scope::Global, "pipelined_puts", 1);
            rec.gauge_max(
                music_telemetry::Scope::Global,
                "cs_inflight_peak",
                depth as u64,
            );
        }
    }

    /// Opens a phase span parented on the task's current span, attributed
    /// to this client's home (primary) replica. No-op unless tracing;
    /// returns `(span, previous tag)` for [`MusicClient::span_close`].
    fn span_open(&self, phase: SpanPhase, key: &str) -> (SpanId, u64) {
        let rec = self.primary().recorder();
        if !rec.is_tracing() {
            return (0, 0);
        }
        let parent = self.rt.span();
        let id = rec.span_open(
            self.rt.now().as_micros(),
            parent,
            self.rt.trace(),
            self.primary().node().0,
            self.primary().site(),
            phase,
            key,
        );
        self.rt.set_span(id);
        (id, parent)
    }

    /// Closes a phase span and restores the task's previous span tag.
    fn span_close(&self, token: (SpanId, u64)) {
        let (id, parent) = token;
        if id == 0 {
            return;
        }
        self.primary()
            .recorder()
            .span_close(self.rt.now().as_micros(), id);
        self.rt.set_span(parent);
    }

    /// Records one per-key grant for fairness accounting and feeds the
    /// contention controller: the enqueue→grant latency lands in this
    /// site's histogram (so a far site's starvation shows up as a runaway
    /// per-site p99.9) *and* in the key's grant-wait EWMA, which drives
    /// the spin-vs-queue hysteresis. A strategy switch is recorded as a
    /// `strategySwitch` event.
    fn note_grant(&self, key: &str, entered: SimTime) {
        let wait = self.rt.now() - entered;
        if let Some((mode, ewma)) = self.contention.on_grant_wait(key, wait.as_micros()) {
            let rec = self.primary().recorder();
            if rec.is_on() {
                rec.count(music_telemetry::Scope::Global, "strategy_switches", 1);
                if rec.is_tracing() {
                    rec.record(
                        self.rt.now().as_micros(),
                        self.rt.trace(),
                        self.primary().node().0,
                        music_telemetry::EventKind::StrategySwitch {
                            key: key.to_string(),
                            mode: mode.label(),
                            wait_us: ewma,
                        },
                    );
                }
            }
        }
        let rec = self.primary().recorder();
        if !rec.is_on() {
            return;
        }
        let site = music_telemetry::Scope::Site(self.primary().site());
        rec.count(site, "sections_entered", 1);
        rec.observe(site, "grant_wait_us", wait.as_micros());
    }

    /// The graceful-degradation floor: when the admission guard is
    /// configured, peek the local queue depth and fast-reject with
    /// [`MusicError::Overloaded`] once the bound is reached — a bounded
    /// queue and a bounded rejection instead of an unbounded pile-up. The
    /// depth peek is the same cheap intra-site read the acquire polls use;
    /// a peek failure fails *open* (admission control must never make an
    /// unavailable system less available).
    async fn admission_check(&self, key: &str) -> Result<(), MusicError> {
        if self.contention.admission_bound() == 0 {
            return Ok(());
        }
        let primary = self.primary();
        let Ok(depth) = primary.locks().queue_depth_local(primary.node(), key).await else {
            return Ok(());
        };
        let Err(retry_after) = self.contention.admit(depth) else {
            return Ok(());
        };
        let rec = primary.recorder();
        if rec.is_on() {
            rec.count(music_telemetry::Scope::Global, "admission_rejects", 1);
            if rec.is_tracing() {
                rec.record(
                    self.rt.now().as_micros(),
                    self.rt.trace(),
                    primary.node().0,
                    music_telemetry::EventKind::AdmissionReject {
                        key: key.to_string(),
                        depth: depth as u64,
                        retry_after_us: retry_after.as_micros(),
                    },
                );
            }
        }
        Err(MusicError::Overloaded { retry_after })
    }

    /// The deterministic jitter salt for this client's `op_name` retries:
    /// a pure hash of the op and the client's home node, so co-located
    /// clients drift apart while a seeded run replays byte-identically.
    fn backoff_salt(&self, op_name: &'static str, extra: u64) -> u64 {
        backoff::salt(&[
            backoff::hash_str(op_name),
            u64::from(self.primary().node().0),
            extra,
        ])
    }

    /// Runs `op` against replicas in preference order until one succeeds,
    /// up to the configured retry budget. Replicas whose circuit breaker
    /// is open are skipped, so a crashed primary does not burn the whole
    /// budget; failed attempts are separated by jittered exponential
    /// backoff.
    async fn with_failover<T, F, Fut>(
        &self,
        op_name: &'static str,
        mut op: F,
    ) -> Result<T, MusicError>
    where
        F: FnMut(MusicReplica<RT, D, L>) -> Fut,
        Fut: std::future::Future<Output = Result<T, StoreError>>,
    {
        let budget = self.retries().max(1);
        let base = self.primary().config().acquire_poll;
        let salt = self.backoff_salt(op_name, 0);
        let mut trail = AttemptTrail::new();
        for attempt in 0..budget {
            let idx = self
                .health
                .pick(attempt as usize, self.rt.now(), self.rt.trace());
            let replica = self.replicas[idx].clone();
            match op(replica).await {
                Ok(v) => {
                    self.health.on_success(idx, self.rt.now(), self.rt.trace());
                    return Ok(v);
                }
                Err(e) => {
                    self.health.on_failure(idx, self.rt.now(), self.rt.trace());
                    trail.note(e);
                    self.note_failover(op_name, attempt + 1, e.code());
                    if attempt + 1 < budget {
                        self.rt.sleep(backoff::delay(base, attempt, salt)).await;
                    }
                }
            }
        }
        Err(MusicError::Unavailable { attempts: trail })
    }

    /// Polls `acquireLock` (with the configured back-off) until the lock is
    /// granted or the reference is preempted.
    ///
    /// # Errors
    ///
    /// * [`MusicError::NoLongerHolder`] — the reference was forcibly
    ///   released before being granted.
    /// * [`MusicError::Unavailable`] — repeated nacks from every replica.
    pub async fn acquire_lock(
        &self,
        key: impl AsRef<str>,
        lock_ref: LockRef,
    ) -> Result<(), MusicError> {
        let key = key.as_ref();
        let raw_poll = self.primary().config().acquire_poll;
        // Contention-adaptive polling: when the controller is on, each
        // `NotYet` peeks the *local* queue position and paces the next
        // poll proportionally to the depth — tight near the head (a
        // handoff is one release away), stretched when deep (nothing can
        // change for at least `pos` handoffs). A failed peek falls back
        // to a short bounded schedule seeded by the Cool-mode spin budget;
        // the Hot-mode `stretch` applies to the failover backoff only.
        // All of it collapses to the plain blind-exponential schedule
        // when the controller is disabled (spin = 0, stretch = 0, no
        // position peek).
        let spin = self.contention.spin_budget(key);
        let stretch = self.contention.backoff_shift(key);
        let base_poll = SimDuration::from_micros(raw_poll.as_micros() << stretch);
        // "Standard back-off mechanisms can be used to alleviate the cost
        // of polling" (§III-A): exponential with deterministic jitter,
        // always within [base, 64×base], so co-located contenders do not
        // poll in lockstep.
        let salt = self.backoff_salt("acquireLock", lock_ref.value() ^ backoff::hash_str(key));
        let mut polls = 0u32;
        let mut consecutive_failures = 0;
        let mut trail = AttemptTrail::new();
        let mut replica_idx = 0usize;
        loop {
            let idx = self
                .health
                .pick(replica_idx, self.rt.now(), self.rt.trace());
            let replica = &self.replicas[idx];
            match replica.acquire_lock(key, lock_ref).await {
                Ok(outcome) => {
                    // Any protocol-level answer proves the replica alive.
                    self.health.on_success(idx, self.rt.now(), self.rt.trace());
                    match outcome {
                        AcquireOutcome::Acquired => return Ok(()),
                        AcquireOutcome::NoLongerHolder => return Err(MusicError::NoLongerHolder),
                        AcquireOutcome::NotYet => {
                            consecutive_failures = 0;
                            let delay = if self.contention.enabled() {
                                match replica
                                    .locks()
                                    .queue_position_local(replica.node(), key, lock_ref)
                                    .await
                                {
                                    // Next in line (or an unconfirmed
                                    // head): poll tight, the handoff is
                                    // one release away.
                                    Ok(Some(pos)) if pos <= 1 => backoff::delay(raw_poll, 0, salt),
                                    // Deep in the queue: pace the poll by
                                    // the position — nothing can change
                                    // for at least `pos` handoffs. The
                                    // position *is* the stretch; layering
                                    // the Hot-mode shift on top would
                                    // over-delay the eventual handoff.
                                    Ok(Some(pos)) => {
                                        let scaled = SimDuration::from_micros(
                                            raw_poll.as_micros().saturating_mul(pos.min(16) as u64),
                                        );
                                        backoff::delay(scaled, 0, salt)
                                    }
                                    // Not in the local view yet (or the
                                    // peek failed): local convergence is
                                    // quick, so retry on a short bounded
                                    // schedule — never the accumulated
                                    // blind exponent, which after a long
                                    // paced wait would sleep for the full
                                    // 64× cap at the worst moment.
                                    _ => backoff::delay(
                                        raw_poll,
                                        polls.saturating_sub(spin).min(4),
                                        salt,
                                    ),
                                }
                            } else {
                                let attempt = polls.saturating_sub(spin);
                                backoff::delay(base_poll, attempt, salt)
                            };
                            self.rt.sleep(delay).await;
                            polls = polls.saturating_add(1);
                        }
                    }
                }
                Err(e) => {
                    self.health.on_failure(idx, self.rt.now(), self.rt.trace());
                    trail.note(e);
                    consecutive_failures += 1;
                    if consecutive_failures >= self.retries().max(1) {
                        return Err(MusicError::Unavailable { attempts: trail });
                    }
                    replica_idx = idx + 1; // fail over
                    self.note_failover("acquireLock", consecutive_failures, e.code());
                    self.rt.sleep(backoff::delay(base_poll, polls, salt)).await;
                    polls = polls.saturating_add(1);
                }
            }
        }
    }

    /// `createLockRef` with fail-over.
    ///
    /// # Errors
    ///
    /// [`MusicError::Unavailable`] after the retry budget is exhausted.
    pub async fn create_lock_ref(&self, key: impl AsRef<str>) -> Result<LockRef, MusicError> {
        let key = key.as_ref();
        self.with_failover("createLockRef", |r| {
            let key = key.to_string();
            async move { r.create_lock_ref(&key).await }
        })
        .await
    }

    /// One retried critical operation (put/get share this policy):
    /// `NotYetHolder` and store nacks are retried (the latter with
    /// fail-over); holder-loss and expiry abort.
    async fn critical_with_retry<T, F, Fut>(
        &self,
        op_name: &'static str,
        mut op: F,
    ) -> Result<T, MusicError>
    where
        F: FnMut(MusicReplica<RT, D, L>) -> Fut,
        Fut: std::future::Future<Output = Result<T, CriticalError>>,
    {
        let poll = self.primary().config().acquire_poll;
        let budget = self.retries().max(1);
        let salt = self.backoff_salt(op_name, 1);
        let mut failures = 0u32;
        let mut trail = AttemptTrail::new();
        let mut replica_idx = 0usize;
        loop {
            let idx = self
                .health
                .pick(replica_idx, self.rt.now(), self.rt.trace());
            let replica = self.replicas[idx].clone();
            match op(replica).await {
                Ok(v) => {
                    self.health.on_success(idx, self.rt.now(), self.rt.trace());
                    return Ok(v);
                }
                Err(CriticalError::NotYetHolder) => {
                    // The replica answered — alive, merely a stale view.
                    self.health.on_success(idx, self.rt.now(), self.rt.trace());
                    trail.note_opaque();
                    failures += 1;
                    if failures >= budget {
                        return Err(MusicError::Unavailable { attempts: trail });
                    }
                    // A persistently stale local lock-store view at one
                    // replica must not starve the holder: rotate replicas
                    // after a few polls.
                    if failures.is_multiple_of(4) {
                        replica_idx = idx + 1;
                        self.note_failover(op_name, failures, "notYetHolder");
                    }
                    // Stale-view polls wait one jittered base interval
                    // (convergence is local; exponential growth would
                    // only delay the holder).
                    let nonce = salt.wrapping_add(u64::from(failures));
                    self.rt.sleep(backoff::delay(poll, 0, nonce)).await;
                }
                Err(CriticalError::NoLongerHolder) => {
                    self.health.on_success(idx, self.rt.now(), self.rt.trace());
                    return Err(MusicError::NoLongerHolder);
                }
                Err(CriticalError::Expired) => {
                    self.health.on_success(idx, self.rt.now(), self.rt.trace());
                    return Err(MusicError::Expired);
                }
                Err(CriticalError::Store(e)) => {
                    self.health.on_failure(idx, self.rt.now(), self.rt.trace());
                    trail.note(e);
                    failures += 1;
                    if failures >= budget {
                        return Err(MusicError::Unavailable { attempts: trail });
                    }
                    replica_idx = idx + 1;
                    self.note_failover(op_name, failures, e.code());
                    self.rt
                        .sleep(backoff::delay(poll, failures - 1, salt))
                        .await;
                }
            }
        }
    }

    /// `criticalPut` with retry/fail-over.
    ///
    /// # Errors
    ///
    /// [`MusicError::NoLongerHolder`], [`MusicError::Expired`], or
    /// [`MusicError::Unavailable`]. After `Unavailable` the client must not
    /// attempt other MUSIC operations on this key in this critical section
    /// (§III-A).
    pub async fn critical_put(
        &self,
        key: impl AsRef<str>,
        lock_ref: LockRef,
        value: impl Into<Bytes>,
    ) -> Result<(), MusicError> {
        let key = key.as_ref();
        let value = value.into();
        self.critical_with_retry("criticalPut", |r| {
            let key = key.to_string();
            let value = value.clone();
            let floors = self.stamp_floors.clone();
            async move {
                let floor = session_floor(&floors, &key, lock_ref);
                let elapsed = r.critical_put_floored(&key, lock_ref, value, floor).await?;
                note_stamp(&floors, &key, lock_ref, elapsed);
                Ok(())
            }
        })
        .await
    }

    /// `criticalGet` with retry/fail-over.
    ///
    /// # Errors
    ///
    /// Same as [`MusicClient::critical_put`].
    pub async fn critical_get(
        &self,
        key: impl AsRef<str>,
        lock_ref: LockRef,
    ) -> Result<Option<Bytes>, MusicError> {
        let key = key.as_ref();
        self.critical_with_retry("criticalGet", |r| {
            let key = key.to_string();
            async move { r.critical_get(&key, lock_ref).await }
        })
        .await
    }

    /// `releaseLock` with fail-over.
    ///
    /// # Errors
    ///
    /// [`MusicError::Unavailable`] after the retry budget is exhausted.
    pub async fn release_lock(
        &self,
        key: impl AsRef<str>,
        lock_ref: LockRef,
    ) -> Result<(), MusicError> {
        let key = key.as_ref();
        self.with_failover("releaseLock", |r| {
            let key = key.to_string();
            async move { r.release_lock(&key, lock_ref).await }
        })
        .await
    }

    /// Lock-free eventual `get` with fail-over.
    ///
    /// # Errors
    ///
    /// [`MusicError::Unavailable`] after the retry budget is exhausted.
    pub async fn get(&self, key: impl AsRef<str>) -> Result<Option<Bytes>, MusicError> {
        let key = key.as_ref();
        self.with_failover("eventualGet", |r| {
            let key = key.to_string();
            async move { r.get(&key).await }
        })
        .await
    }

    /// Lock-free eventual `put` with fail-over.
    ///
    /// # Errors
    ///
    /// [`MusicError::Unavailable`] after the retry budget is exhausted.
    pub async fn put(
        &self,
        key: impl AsRef<str>,
        value: impl Into<Bytes>,
    ) -> Result<(), MusicError> {
        let key = key.as_ref();
        let value = value.into();
        self.with_failover("eventualPut", |r| {
            let key = key.to_string();
            let value = value.clone();
            async move { r.put(&key, value).await }
        })
        .await
    }

    /// Enters a critical section on `key`: `createLockRef` + blocking
    /// `acquireLock` (Listing 1), returning a guard for the critical
    /// operations.
    ///
    /// When this client holds an unexpired lease on `key` (retained by a
    /// previous clean release under a configured lease window), entry
    /// takes the fast path instead: the pre-minted leased reference is
    /// revalidated against the local lock-store replica and claimed with
    /// a single intra-site write — no LWT, no quorum read. Any doubt
    /// (lease broken, expired, or the local view stale for too long)
    /// falls back to the full protocol.
    ///
    /// # Errors
    ///
    /// Any [`MusicError`] from the two steps.
    pub async fn enter(
        &self,
        key: impl AsRef<str>,
    ) -> Result<CriticalSection<RT, D, L>, MusicError> {
        let key = key.as_ref();
        let t0 = self.rt.now();
        self.contention.on_enter(key, t0.as_micros());
        // The lease fast path consumes no queue slot, so it is exempt from
        // admission control; a suspended lease (anti-starvation cooloff)
        // is surrendered below instead of being re-used.
        let holds_lease = self.leases.borrow().contains_key(key);
        if !holds_lease {
            self.admission_check(key).await?;
        }
        // The section root span stays open until release (or drop) and
        // every phase below — including replica-side headship confirms —
        // parents onto it through the task's span tag.
        let section_span = self.span_open(SpanPhase::Section, key);
        if holds_lease && !self.contention.lease_retention_allowed(key) {
            // Anti-starvation: while retention is suspended, hand the key
            // back through the FIFO queue instead of monopolizing it via
            // 0-RTT re-entries. Best-effort — a failed relinquish leaves
            // the lease to competitors' break path or the watchdog.
            let _ = self.relinquish(key).await;
        } else if let Some(lock_ref) = self.try_lease_reenter(key).await {
            // Counted as an entered section only under the adaptive
            // controller: the starvation instrument must see a site's
            // 0-RTT lease monopoly, but the pre-adaptive accounting (and
            // the committed BENCH baselines) counts slow-path grants only.
            if self.contention.enabled() {
                self.note_grant(key, t0);
            }
            return Ok(self.section(key, lock_ref, self.rt.now(), section_span));
        }
        // Anti-starvation politeness: while lease retention is suspended
        // the key is known-contended, so an empty queue means a
        // competitor's enqueue is in flight, not that the key is free —
        // we can re-enqueue in microseconds while a far site pays 4 WAN
        // round trips to land a reference. Give it a bounded head start
        // and queue behind it; observing one refreshes the suspension.
        if let Some(patience) = self.contention.enqueue_yield(key) {
            self.yield_to_competitors(key, patience).await;
        }
        let acquire_span = self.span_open(SpanPhase::LockAcquire, key);
        let enqueue_span = self.span_open(SpanPhase::Enqueue, key);
        let lock_ref = if self.contention.combine_now(key) {
            self.with_failover("createLockRef", |r| {
                let key = key.to_string();
                async move { r.create_lock_ref_combined(&key).await }
            })
            .await
        } else {
            self.create_lock_ref(key).await
        };
        self.span_close(enqueue_span);
        let lock_ref = match lock_ref {
            Ok(r) => r,
            Err(e) => {
                self.span_close(acquire_span);
                self.span_close(section_span);
                return Err(e);
            }
        };
        let entered_at = self.rt.now();
        let head_wait_span = self.span_open(SpanPhase::HeadWait, key);
        let acquired = self.acquire_lock(key, lock_ref).await;
        self.span_close(head_wait_span);
        self.span_close(acquire_span);
        if let Err(e) = acquired {
            self.span_close(section_span);
            return Err(e);
        }
        self.note_grant(key, t0);
        Ok(self.section(key, lock_ref, entered_at, section_span))
    }

    fn section(
        &self,
        key: &str,
        lock_ref: LockRef,
        entered_at: SimTime,
        span: (SpanId, u64),
    ) -> CriticalSection<RT, D, L> {
        CriticalSection {
            client: self.clone(),
            key: key.to_string(),
            lock_ref,
            entered_at,
            write_mode: self.write_mode(),
            pending: RefCell::new(VecDeque::new()),
            poisoned: Cell::new(None),
            span: Cell::new(span.0),
            span_parent: span.1,
        }
    }

    /// Attempts the lease fast path on `key`: consumes the cached grant,
    /// revalidates it at the primary replica, and returns the leased
    /// reference on success. `None` means "take the slow path" (which is
    /// always safe — a still-standing lease of our own would be broken by
    /// our own `createLockRef`, merely wasting the grant).
    async fn try_lease_reenter(&self, key: &str) -> Option<LockRef> {
        self.lease_window()?;
        let grant = self.leases.borrow_mut().remove(key)?;
        // Conservative ε-aware pre-check on the client's own clock: within
        // ε of expiry a drift-shifted watchdog may already be revoking, so
        // skip the fast path. The replica-side guard is authoritative.
        let eps = self.primary().config().clock_epsilon;
        if !crate::timestamp::lease_claimable(self.rt.now(), grant.until, eps) {
            return None;
        }
        let poll = self.primary().config().acquire_poll;
        let span = self.span_open(SpanPhase::LeaseReenter, key);
        // A couple of polls tolerate a local replica that has not yet
        // applied the release LWT; beyond that, fall back rather than spin.
        let mut reentered = None;
        for _ in 0..3 {
            match self.primary().lease_reenter(key, grant.lock_ref).await {
                Ok(AcquireOutcome::Acquired) => {
                    reentered = Some(grant.lock_ref);
                    break;
                }
                Ok(AcquireOutcome::NotYet) => self.rt.sleep(poll).await,
                Ok(AcquireOutcome::NoLongerHolder) => {
                    // Our cached lease was broken or revoked: direct
                    // evidence of competitors on this key. Suspend lease
                    // retention for the cooloff (anti-starvation).
                    self.contention.note_lease_contention(key);
                    break;
                }
                Err(_) => break,
            }
        }
        self.span_close(span);
        reentered
    }

    /// The anti-starvation yield (see [`ContentionKnobs::yield_patience`](
    /// crate::contention::ContentionKnobs)): polls the cheap local queue
    /// view until a competitor's reference appears (then refreshes the
    /// lease-contention suspension and returns — we enqueue *behind*
    /// them) or the patience runs out (the competitor left; retention may
    /// resume once the cooloff decays). A peek failure ends the yield:
    /// politeness must never reduce availability.
    async fn yield_to_competitors(&self, key: &str, patience: SimDuration) {
        let primary = self.primary();
        // Coarse polling: the point is to notice a competitor's enqueue
        // within a few tens of milliseconds (one WAN hop's precision),
        // not to race it — a tight poll here would multiply RPC load on
        // every suspended key for no fairness gain.
        let poll =
            SimDuration::from_micros(primary.config().acquire_poll.as_micros().saturating_mul(4));
        let deadline = self.rt.now() + patience;
        let salt = self.backoff_salt("enqueueYield", backoff::hash_str(key));
        let mut attempt = 0u32;
        loop {
            match primary.locks().queue_depth_local(primary.node(), key).await {
                Ok(0) => {}
                Ok(_) => {
                    self.contention.note_lease_contention(key);
                    return;
                }
                Err(_) => return,
            }
            if self.rt.now() >= deadline {
                return;
            }
            self.rt
                .sleep(backoff::delay(poll, attempt.min(3), salt))
                .await;
            attempt = attempt.saturating_add(1);
        }
    }

    /// Voluntarily surrenders the lease this client holds on `key`, if
    /// any: the pre-minted reference is released through the normal LWT
    /// path so other clients need not break (or wait out) the lease.
    ///
    /// # Errors
    ///
    /// [`MusicError::Unavailable`] after the retry budget is exhausted.
    pub async fn relinquish(&self, key: impl AsRef<str>) -> Result<(), MusicError> {
        let key = key.as_ref();
        let grant = self.leases.borrow_mut().remove(key);
        match grant {
            Some(g) => self.release_lock(key, g.lock_ref).await,
            None => Ok(()),
        }
    }

    /// Enters a critical section over *several* keys, following the
    /// deadlock-avoidance rule of §III-A: locks are always acquired in
    /// lexicographic order, and the multi-key acquire succeeds only if it
    /// succeeds individually for every key. On any failure, already-held
    /// locks are released before the error is returned.
    ///
    /// # Errors
    ///
    /// [`MusicError::EmptyKeySet`] for an empty `keys`, otherwise any
    /// [`MusicError`] from the per-key steps.
    pub async fn enter_many(
        &self,
        keys: &[impl AsRef<str>],
    ) -> Result<MultiCriticalSection<RT, D, L>, MusicError> {
        if keys.is_empty() {
            return Err(MusicError::EmptyKeySet);
        }
        let mut sorted: Vec<&str> = keys.iter().map(AsRef::as_ref).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut sections: Vec<CriticalSection<RT, D, L>> = Vec::with_capacity(sorted.len());
        for key in sorted {
            match self.enter(key).await {
                Ok(cs) => sections.push(cs),
                Err(e) => {
                    // Roll back in reverse order; best-effort (a failed
                    // release is collected by the failure detector).
                    while let Some(cs) = sections.pop() {
                        let _ = cs.release().await;
                    }
                    return Err(e);
                }
            }
        }
        Ok(MultiCriticalSection { sections })
    }
}

/// A critical section spanning several keys, held in lexicographic order.
#[derive(Debug)]
pub struct MultiCriticalSection<
    RT = Sim,
    D = ReplicatedTable<DataRow>,
    L = ReplicatedTable<LockPartition>,
> where
    RT: Runtime,
    D: TableApi<DataRow, Rt = RT>,
    L: TableApi<LockPartition, Rt = RT>,
{
    sections: Vec<CriticalSection<RT, D, L>>,
}

impl<RT, D, L> MultiCriticalSection<RT, D, L>
where
    RT: Runtime,
    D: TableApi<DataRow, Rt = RT>,
    L: TableApi<LockPartition, Rt = RT>,
{
    /// The held keys, in acquisition (lexicographic) order.
    pub fn keys(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.key()).collect()
    }

    fn section(&self, key: &str) -> Result<&CriticalSection<RT, D, L>, MusicError> {
        self.sections
            .iter()
            .find(|s| s.key() == key)
            .ok_or(MusicError::NotInSection)
    }

    /// Flush barrier on key crossings: before operating on `key`, every
    /// *other* section's pipelined writes are flushed, so per-key program
    /// order inside the multi-section is acknowledged in the order the
    /// application crossed between keys.
    async fn flush_others(&self, key: &str) -> Result<(), MusicError> {
        for s in &self.sections {
            if s.key() != key && s.in_flight() > 0 {
                s.flush().await?;
            }
        }
        Ok(())
    }

    /// `criticalGet` on one of the held keys. Crossing to `key` flushes the
    /// other sections' pipelined writes first.
    ///
    /// # Errors
    ///
    /// [`MusicError::NotInSection`] if `key` is not part of this critical
    /// section; otherwise see [`MusicClient::critical_get`].
    pub async fn get(&self, key: impl AsRef<str>) -> Result<Option<Bytes>, MusicError> {
        let key = key.as_ref();
        let section = self.section(key)?;
        self.flush_others(key).await?;
        section.get().await
    }

    /// `criticalPut` on one of the held keys. Crossing to `key` flushes the
    /// other sections' pipelined writes first.
    ///
    /// # Errors
    ///
    /// [`MusicError::NotInSection`] if `key` is not part of this critical
    /// section; otherwise see [`MusicClient::critical_put`].
    pub async fn put(
        &self,
        key: impl AsRef<str>,
        value: impl Into<Bytes>,
    ) -> Result<(), MusicError> {
        let key = key.as_ref();
        let section = self.section(key)?;
        self.flush_others(key).await?;
        section.put(value).await
    }

    /// Releases every held lock, in reverse (anti-lexicographic) order.
    /// Each per-key release flushes that key's pipelined writes first.
    ///
    /// # Errors
    ///
    /// The first release error, after attempting all releases.
    pub async fn release(mut self) -> Result<(), MusicError> {
        let mut first_err = None;
        while let Some(cs) = self.sections.pop() {
            if let Err(e) = cs.release().await {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// A held critical section: the Listing-1 pattern as a guard object.
///
/// Call [`CriticalSection::release`] when done; merely dropping the guard
/// leaves the lock to the failure detector (as a crashed client would) —
/// including any pipelined writes still in flight.
pub struct CriticalSection<
    RT = Sim,
    D = ReplicatedTable<DataRow>,
    L = ReplicatedTable<LockPartition>,
> where
    RT: Runtime,
    D: TableApi<DataRow, Rt = RT>,
    L: TableApi<LockPartition, Rt = RT>,
{
    client: MusicClient<RT, D, L>,
    key: String,
    lock_ref: LockRef,
    entered_at: SimTime,
    write_mode: WriteMode,
    /// Issued-but-unacknowledged pipelined puts, in issue order.
    pending: RefCell<VecDeque<PendingPut<RT>>>,
    /// Set once a flush fails: every further operation (including release)
    /// fails with this error, because an unacknowledged write may still
    /// land and only a resynchronizing handoff is safe (§III-A).
    poisoned: Cell<Option<MusicError>>,
    /// The open `cs` root span (0 when tracing is off or already closed).
    span: Cell<SpanId>,
    /// Task span tag to restore when the root span closes.
    span_parent: u64,
}

impl<RT, D, L> fmt::Debug for CriticalSection<RT, D, L>
where
    RT: Runtime,
    D: TableApi<DataRow, Rt = RT>,
    L: TableApi<LockPartition, Rt = RT>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CriticalSection")
            .field("key", &self.key)
            .field("lock_ref", &self.lock_ref)
            .field("write_mode", &self.write_mode)
            .field("in_flight", &self.pending.borrow().len())
            .finish_non_exhaustive()
    }
}

impl<RT, D, L> CriticalSection<RT, D, L>
where
    RT: Runtime,
    D: TableApi<DataRow, Rt = RT>,
    L: TableApi<LockPartition, Rt = RT>,
{
    /// The lock reference held by this critical section.
    pub fn lock_ref(&self) -> LockRef {
        self.lock_ref
    }

    /// The key this critical section guards.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The write mode this section was entered with.
    pub fn write_mode(&self) -> WriteMode {
        self.write_mode
    }

    /// How many pipelined puts are currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.borrow().len()
    }

    fn check_poisoned(&self) -> Result<(), MusicError> {
        match self.poisoned.get() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Closes the section's root span (idempotent). Runs on release *and*
    /// on drop, so abandoned sections still close their span — an
    /// unclosed `cs` span in a trace means a task died mid-section.
    fn close_section_span(&self) {
        let id = self.span.replace(0);
        if id == 0 {
            return;
        }
        let rt = &self.client.rt;
        self.client
            .primary()
            .recorder()
            .span_close(rt.now().as_micros(), id);
        // Restore the enclosing tag only if this guard's span is still the
        // current one — a guard dropped from a foreign task must not
        // clobber that task's tag.
        if rt.span() == id {
            rt.set_span(self.span_parent);
        }
    }

    /// `criticalGet` of the guarded key — guaranteed to return the *true
    /// value* (Latest-State Property). A flush barrier: all pipelined
    /// writes are acknowledged before the read is issued.
    ///
    /// # Errors
    ///
    /// See [`MusicClient::critical_get`]; also any flush error.
    pub async fn get(&self) -> Result<Option<Bytes>, MusicError> {
        self.flush().await?;
        let span = self.client.span_open(SpanPhase::DataGet, &self.key);
        let r = self.client.critical_get(&self.key, self.lock_ref).await;
        self.client.span_close(span);
        r
    }

    /// `criticalPut` of the guarded key — on success the written value is
    /// the new true value.
    ///
    /// Under [`WriteMode::Sync`] this awaits the quorum acknowledgment;
    /// under [`WriteMode::Pipelined`] it behaves like
    /// [`CriticalSection::put_async`].
    ///
    /// # Errors
    ///
    /// See [`MusicClient::critical_put`].
    pub async fn put(&self, value: impl Into<Bytes>) -> Result<(), MusicError> {
        match self.write_mode {
            WriteMode::Sync => {
                self.check_poisoned()?;
                let span = self.client.span_open(SpanPhase::DataPut, &self.key);
                let r = self
                    .client
                    .critical_put(&self.key, self.lock_ref, value)
                    .await;
                self.client.span_close(span);
                r
            }
            WriteMode::Pipelined { .. } => self.put_async(value).await,
        }
    }

    /// Issues a `criticalPut` without awaiting its quorum ack. Returns once
    /// the write is issued; if the in-flight window is full, the oldest
    /// pending put is awaited (and re-driven if it failed) first.
    ///
    /// Available in every write mode — in [`WriteMode::Sync`] the window is
    /// 1, i.e. each issue first drains the previous put.
    ///
    /// # Errors
    ///
    /// Issue errors ([`MusicError::NoLongerHolder`], [`MusicError::Expired`],
    /// [`MusicError::Unavailable`]) and any error from settling the oldest
    /// pending put. After an error the section is poisoned: see
    /// [`CriticalSection::flush`].
    pub async fn put_async(&self, value: impl Into<Bytes>) -> Result<(), MusicError> {
        self.check_poisoned()?;
        let value = value.into();
        let window = self.write_mode.window();
        // The span covers the *issue* (window drain + guard + quorum
        // launch): pipelined acks land later and are accounted by the
        // flush span, which is exactly the decomposition the pipelining
        // optimization is supposed to show off.
        let span = self.client.span_open(SpanPhase::DataPut, &self.key);
        let r = self.put_async_inner(value, window).await;
        self.client.span_close(span);
        r
    }

    async fn put_async_inner(&self, value: Bytes, window: usize) -> Result<(), MusicError> {
        loop {
            let oldest = {
                let mut pending = self.pending.borrow_mut();
                if pending.len() < window {
                    break;
                }
                pending.pop_front().expect("window is non-empty")
            };
            self.settle(oldest).await?;
        }
        let key = self.key.clone();
        let lock_ref = self.lock_ref;
        let floors = self.client.stamp_floors.clone();
        let pp = self
            .client
            .critical_with_retry("criticalPut", move |r| {
                let key = key.clone();
                let value = value.clone();
                let floors = floors.clone();
                async move {
                    let floor = session_floor(&floors, &key, lock_ref);
                    let pp = r
                        .critical_put_async_floored(&key, lock_ref, value, floor)
                        .await?;
                    note_stamp(&floors, &key, lock_ref, pp.elapsed());
                    Ok(pp)
                }
            })
            .await?;
        let depth = {
            let mut pending = self.pending.borrow_mut();
            pending.push_back(pp);
            pending.len()
        };
        self.client.note_inflight(depth);
        Ok(())
    }

    /// Awaits one pending put; a store failure re-drives the write with its
    /// original stamp (program order inside the section must not be
    /// reordered by retries). A terminal failure poisons the section.
    async fn settle(&self, pp: PendingPut<RT>) -> Result<(), MusicError> {
        let (value, elapsed, res) = pp.outcome().await;
        let err = match res {
            Ok(()) => return Ok(()),
            Err(CriticalError::NoLongerHolder) => MusicError::NoLongerHolder,
            Err(CriticalError::Expired) => MusicError::Expired,
            Err(CriticalError::NotYetHolder) | Err(CriticalError::Store(_)) => {
                let key = self.key.clone();
                let lock_ref = self.lock_ref;
                match self
                    .client
                    .critical_with_retry("criticalPut", move |r| {
                        let key = key.clone();
                        let value = value.clone();
                        async move { r.critical_put_resume(&key, lock_ref, value, elapsed).await }
                    })
                    .await
                {
                    Ok(()) => return Ok(()),
                    Err(e) => e,
                }
            }
        };
        // Some write of this section may never be acknowledged: poison the
        // section, drop the remaining pending puts (their writes keep
        // propagating, like a crashed holder's), and mark the synchFlag so
        // the next holder resynchronizes. The mark is best-effort — if it
        // fails too, the failed release leaves the reference queued and the
        // failure detector's forcedRelease sets the flag before dequeueing.
        self.poisoned.set(Some(err));
        self.pending.borrow_mut().clear();
        self.client.note_flush_failure();
        self.mark_synch_best_effort().await;
        Err(err)
    }

    /// One `markSynch` attempt per replica, stopping at the first success.
    async fn mark_synch_best_effort(&self) {
        for r in &self.client.replicas {
            if r.mark_synch(&self.key, self.lock_ref).await.is_ok() {
                return;
            }
        }
    }

    /// Flush barrier: awaits every outstanding pipelined put, re-driving
    /// failed writes. No-op when nothing is in flight.
    ///
    /// # Errors
    ///
    /// The settling error, after marking the `synchFlag` and poisoning the
    /// section — all further operations (including release) fail, leaving
    /// the lock to the failure detector's resynchronizing preemption.
    pub async fn flush(&self) -> Result<(), MusicError> {
        self.check_poisoned()?;
        let n = self.pending.borrow().len();
        if n == 0 {
            return Ok(());
        }
        self.client.note_flush(&self.key, self.lock_ref, n as u64);
        let span = self.client.span_open(SpanPhase::Flush, &self.key);
        let r = self.drain_pending().await;
        self.client.span_close(span);
        r
    }

    async fn drain_pending(&self) -> Result<(), MusicError> {
        loop {
            let Some(pp) = self.pending.borrow_mut().pop_front() else {
                return Ok(());
            };
            self.settle(pp).await?;
        }
    }

    /// Exits the critical section, releasing the lock. A flush barrier: the
    /// lock is handed off only after every pipelined write of this section
    /// is quorum-acknowledged.
    ///
    /// # Errors
    ///
    /// Any flush error (the lock is then *not* released — the failure
    /// detector will preempt it with a resynchronizing `forcedRelease`), or
    /// [`MusicError::Unavailable`] if no replica can reach the lock store.
    ///
    /// When the client has a lease window in effect, a clean release with
    /// nothing queued behind it retains a lease: the next
    /// [`MusicClient::enter`] on this key within the window skips the lock
    /// protocol entirely.
    pub async fn release(self) -> Result<(), MusicError> {
        self.flush().await?;
        // Lease retention rides on a configured window, gated by the
        // anti-starvation rule: while the key is Hot or inside a
        // lease-contention cooloff, release plainly so competitors get the
        // FIFO queue instead of a 0-RTT monopoly.
        let retain = self
            .client
            .lease_window()
            .filter(|_| self.client.contention.lease_retention_allowed(&self.key));
        let res = match retain {
            Some(window) => {
                // Auto-tune the minted window from the observed think-time
                // EWMA, clamped to the safety floor/ceiling (identity when
                // the controller is disabled).
                let window = self.client.contention.auto_window(&self.key, window);
                let span = self.client.span_open(SpanPhase::LeaseHandoff, &self.key);
                let res = self.release_leased(window).await;
                self.client.span_close(span);
                res
            }
            None => {
                let span = self.client.span_open(SpanPhase::Release, &self.key);
                let res = self.client.release_lock(&self.key, self.lock_ref).await;
                self.client.span_close(span);
                res
            }
        };
        if res.is_ok() {
            self.client
                .contention
                .on_release(&self.key, self.client.rt.now().as_micros());
            self.client.primary().stats().record(
                OpKind::CriticalSection,
                self.client.rt.now() - self.entered_at,
            );
        }
        self.close_section_span();
        res
    }

    /// Lease-retaining release: one LWT, same cost as a plain release,
    /// caching the grant (if one was retained) on the client.
    async fn release_leased(&self, window: SimDuration) -> Result<(), MusicError> {
        let key = self.key.clone();
        let lock_ref = self.lock_ref;
        let granted = self
            .client
            .with_failover("releaseLock", |r| {
                let key = key.clone();
                async move { r.release_lock_leased(&key, lock_ref, window).await }
            })
            .await?;
        let mut leases = self.client.leases.borrow_mut();
        match granted {
            Some(g) => {
                leases.insert(self.key.clone(), g);
            }
            None => {
                leases.remove(&self.key);
                // The release found competitors queued behind us (or the
                // reference already collected): the key is contended, so
                // suspend lease retention for the cooloff.
                self.client.contention.note_lease_contention(&self.key);
            }
        }
        Ok(())
    }
}

impl<RT, D, L> Drop for CriticalSection<RT, D, L>
where
    RT: Runtime,
    D: TableApi<DataRow, Rt = RT>,
    L: TableApi<LockPartition, Rt = RT>,
{
    fn drop(&mut self) {
        self.close_section_span();
    }
}
