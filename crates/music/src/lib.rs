//! # music
//!
//! A reproduction of **MUSIC** (MUlti-SIte Critical Sections, ICDCS 2020):
//! a replicated key-value store whose keys can be read and written inside
//! *critical sections* with **entry consistency under failures (ECF)**:
//!
//! * **Exclusivity** — only the lockholder's `criticalPut`/`criticalGet`
//!   operations on a key succeed, even when a preempted former holder is
//!   still alive and writing (false failure detection).
//! * **Latest state** — a lockholder's `criticalGet` returns the *true
//!   value*: the most recent successfully acknowledged `criticalPut`
//!   (refined, when the previous holder died mid-put, to a value the
//!   system committed before granting the next lock).
//!
//! The store is layered exactly as the paper's implementation: a
//! sequentially consistent **lock store** (per-key lock-reference queues
//! updated through Paxos LWTs — `music-lockstore`) plus an eventually
//! consistent **data store** accessed with quorum operations
//! (`music-quorumstore`), glued together by vector timestamps folded into
//! scalar stamps via the order-preserving [`timestamp::V2s`] mapping and a
//! per-key `synchFlag` for post-failure resynchronization.
//!
//! ## Quickstart
//!
//! ```
//! use music::system::MusicSystemBuilder;
//! use music_simnet::prelude::*;
//! use bytes::Bytes;
//!
//! let system = MusicSystemBuilder::new().profile(LatencyProfile::one_us()).build();
//! let client = system.client_at_site(0);
//! let sim = system.sim().clone();
//! sim.block_on(async move {
//!     // Listing 1 of the paper:
//!     let cs = client.enter("counter").await?; // createLockRef + acquireLock
//!     let v1 = cs.get().await?;                // guaranteed true value
//!     let next = v1.map_or(1u64, |b| {
//!         u64::from_be_bytes(b.as_ref().try_into().unwrap()) + 1
//!     });
//!     cs.put(Bytes::copy_from_slice(&next.to_be_bytes())).await?;
//!     cs.release().await?;
//!     Ok::<(), music::MusicError>(())
//! }).unwrap();
//! ```
//!
//! Lower-level access (explicit lock references, per Table I of the paper)
//! is available on [`replica::MusicReplica`]; deployment wiring on
//! [`system::MusicSystemBuilder`]; failure detection on
//! [`watchdog::Watchdog`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod client;
pub mod config;
pub mod contention;
pub mod error;
pub mod health;
pub mod nemesis;
pub mod node;
pub mod repair;
pub mod replica;
pub mod stats;
pub mod system;
pub mod timestamp;
pub mod watchdog;

/// One-stop imports for embedding MUSIC: the client-facing surface plus
/// the runtime traits it is generic over.
///
/// ```
/// use music::prelude::*;
/// ```
///
/// Deployment wiring stays out: sim experiments import
/// [`system::MusicSystemBuilder`], socket deployments [`node`].
pub mod prelude {
    pub use crate::client::{CriticalSection, MultiCriticalSection, MusicClient};
    pub use crate::config::{MusicConfig, MusicConfigBuilder, PeekMode, PutMode, WriteMode};
    pub use crate::contention::{ContentionController, ContentionKnobs, Mode as ContentionMode};
    pub use crate::error::{AcquireOutcome, CriticalError, MusicError};
    pub use crate::replica::MusicReplica;
    pub use crate::stats::{OpKind, OpStats};
    pub use music_runtime::{RtJoinHandle, Runtime, SimRuntime, Transport};
}

pub use client::{CriticalSection, MultiCriticalSection, MusicClient};
pub use config::{MusicConfig, MusicConfigBuilder, PeekMode, PutMode, WriteMode};
pub use contention::{ContentionController, ContentionKnobs};
pub use error::{AcquireOutcome, AttemptTrail, CriticalError, MusicError};
pub use health::ReplicaHealth;
pub use music_lockstore::LockRef;
pub use nemesis::{
    run_drift_unsafe_demo, run_nemesis, DriftDemo, DriftLane, NemesisOptions, NemesisRun, RunMode,
};
pub use repair::RepairDaemon;
pub use replica::{LeaseGrant, MusicReplica, PendingPut};
pub use stats::{OpKind, OpStats};
pub use system::{ClockDrift, MusicSystem, MusicSystemBuilder};
pub use timestamp::{lease_breakable, lease_claimable, V2s, VectorTimestamp};
pub use watchdog::Watchdog;
