//! Periodic anti-entropy: a background daemon sweeping both back-end
//! stores and repairing replica divergence (the `nodetool repair` of a
//! production Cassandra deployment).
//!
//! The quorum paths stay correct without it — majorities always intersect —
//! but *local* reads (`lsPeek`, eventual `get`s) read one replica, and a
//! replica that missed propagation during a long partition would otherwise
//! serve a stale view until the next write touches the key. Production
//! deployments run repairs on a schedule; so does this daemon.

use std::cell::Cell;
use std::rc::Rc;

use music_simnet::time::SimDuration;

use crate::replica::MusicReplica;

/// A periodic full-table repair task bound to one MUSIC replica.
#[derive(Clone, Debug)]
pub struct RepairDaemon {
    replica: MusicReplica,
    interval: SimDuration,
    running: Rc<Cell<bool>>,
    repaired: Rc<Cell<u64>>,
    sweeps: Rc<Cell<u64>>,
}

impl RepairDaemon {
    /// Creates a daemon sweeping every `interval`.
    pub fn new(replica: MusicReplica, interval: SimDuration) -> Self {
        RepairDaemon {
            replica,
            interval,
            running: Rc::new(Cell::new(false)),
            repaired: Rc::new(Cell::new(0)),
            sweeps: Rc::new(Cell::new(0)),
        }
    }

    /// Total keys repaired (data rows + lock partitions) so far.
    pub fn repaired(&self) -> u64 {
        self.repaired.get()
    }

    /// Completed sweeps.
    pub fn sweeps(&self) -> u64 {
        self.sweeps.get()
    }

    /// Stops the loop after its current sweep.
    pub fn stop(&self) {
        self.running.set(false);
    }

    /// One repair sweep over the data store and the lock store (also
    /// callable directly for deterministic tests).
    pub async fn sweep_once(&self) {
        let node = self.replica.node();
        let mut round = 0;
        if let Ok(n) = self.replica.data().repair_all(node).await {
            self.repaired.set(self.repaired.get() + n);
            round += n;
        }
        if let Ok(n) = self.replica.locks().table().repair_all(node).await {
            self.repaired.set(self.repaired.get() + n);
            round += n;
        }
        self.sweeps.set(self.sweeps.get() + 1);
        let rec = self.replica.recorder();
        if rec.is_on() {
            rec.count(music_telemetry::Scope::Node(node.0), "repair_sweeps", 1);
            rec.count(music_telemetry::Scope::Node(node.0), "keys_repaired", round);
            if rec.is_tracing() {
                let sim = self.replica.data().net().sim();
                rec.record(
                    sim.now().as_micros(),
                    sim.trace(),
                    node.0,
                    music_telemetry::EventKind::RepairRound { repaired: round },
                );
            }
        }
    }

    /// Spawns the periodic sweep loop.
    pub fn spawn(&self) {
        if self.running.replace(true) {
            return; // already running
        }
        let this = self.clone();
        let sim = this.replica.data().net().sim().clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            while this.running.get() {
                this.sweep_once().await;
                sim2.sleep(this.interval).await;
            }
        });
    }
}
