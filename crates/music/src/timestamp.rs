//! Vector timestamps and the order-preserving `v2s` scalar mapping.
//!
//! MUSIC's data store orders writes by vector timestamps `(lockRef, time)`
//! with the lock reference more significant (§III-B). Cassandra cells only
//! hold scalar timestamps, so §VI maps vectors to scalars:
//!
//! ```text
//! v2s(lockRef, time) = lockRef · T + (time − startTime)
//! ```
//!
//! where `T` bounds the duration of any critical section and
//! `time − startTime < T`. The lemma of §X-A2 (this mapping preserves
//! vector order) is verified by the property tests in this module, and the
//! overflow analysis of §X-A3 by [`V2s::max_lock_ref`].

use music_lockstore::LockRef;
use music_quorumstore::WriteStamp;
use music_simnet::time::{SimDuration, SimTime};

/// A MUSIC vector timestamp: `(lockRef, elapsed-in-critical-section)`.
///
/// Ordered lexicographically with the lock reference most significant.
///
/// # Examples
///
/// ```
/// use music::timestamp::VectorTimestamp;
/// use music_lockstore::LockRef;
/// use music_simnet::time::SimDuration;
///
/// let earlier_cs = VectorTimestamp::new(LockRef::new(1), SimDuration::from_secs(100));
/// let later_cs = VectorTimestamp::new(LockRef::new(2), SimDuration::ZERO);
/// assert!(later_cs > earlier_cs, "lockRef dominates time");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VectorTimestamp {
    /// The critical section's lock reference (most significant).
    pub lock_ref: LockRef,
    /// Time elapsed since the critical section began (`time − startTime`).
    pub elapsed: SimDuration,
}

impl VectorTimestamp {
    /// Creates a vector timestamp.
    pub fn new(lock_ref: LockRef, elapsed: SimDuration) -> Self {
        VectorTimestamp { lock_ref, elapsed }
    }
}

impl std::fmt::Display for VectorTimestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.lock_ref, self.elapsed)
    }
}

/// The vector→scalar mapping, parameterized by the maximum critical-section
/// duration `T`.
#[derive(Copy, Clone, Debug)]
pub struct V2s {
    t_micros: u64,
}

impl V2s {
    /// Creates a mapping for critical sections bounded by `t_max`.
    ///
    /// # Panics
    ///
    /// Panics if `t_max` is zero.
    pub fn new(t_max: SimDuration) -> Self {
        assert!(t_max > SimDuration::ZERO, "T must be positive");
        V2s {
            t_micros: t_max.as_micros(),
        }
    }

    /// The bound `T`.
    pub fn t_max(&self) -> SimDuration {
        SimDuration::from_micros(self.t_micros)
    }

    /// Maps a vector timestamp to the scalar stamp stored in the data
    /// store: `lockRef · T + elapsed`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `elapsed >= T` — callers must enforce the
    /// critical-section duration bound *before* stamping (§VI's
    /// `criticalPut` rejects such operations).
    pub fn scalar(&self, ts: VectorTimestamp) -> WriteStamp {
        debug_assert!(
            ts.elapsed.as_micros() < self.t_micros,
            "elapsed {} must be below T {}",
            ts.elapsed,
            self.t_max()
        );
        WriteStamp::new(
            ts.lock_ref
                .value()
                .saturating_mul(self.t_micros)
                .saturating_add(ts.elapsed.as_micros()),
        )
    }

    /// Scalar stamp used by `forcedRelease` when setting the `synchFlag`:
    /// `v2s(lockRef, 0) + δ`, strictly above the holder's own concurrent
    /// flag reset (same `lockRef`, elapsed 0) yet below any stamp of the
    /// next lock reference (δ ≪ T) — the race resolution of §IV-B.
    pub fn forced_release_stamp(&self, lock_ref: LockRef, delta: SimDuration) -> WriteStamp {
        debug_assert!(
            delta > SimDuration::ZERO && delta.as_micros() < self.t_micros,
            "δ must be in (0, T)"
        );
        WriteStamp::new(
            lock_ref
                .value()
                .saturating_mul(self.t_micros)
                .saturating_add(delta.as_micros()),
        )
    }

    /// Largest lock reference representable without overflowing a signed
    /// 64-bit Cassandra timestamp: `lockRef · T ≤ 2⁶³` (§X-A3).
    pub fn max_lock_ref(&self) -> u64 {
        (1u64 << 63) / self.t_micros
    }

    /// Inverse of [`V2s::scalar`] for instrumentation: which lock reference
    /// stamped this scalar?
    pub fn lock_ref_of(&self, stamp: WriteStamp) -> LockRef {
        LockRef::new(stamp.value() / self.t_micros)
    }
}

/// Drift-safe lease **claim** guard: a node whose local clock reads `now`
/// may act on a lease expiring at `expiry` only when `now + ε < expiry` —
/// the claim stays valid even if the local clock runs up to `ε` slow, so
/// under per-node skew ≤ ε a claim never lands after the true expiry.
///
/// All arithmetic is saturating (`SimTime + SimDuration` saturates at
/// `u64::MAX` µs), so the guard is total: near the representable bound the
/// sum pins at `SimTime::MAX` and the claim is refused — fail closed.
pub fn lease_claimable(now: SimTime, expiry: SimTime, epsilon: SimDuration) -> bool {
    now + epsilon < expiry
}

/// Drift-safe lease **break** guard: a watchdog (or competitor acting on
/// time rather than the break flag) whose local clock reads `now` may
/// retire a lease expiring at `expiry` only when `now − ε > expiry` — the
/// revocation stays valid even if the local clock runs up to `ε` fast, so
/// under per-node skew ≤ ε a live lease is never revoked early.
///
/// For every `(now, expiry, ε)` at most one of [`lease_claimable`] and
/// `lease_breakable` holds (they are mutually exclusive — verified
/// exhaustively in this module's tests), and each is monotone in ε: a
/// larger uncertainty bound only ever makes both sides more conservative.
pub fn lease_breakable(now: SimTime, expiry: SimTime, epsilon: SimDuration) -> bool {
    now.saturating_since(expiry) > epsilon
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v2s() -> V2s {
        V2s::new(SimDuration::from_secs(600))
    }

    fn vt(lr: u64, us: u64) -> VectorTimestamp {
        VectorTimestamp::new(LockRef::new(lr), SimDuration::from_micros(us))
    }

    #[test]
    fn equal_vectors_map_equal() {
        let m = v2s();
        assert_eq!(m.scalar(vt(3, 100)), m.scalar(vt(3, 100)));
    }

    #[test]
    fn same_lock_ref_ordered_by_time() {
        let m = v2s();
        assert!(m.scalar(vt(3, 100)) < m.scalar(vt(3, 101)));
    }

    #[test]
    fn lock_ref_dominates_time() {
        let m = v2s();
        // Even a maximal elapsed in CS 3 loses to the first instant of CS 4.
        let max_elapsed = 600_000_000 - 1;
        assert!(m.scalar(vt(3, max_elapsed)) < m.scalar(vt(4, 0)));
    }

    #[test]
    fn forced_release_stamp_sits_between_resets() {
        let m = v2s();
        let delta = SimDuration::from_micros(1);
        let own_reset = m.scalar(vt(7, 0));
        let forced = m.forced_release_stamp(LockRef::new(7), delta);
        let next_reset = m.scalar(vt(8, 0));
        assert!(forced > own_reset, "must override the same-lockRef reset");
        assert!(forced < next_reset, "must lose to the next lockRef's reset");
    }

    #[test]
    fn overflow_bound_matches_paper() {
        // With time in milliseconds and T < 29 years the paper supports
        // ~10 million lock references; our µs-granularity equivalent:
        let m = V2s::new(SimDuration::from_secs(60 * 60 * 24 * 365)); // 1 year
        assert!(m.max_lock_ref() > 290_000, "plenty of refs at T = 1 year");
        let m = v2s(); // T = 600s
        assert!(m.max_lock_ref() > 15_000_000_000);
    }

    #[test]
    fn lock_ref_recoverable_from_stamp() {
        let m = v2s();
        let s = m.scalar(vt(42, 12345));
        assert_eq!(m.lock_ref_of(s), LockRef::new(42));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_t_rejected() {
        V2s::new(SimDuration::ZERO);
    }

    // ---- ε-guard properties (seeded sweeps in lieu of proptest) ----

    /// Deterministic 64-bit generator for the guard sweeps.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Values that stress every regime of the guards: zero, small, the
    /// v2s reference bound for the default T, and the saturation edge.
    fn interesting_micros() -> Vec<u64> {
        let ref_bound = v2s().max_lock_ref().saturating_mul(600_000_000);
        vec![
            0,
            1,
            2,
            999,
            1_000_000,
            ref_bound.saturating_sub(1),
            ref_bound,
            ref_bound.saturating_add(1),
            u64::MAX - 2,
            u64::MAX - 1,
            u64::MAX,
        ]
    }

    #[test]
    fn guards_are_mutually_exclusive_everywhere() {
        // Exhaustive over the interesting grid, then a seeded random sweep:
        // no (now, expiry, ε) may be simultaneously claimable and breakable.
        let grid = interesting_micros();
        for &n in &grid {
            for &e in &grid {
                for &eps in &grid {
                    let now = SimTime::from_micros(n);
                    let exp = SimTime::from_micros(e);
                    let eps = SimDuration::from_micros(eps);
                    assert!(
                        !(lease_claimable(now, exp, eps) && lease_breakable(now, exp, eps)),
                        "both guards fired for now={n} expiry={e} eps={eps:?}"
                    );
                }
            }
        }
        let mut s = 0xD01F_ACE5u64;
        for _ in 0..100_000 {
            let now = SimTime::from_micros(splitmix(&mut s));
            let exp = SimTime::from_micros(splitmix(&mut s));
            let eps = SimDuration::from_micros(splitmix(&mut s));
            assert!(
                !(lease_claimable(now, exp, eps) && lease_breakable(now, exp, eps)),
                "both guards fired for now={now:?} expiry={exp:?} eps={eps:?}"
            );
        }
    }

    #[test]
    fn guards_are_monotone_in_epsilon() {
        // Growing ε can only retract a guard, never grant one: claimable
        // and breakable are both antitone in ε.
        let mut s = 0x5EED_0001u64;
        for _ in 0..50_000 {
            let now = SimTime::from_micros(splitmix(&mut s));
            let exp = SimTime::from_micros(splitmix(&mut s));
            let e1 = splitmix(&mut s);
            let e2 = e1.saturating_add(splitmix(&mut s) % 1_000_000_000);
            let (small, large) = (SimDuration::from_micros(e1), SimDuration::from_micros(e2));
            if lease_claimable(now, exp, large) {
                assert!(
                    lease_claimable(now, exp, small),
                    "claim guard not antitone at now={now:?} expiry={exp:?}"
                );
            }
            if lease_breakable(now, exp, large) {
                assert!(
                    lease_breakable(now, exp, small),
                    "break guard not antitone at now={now:?} expiry={exp:?}"
                );
            }
        }
    }

    #[test]
    fn guards_fail_closed_at_the_saturation_edge() {
        // Near u64::MAX µs (far beyond the §X-A3 v2s bound) the saturating
        // sums pin instead of wrapping: neither guard can fire spuriously.
        let eps = SimDuration::from_micros(10);
        let max = SimTime::from_micros(u64::MAX);
        assert!(!lease_claimable(max, max, eps));
        assert!(
            !lease_claimable(SimTime::from_micros(u64::MAX - 5), max, eps),
            "now + ε saturates to MAX, which is not < MAX"
        );
        assert!(lease_breakable(
            max,
            SimTime::from_micros(u64::MAX - 11),
            eps
        ));
        assert!(!lease_breakable(max, max, eps));
        // At the v2s reference bound for T = 600s everything still behaves:
        // a lease minted at the last representable reference's epoch.
        let bound = v2s().max_lock_ref().saturating_mul(600_000_000);
        let expiry = SimTime::from_micros(bound);
        assert!(lease_claimable(
            SimTime::from_micros(bound - 100),
            expiry,
            eps
        ));
        assert!(lease_breakable(
            SimTime::from_micros(bound.saturating_add(100)),
            expiry,
            eps
        ));
    }

    #[test]
    fn zero_epsilon_reduces_to_strict_comparison() {
        let mut s = 0xABCD_EF01u64;
        for _ in 0..20_000 {
            let n = splitmix(&mut s);
            let e = splitmix(&mut s);
            let now = SimTime::from_micros(n);
            let exp = SimTime::from_micros(e);
            assert_eq!(lease_claimable(now, exp, SimDuration::ZERO), n < e);
            assert_eq!(lease_breakable(now, exp, SimDuration::ZERO), n > e);
        }
    }
}
