//! Per-key contention-adaptive locking: the controller that lets MUSIC
//! survive a flash crowd without livelock or starvation.
//!
//! The controller is fed by *measured* signals — the grant-wait the client
//! already observes per section, the think time between sections, and the
//! queue depth the lock store reports — and drives three behaviors:
//!
//! 1. **spin-then-queue** — below the contention threshold ([`Mode::Cool`])
//!    the acquire loop runs a bounded budget of tight optimistic head
//!    polls (cheap local peeks) before paying jittered exponential
//!    backoff; above it ([`Mode::Hot`]) the client enqueues immediately
//!    (claiming its FIFO position early) and stretches the poll backoff so
//!    a deep queue is not hammered.
//! 2. **lease-window auto-tuning** — the static `lease_window` knob is
//!    replaced by an EWMA of observed think time, clamped to a safety
//!    floor/ceiling (a mis-sized window is worse than none — Ablation 5).
//! 3. **enqueue combining** — in `Hot` mode, same-key waiter enqueues are
//!    batched into one LWT round (`LockMutation::EnqueueBatch`),
//!    preserving arrival order so the FIFO-with-preemption refinement
//!    stays clean.
//!
//! Two guard rails complete the graceful-degradation floor: a bounded
//! queue-depth **admission guard** that fast-rejects with
//! [`MusicError::Overloaded`](crate::MusicError) instead of livelocking,
//! and an **anti-starvation** rule that suspends the lease fast path for a
//! key when the grant-wait EWMA exceeds the fairness bound or the lease is
//! observed contended (a broken lease at re-enter, or a release that found
//! competitors queued) — so a near client cannot monopolize a hot key via
//! 0-RTT lease re-entries while far sites pay the break path forever.
//! While suspended, an `enter` that finds the queue empty also *yields*
//! (bounded by [`ContentionKnobs::yield_patience`]) for a competitor's
//! enqueue to land before racing its own in: suspension alone is not
//! enough when the monopolist can re-enqueue in microseconds and the far
//! site needs 4 WAN round trips to get a reference into the queue.
//!
//! All state transitions go through **hysteresis** (strictly separated
//! enter/exit thresholds), so no constant input signal can make the
//! controller oscillate; the arithmetic is pure, integer-only, and
//! overflow-free (see the `ewma_update` / `next_mode` / `clamp_window`
//! properties in the tests), which keeps seeded simulations byte-identical.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use music_simnet::time::SimDuration;

/// The per-key locking strategy the controller selects.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Mode {
    /// Low contention: spin (bounded tight head polls) before backing
    /// off; enqueue singly; lease retention allowed.
    #[default]
    Cool,
    /// High contention: enqueue immediately through the combiner, stretch
    /// backoff, and suspend lease retention (anti-starvation).
    Hot,
}

impl Mode {
    /// Stable label for telemetry (`strategySwitch` events).
    pub fn label(self) -> &'static str {
        match self {
            Mode::Cool => "cool",
            Mode::Hot => "hot",
        }
    }
}

/// Tunables for the contention controller. Off by default — a default
/// [`MusicConfig`](crate::MusicConfig) behaves exactly as before this
/// module existed (every baseline trace and BENCH artifact is unchanged).
#[derive(Copy, Clone, Debug)]
pub struct ContentionKnobs {
    /// Master switch; `false` (the default) disables every adaptive
    /// behavior and all controller bookkeeping.
    pub enabled: bool,
    /// EWMA smoothing: α = 1 / 2^`ewma_shift`.
    pub ewma_shift: u32,
    /// Grant-wait EWMA (µs) at or above which a key switches to
    /// [`Mode::Hot`].
    pub hot_enter_us: u64,
    /// Grant-wait EWMA (µs) at or below which a hot key cools down. Must
    /// be strictly below [`ContentionKnobs::hot_enter_us`] (the
    /// constructor enforces the gap), so the switch has hysteresis and
    /// cannot oscillate on a constant signal.
    pub hot_exit_us: u64,
    /// Bounded optimistic head polls (spins) the acquire loop runs before
    /// exponential backoff, in `Cool` mode. `Hot` mode spins zero times.
    pub spin_polls: u32,
    /// In `Hot` mode the acquire backoff base is stretched by
    /// 2^`hot_backoff_shift`.
    pub hot_backoff_shift: u32,
    /// Batch same-key waiter enqueues into one LWT round while `Hot`.
    pub combine: bool,
    /// Admission guard: reject `enter` when the observed queue depth
    /// reaches this bound. `0` disables the guard.
    pub max_queue_depth: usize,
    /// Base client back-off suggested by an admission rejection; the
    /// suggestion grows linearly with the excess depth (capped at 64×).
    pub retry_after_base: SimDuration,
    /// Auto-tuned lease-window clamp floor: never mint a lease shorter
    /// than this (a too-short lease is pure overhead — it is broken or
    /// revoked before the think time elapses).
    pub lease_floor: SimDuration,
    /// Auto-tuned lease-window clamp ceiling: never mint a lease longer
    /// than this (a too-long lease holds competitors hostage for the
    /// whole break path).
    pub lease_ceil: SimDuration,
    /// Anti-starvation fairness bound: when a key's grant-wait EWMA (µs)
    /// exceeds this, lease retention is suspended for the key so every
    /// entry goes through the FIFO queue. `0` means "use `hot_enter_us`".
    pub fairness_wait_us: u64,
    /// How many sections lease retention stays suspended after observed
    /// lease contention (a broken lease at re-enter, or competitors
    /// queued at release).
    pub lease_cooloff: u32,
    /// Anti-starvation politeness bound: while lease retention is
    /// suspended (the key is known-contended), an `enter` that finds the
    /// local lock queue *empty* waits up to this long for a competitor's
    /// reference to land before enqueueing its own — a near client can
    /// re-enqueue in microseconds while a far site pays 4 WAN round
    /// trips, so racing into the empty queue re-creates the monopoly the
    /// suspension just broke. Observing a competitor refreshes the
    /// suspension. `0` disables the yield.
    pub yield_patience: SimDuration,
}

impl Default for ContentionKnobs {
    fn default() -> Self {
        ContentionKnobs {
            enabled: false,
            ewma_shift: 2,
            hot_enter_us: 400_000,
            hot_exit_us: 100_000,
            spin_polls: 8,
            hot_backoff_shift: 2,
            combine: true,
            max_queue_depth: 0,
            retry_after_base: SimDuration::from_millis(25),
            lease_floor: SimDuration::from_millis(5),
            lease_ceil: SimDuration::from_secs(8),
            fairness_wait_us: 0,
            lease_cooloff: 8,
            yield_patience: SimDuration::from_secs(1),
        }
    }
}

impl ContentionKnobs {
    /// An enabled controller with the default thresholds, including the
    /// graceful-degradation floor: a bounded lock queue (admission guard)
    /// so a flash crowd is fast-rejected with a retry hint instead of
    /// piling thirty LWT proposers onto one key's ballot.
    pub fn adaptive() -> Self {
        ContentionKnobs {
            enabled: true,
            max_queue_depth: 16,
            ..ContentionKnobs::default()
        }
    }

    /// Validates and normalizes the knobs: the hysteresis gap must be
    /// strict (`hot_exit < hot_enter`), the clamp well-ordered
    /// (`lease_floor ≤ lease_ceil`). Called by the config builder.
    ///
    /// # Panics
    ///
    /// Panics when `enabled` and a constraint is violated.
    pub fn validate(self) -> Self {
        if self.enabled {
            assert!(
                self.hot_exit_us < self.hot_enter_us,
                "hysteresis requires hot_exit_us < hot_enter_us"
            );
            assert!(
                self.lease_floor <= self.lease_ceil,
                "lease clamp floor must not exceed ceiling"
            );
            assert!(self.ewma_shift < 32, "ewma_shift out of range");
        }
        self
    }
}

// ---------------------------------------------------------------------------
// Pure controller arithmetic (property-tested).
// ---------------------------------------------------------------------------

/// One EWMA step with α = 1 / 2^`shift`: moves `prev` toward `sample` by
/// `max(1, |sample − prev| / 2^shift)`.
///
/// Total (no overflow for any inputs) and **bounded**: the result always
/// lies in `[min(prev, sample), max(prev, sample)]`, so a bounded signal
/// keeps the EWMA bounded, and a constant signal converges to it in
/// finitely many steps (the `max(1,·)` floor prevents the integer
/// division from stalling short of the target).
pub const fn ewma_update(prev: u64, sample: u64, shift: u32) -> u64 {
    if sample >= prev {
        let d = sample - prev;
        if d == 0 {
            prev
        } else {
            let step = d >> shift;
            prev + if step == 0 { 1 } else { step }
        }
    } else {
        let d = prev - sample;
        let step = d >> shift;
        prev - if step == 0 { 1 } else { step }
    }
}

/// The hysteresis step: `Cool → Hot` at or above `enter`, `Hot → Cool` at
/// or below `exit`; anywhere between the thresholds the mode is sticky.
///
/// With `exit < enter` (enforced by [`ContentionKnobs::validate`]) no
/// constant `ewma` can produce more than one switch: after a `Cool → Hot`
/// transition at `ewma ≥ enter > exit`, `Hot → Cool` would need
/// `ewma ≤ exit` — a contradiction, and symmetrically for the other
/// direction.
pub const fn next_mode(mode: Mode, ewma: u64, enter: u64, exit: u64) -> Mode {
    match mode {
        Mode::Cool => {
            if ewma >= enter {
                Mode::Hot
            } else {
                Mode::Cool
            }
        }
        Mode::Hot => {
            if ewma <= exit {
                Mode::Cool
            } else {
                Mode::Hot
            }
        }
    }
}

/// Sizes a lease window from the think-time EWMA: twice the observed
/// think time (so an ordinary re-entry lands comfortably inside the
/// window), clamped to `[floor, ceil]`. Saturating, so no input can
/// overflow or escape the clamp.
pub const fn clamp_window(think_ewma_us: u64, floor_us: u64, ceil_us: u64) -> u64 {
    let want = think_ewma_us.saturating_mul(2);
    let lo = if want < floor_us { floor_us } else { want };
    if lo > ceil_us {
        ceil_us
    } else {
        lo
    }
}

/// The back-off an admission rejection suggests: the base grows linearly
/// with the excess queue depth, capped at 64× (mirroring the jittered
/// exponential backoff's range cap).
pub const fn overload_retry_after_us(depth: usize, bound: usize, base_us: u64) -> u64 {
    let excess = if depth >= bound { depth - bound + 1 } else { 1 };
    let mult = if excess > 64 { 64 } else { excess as u64 };
    base_us.saturating_mul(mult)
}

// ---------------------------------------------------------------------------
// Per-key controller state.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct KeyState {
    mode: Mode,
    wait_ewma_us: u64,
    think_ewma_us: u64,
    /// Virtual-time instant of the last release (µs), for think-time
    /// measurement.
    last_release_us: Option<u64>,
    /// Sections left before lease retention may resume.
    lease_suspended: u32,
}

/// The per-client contention controller: one [`KeyState`] per touched
/// key, updated from signals the client measures anyway. Cheap to clone
/// (shared state), deterministic (no wall clock, no RNG).
#[derive(Clone, Debug)]
pub struct ContentionController {
    knobs: ContentionKnobs,
    keys: Rc<RefCell<HashMap<String, KeyState>>>,
}

impl ContentionController {
    /// Builds a controller over validated knobs.
    pub fn new(knobs: ContentionKnobs) -> Self {
        ContentionController {
            knobs: knobs.validate(),
            keys: Rc::new(RefCell::new(HashMap::new())),
        }
    }

    /// Whether any adaptive behavior is active.
    pub fn enabled(&self) -> bool {
        self.knobs.enabled
    }

    /// The knobs this controller runs with.
    pub fn knobs(&self) -> &ContentionKnobs {
        &self.knobs
    }

    /// Current strategy for `key`.
    pub fn mode(&self, key: &str) -> Mode {
        if !self.knobs.enabled {
            return Mode::Cool;
        }
        self.keys.borrow().get(key).map_or(Mode::Cool, |s| s.mode)
    }

    /// Feeds one measured grant wait; returns `Some((new_mode, ewma))`
    /// when the hysteresis switched strategy (for the `strategySwitch`
    /// event).
    pub fn on_grant_wait(&self, key: &str, wait_us: u64) -> Option<(Mode, u64)> {
        if !self.knobs.enabled {
            return None;
        }
        let mut keys = self.keys.borrow_mut();
        let s = keys.entry(key.to_string()).or_default();
        s.wait_ewma_us = ewma_update(s.wait_ewma_us, wait_us, self.knobs.ewma_shift);
        let next = next_mode(
            s.mode,
            s.wait_ewma_us,
            self.knobs.hot_enter_us,
            self.knobs.hot_exit_us,
        );
        let fairness = if self.knobs.fairness_wait_us == 0 {
            self.knobs.hot_enter_us
        } else {
            self.knobs.fairness_wait_us
        };
        if s.wait_ewma_us >= fairness {
            // Anti-starvation: a site waiting this long must not feed a
            // lease monopoly; force every entry through the FIFO queue
            // for a cooloff.
            s.lease_suspended = s.lease_suspended.max(self.knobs.lease_cooloff);
        }
        if next != s.mode {
            s.mode = next;
            return Some((next, s.wait_ewma_us));
        }
        None
    }

    /// Notes an `enter` starting at virtual-time `now_us`: measures the
    /// think time since the previous release and decays the lease
    /// suspension by one section.
    pub fn on_enter(&self, key: &str, now_us: u64) {
        if !self.knobs.enabled {
            return;
        }
        let mut keys = self.keys.borrow_mut();
        let s = keys.entry(key.to_string()).or_default();
        if let Some(rel) = s.last_release_us.take() {
            let think = now_us.saturating_sub(rel);
            s.think_ewma_us = ewma_update(s.think_ewma_us, think, self.knobs.ewma_shift);
        }
        s.lease_suspended = s.lease_suspended.saturating_sub(1);
    }

    /// Notes a release at virtual-time `now_us` (think-time measurement
    /// anchor).
    pub fn on_release(&self, key: &str, now_us: u64) {
        if !self.knobs.enabled {
            return;
        }
        let mut keys = self.keys.borrow_mut();
        let s = keys.entry(key.to_string()).or_default();
        s.last_release_us = Some(now_us);
    }

    /// Notes observed lease contention on `key` — the cached lease was
    /// found broken at re-enter, or the release saw competitors queued.
    /// Suspends lease retention for the configured cooloff.
    pub fn note_lease_contention(&self, key: &str) {
        if !self.knobs.enabled {
            return;
        }
        let mut keys = self.keys.borrow_mut();
        let s = keys.entry(key.to_string()).or_default();
        s.lease_suspended = s.lease_suspended.max(self.knobs.lease_cooloff);
    }

    /// The politeness bound for an `enter` on `key`, when one applies:
    /// `Some(patience)` while lease retention is suspended (or the key is
    /// `Hot`) and the yield is configured — the caller should wait up to
    /// `patience` for a competitor to appear in an empty queue before
    /// enqueueing. `None` means enqueue immediately.
    pub fn enqueue_yield(&self, key: &str) -> Option<SimDuration> {
        if !self.knobs.enabled || self.knobs.yield_patience == SimDuration::ZERO {
            return None;
        }
        if self.lease_retention_allowed(key) {
            None
        } else {
            Some(self.knobs.yield_patience)
        }
    }

    /// Whether the client may retain a lease on `key` at release time.
    /// `false` while the key is `Hot` or inside a lease-contention
    /// cooloff (the anti-starvation rule).
    pub fn lease_retention_allowed(&self, key: &str) -> bool {
        if !self.knobs.enabled {
            return true;
        }
        let keys = self.keys.borrow();
        keys.get(key)
            .is_none_or(|s| s.mode == Mode::Cool && s.lease_suspended == 0)
    }

    /// The auto-tuned lease window for `key`: sized from the think-time
    /// EWMA, clamped to the safety floor/ceiling. Falls back to the
    /// static `window` while no think time has been observed yet, still
    /// clamped (the tuner must never mint below the floor).
    pub fn auto_window(&self, key: &str, window: SimDuration) -> SimDuration {
        if !self.knobs.enabled {
            return window;
        }
        let floor = self.knobs.lease_floor.as_micros();
        let ceil = self.knobs.lease_ceil.as_micros();
        let think = self.keys.borrow().get(key).map_or(0, |s| s.think_ewma_us);
        let us = if think == 0 {
            clamp_window(window.as_micros() / 2, floor, ceil)
        } else {
            clamp_window(think, floor, ceil)
        };
        SimDuration::from_micros(us)
    }

    /// How many tight optimistic head polls the acquire loop may run
    /// before exponential backoff: the spin budget in `Cool`, zero in
    /// `Hot`.
    pub fn spin_budget(&self, key: &str) -> u32 {
        if !self.knobs.enabled {
            return 0;
        }
        match self.mode(key) {
            Mode::Cool => self.knobs.spin_polls,
            Mode::Hot => 0,
        }
    }

    /// Left-shift applied to the acquire backoff base for `key` (stretch
    /// under contention): 0 in `Cool`, `hot_backoff_shift` in `Hot`.
    pub fn backoff_shift(&self, key: &str) -> u32 {
        if !self.knobs.enabled {
            return 0;
        }
        match self.mode(key) {
            Mode::Cool => 0,
            Mode::Hot => self.knobs.hot_backoff_shift,
        }
    }

    /// Whether same-key enqueues should go through the combiner right
    /// now: only when enabled, configured, and the key is `Hot` (in
    /// `Cool` the extra round coordination is pure overhead).
    pub fn combine_now(&self, key: &str) -> bool {
        self.knobs.enabled && self.knobs.combine && self.mode(key) == Mode::Hot
    }

    /// The admission guard: `Err(retry_after)` when `depth` has reached
    /// the configured bound (the graceful-degradation floor). `Ok(())`
    /// when admission control is off or the queue has room.
    pub fn admit(&self, depth: usize) -> Result<(), SimDuration> {
        if !self.knobs.enabled || self.knobs.max_queue_depth == 0 {
            return Ok(());
        }
        let bound = self.knobs.max_queue_depth;
        if depth < bound {
            return Ok(());
        }
        Err(SimDuration::from_micros(overload_retry_after_us(
            depth,
            bound,
            self.knobs.retry_after_base.as_micros(),
        )))
    }

    /// The configured admission bound (`0` = off) — lets the client skip
    /// the depth peek entirely when the guard is off.
    pub fn admission_bound(&self) -> usize {
        if self.knobs.enabled {
            self.knobs.max_queue_depth
        } else {
            0
        }
    }

    /// The grant-wait EWMA for `key` (instrumentation/tests).
    pub fn wait_ewma_us(&self, key: &str) -> u64 {
        self.keys.borrow().get(key).map_or(0, |s| s.wait_ewma_us)
    }

    /// The think-time EWMA for `key` (instrumentation/tests).
    pub fn think_ewma_us(&self, key: &str) -> u64 {
        self.keys.borrow().get(key).map_or(0, |s| s.think_ewma_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ewma_is_bounded_between_prev_and_sample() {
        // Property: for ANY (prev, sample, shift) the update lands in
        // [min, max] — randomized over the full u64 range, overflow-free.
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        for _ in 0..50_000 {
            let prev: u64 = rng.gen();
            let sample: u64 = rng.gen();
            let shift: u32 = rng.gen_range(0..32);
            let next = ewma_update(prev, sample, shift);
            assert!(next >= prev.min(sample) && next <= prev.max(sample));
        }
    }

    #[test]
    fn ewma_converges_to_a_constant_signal() {
        for shift in 0..8 {
            let mut v = 1_000_000u64;
            for _ in 0..10_000 {
                v = ewma_update(v, 250, shift);
            }
            assert_eq!(v, 250, "shift {shift} must converge");
            let mut up = 0u64;
            for _ in 0..10_000 {
                up = ewma_update(up, 777, shift);
            }
            assert_eq!(up, 777);
        }
    }

    #[test]
    fn hysteresis_never_oscillates_on_constant_input() {
        // Property: for any constant signal and any exit < enter, the
        // mode switches at most once over an arbitrarily long run.
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20_000 {
            let enter = rng.gen_range(1..u64::MAX);
            let exit = rng.gen_range(0..enter);
            let signal: u64 = rng.gen();
            let mut mode = if rng.gen() { Mode::Cool } else { Mode::Hot };
            let mut switches = 0;
            for _ in 0..64 {
                let next = next_mode(mode, signal, enter, exit);
                if next != mode {
                    switches += 1;
                    mode = next;
                }
            }
            assert!(switches <= 1, "constant signal {signal} oscillated");
        }
    }

    #[test]
    fn clamp_window_respects_floor_and_ceiling_for_any_input() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50_000 {
            let floor = rng.gen_range(0..u64::MAX / 2);
            let ceil = rng.gen_range(floor..u64::MAX);
            let think: u64 = rng.gen();
            let w = clamp_window(think, floor, ceil);
            assert!(
                w >= floor && w <= ceil,
                "window {w} escaped [{floor},{ceil}]"
            );
        }
        // Saturation edge: think * 2 overflows, still clamped.
        assert_eq!(clamp_window(u64::MAX, 5, 100), 100);
        // Zero think maps to the floor.
        assert_eq!(clamp_window(0, 5, 100), 5);
    }

    #[test]
    fn overload_retry_grows_with_excess_and_caps() {
        let base = 1_000;
        let r0 = overload_retry_after_us(4, 4, base);
        let r1 = overload_retry_after_us(8, 4, base);
        assert!(r1 > r0);
        assert_eq!(overload_retry_after_us(10_000, 4, base), base * 64);
        // Degenerate inputs stay total.
        assert_eq!(overload_retry_after_us(0, 4, base), base);
        assert!(overload_retry_after_us(usize::MAX, 1, u64::MAX) == u64::MAX);
    }

    #[test]
    fn controller_switches_hot_and_back_with_hysteresis() {
        let knobs = ContentionKnobs {
            enabled: true,
            hot_enter_us: 1_000,
            hot_exit_us: 200,
            ewma_shift: 0, // EWMA follows the sample exactly
            ..ContentionKnobs::default()
        };
        let c = ContentionController::new(knobs);
        assert_eq!(c.mode("k"), Mode::Cool);
        let sw = c.on_grant_wait("k", 5_000).expect("switches hot");
        assert_eq!(sw.0, Mode::Hot);
        assert_eq!(c.mode("k"), Mode::Hot);
        assert_eq!(c.spin_budget("k"), 0);
        assert!(c.backoff_shift("k") > 0);
        assert!(c.combine_now("k"));
        // Between the thresholds: sticky.
        assert!(c.on_grant_wait("k", 500).is_none());
        assert_eq!(c.mode("k"), Mode::Hot);
        // Below exit: cools down.
        let sw = c.on_grant_wait("k", 10).expect("cools");
        assert_eq!(sw.0, Mode::Cool);
        assert!(c.spin_budget("k") > 0);
        assert!(!c.combine_now("k"));
    }

    #[test]
    fn lease_retention_suspends_under_contention_and_recovers() {
        let knobs = ContentionKnobs {
            enabled: true,
            lease_cooloff: 2,
            ..ContentionKnobs::default()
        };
        let c = ContentionController::new(knobs);
        assert!(c.lease_retention_allowed("k"));
        c.note_lease_contention("k");
        assert!(!c.lease_retention_allowed("k"));
        c.on_enter("k", 1);
        assert!(!c.lease_retention_allowed("k"));
        c.on_enter("k", 2);
        assert!(c.lease_retention_allowed("k"), "cooloff elapsed");
    }

    #[test]
    fn auto_window_tracks_think_time_within_clamp() {
        let knobs = ContentionKnobs {
            enabled: true,
            ewma_shift: 0,
            lease_floor: SimDuration::from_micros(1_000),
            lease_ceil: SimDuration::from_micros(50_000),
            ..ContentionKnobs::default()
        };
        let c = ContentionController::new(knobs);
        // No observation yet: static window, clamped.
        let w = c.auto_window("k", SimDuration::from_secs(2));
        assert_eq!(w, SimDuration::from_micros(50_000));
        // Observe a 10ms think time: window = 2 × think.
        c.on_release("k", 1_000);
        c.on_enter("k", 11_000);
        let w = c.auto_window("k", SimDuration::from_secs(2));
        assert_eq!(w, SimDuration::from_micros(20_000));
        // A tiny think time cannot dip below the floor.
        c.on_release("k", 20_000);
        c.on_enter("k", 20_001);
        for _ in 0..4 {
            c.on_release("k", 30_000);
            c.on_enter("k", 30_001);
        }
        let w = c.auto_window("k", SimDuration::from_secs(2));
        assert!(w >= SimDuration::from_micros(1_000));
    }

    #[test]
    fn admission_guard_rejects_at_bound_with_growing_backoff() {
        let knobs = ContentionKnobs {
            enabled: true,
            max_queue_depth: 4,
            retry_after_base: SimDuration::from_micros(100),
            ..ContentionKnobs::default()
        };
        let c = ContentionController::new(knobs);
        assert!(c.admit(0).is_ok());
        assert!(c.admit(3).is_ok());
        let r4 = c.admit(4).unwrap_err();
        let r9 = c.admit(9).unwrap_err();
        assert!(r9 > r4);
    }

    #[test]
    fn disabled_controller_is_inert() {
        let c = ContentionController::new(ContentionKnobs::default());
        assert!(!c.enabled());
        assert!(c.on_grant_wait("k", u64::MAX).is_none());
        assert_eq!(c.mode("k"), Mode::Cool);
        assert_eq!(c.spin_budget("k"), 0);
        assert_eq!(c.backoff_shift("k"), 0);
        assert!(!c.combine_now("k"));
        assert!(c.admit(usize::MAX).is_ok());
        assert!(c.lease_retention_allowed("k"));
        let w = SimDuration::from_secs(2);
        assert_eq!(c.auto_window("k", w), w);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_rejected() {
        let _ = ContentionController::new(ContentionKnobs {
            enabled: true,
            hot_enter_us: 100,
            hot_exit_us: 100,
            ..ContentionKnobs::default()
        });
    }
}
