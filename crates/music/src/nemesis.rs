//! The nemesis: a deterministic, seeded fault-schedule engine.
//!
//! A *nemesis run* composes a randomized timeline of faults — crashes and
//! restarts (including rolling restarts), whole-site partitions,
//! *asymmetric* per-direction link cuts, loss bursts, and **gray
//! failures** (per-node service-time multipliers: the node answers, just
//! slowly) — and drives it against a randomized multi-client
//! critical-section workload while the failure detector (watchdog) and
//! anti-entropy (repair daemon) run as they would in production. Every
//! fault heals before the horizon, so each run must end with the system
//! converged and the recorded trace ECF-clean.
//!
//! Two timeline *lanes* compose faults:
//!
//! * the **node lane** — crash/restart, partitions, asymmetric cuts —
//!   runs its faults sequentially, keeping at most one node down or one
//!   site cut at a time (so a store quorum always exists and ECF-level
//!   liveness is merely *delayed*, never lost);
//! * the **degradation lane** — loss bursts and gray failures — overlaps
//!   the node lane freely, so a crash can land *while* the network drops
//!   a tenth of its packets and a surviving store node runs 8× slow.
//!
//! Everything — schedule, workload, jitter — is a pure function of the
//! `(profile, seed, mode)` triple: running the same triple twice yields
//! byte-identical event logs and metrics, which is what the replay
//! checks in `tests/` assert.

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use music_simnet::combinators::timeout;
use music_simnet::executor::Sim;
use music_simnet::net::{NetConfig, Network, NodeId};
use music_simnet::time::{SimDuration, SimTime};
use music_simnet::topology::{LatencyProfile, SiteId};
use music_telemetry::{
    check, EcfReport, Event, EventKind, MetricsSnapshot, OnlineConfig, OnlineReport, Recorder,
    Scope,
};
use music_workload::FlashCrowd;

use crate::config::{MusicConfig, WriteMode};
use crate::error::AcquireOutcome;
use crate::repair::RepairDaemon;
use crate::replica::MusicReplica;
use crate::system::{ClockDrift, MusicSystem, MusicSystemBuilder};
use crate::watchdog::Watchdog;

/// Which client-visible protocol variant a nemesis run exercises.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RunMode {
    /// Every `criticalPut` awaits its quorum ack (the paper's mode).
    Sync,
    /// Puts are pipelined with a bounded in-flight window.
    Pipelined,
    /// Clean releases retain a lease; re-entries take the fast path.
    Leased,
}

impl RunMode {
    /// All modes, in the order the CLI cycles through them.
    pub const ALL: [RunMode; 3] = [RunMode::Sync, RunMode::Pipelined, RunMode::Leased];

    /// Stable lowercase name for telemetry and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            RunMode::Sync => "sync",
            RunMode::Pipelined => "pipelined",
            RunMode::Leased => "leased",
        }
    }

    /// Parses a CLI mode name.
    pub fn parse(s: &str) -> Option<RunMode> {
        Self::ALL.into_iter().find(|m| m.name() == s)
    }
}

/// The clock-drift lane: a standing, whole-run fault giving every MUSIC
/// replica a seeded skewed clock (|skew| ≤ `max_skew` for the run), while
/// the protocol's drift-safe lease guards assume an uncertainty bound of
/// `epsilon` ([`MusicConfig::clock_epsilon`]).
///
/// With `max_skew <= epsilon` every schedule must stay ECF-clean with a
/// clean queue refinement; `max_skew > epsilon` is the documented unsafe
/// region (see [`run_drift_unsafe_demo`]).
#[derive(Copy, Clone, Debug)]
pub struct DriftLane {
    /// Per-replica skew budget over the run.
    pub max_skew: SimDuration,
    /// The ε the lease guards are configured with.
    pub epsilon: SimDuration,
}

/// Tunables of one nemesis run. The defaults are what the CLI and CI use.
#[derive(Clone, Debug)]
pub struct NemesisOptions {
    /// Write-path variant under test.
    pub mode: RunMode,
    /// Concurrent workload clients (each homed at a seeded random site).
    pub clients: usize,
    /// Critical sections each client attempts.
    pub sections_per_client: usize,
    /// Distinct keys the workload contends over.
    pub keys: usize,
    /// Faults drawn for the node lane.
    pub node_faults: usize,
    /// Faults drawn for the degradation lane.
    pub degradation_faults: usize,
    /// Clock-drift lane (`None` keeps every node on true virtual time).
    pub drift: Option<DriftLane>,
    /// Flash-crowd lane: the middle half of every client's sections
    /// converges on one hot key (a [`music_workload::FlashCrowd`]
    /// schedule), and the clients run with the contention-adaptive
    /// controller enabled — so strategy switches, enqueue combining, and
    /// lease-retention suspension are all exercised *while* the other
    /// lanes crash nodes, cut sites, and drift clocks.
    pub flash_crowd: bool,
}

impl NemesisOptions {
    /// Default options for `mode`.
    pub fn new(mode: RunMode) -> Self {
        NemesisOptions {
            mode,
            clients: 3,
            sections_per_client: 4,
            keys: 2,
            node_faults: 4,
            degradation_faults: 2,
            drift: None,
            flash_crowd: false,
        }
    }

    /// These options with the clock-drift lane enabled.
    #[must_use]
    pub fn with_drift(mut self, max_skew: SimDuration, epsilon: SimDuration) -> Self {
        self.drift = Some(DriftLane { max_skew, epsilon });
        self
    }

    /// These options with the flash-crowd lane enabled (hot-key workload
    /// plus the contention-adaptive controller).
    #[must_use]
    pub fn with_flash_crowd(mut self) -> Self {
        self.flash_crowd = true;
        self
    }
}

/// One planned fault: what to inject, when, and for how long.
#[derive(Clone, Debug)]
enum Fault {
    /// A node goes down, then restarts.
    Crash { node: NodeId },
    /// Every store node restarts in turn, one at a time.
    RollingRestart,
    /// A whole site is isolated, then healed.
    PartitionSite { site: u32 },
    /// One *direction* of a site pair is cut (messages from `from` to
    /// `to` vanish; the reverse direction still delivers).
    AsymLink { from: u32, to: u32 },
    /// The network-wide iid loss rate spikes.
    LossBurst { loss: f64 },
    /// A node keeps answering, `mult`× slower (gray failure).
    GrayNode { node: NodeId, mult: f64 },
}

#[derive(Clone, Debug)]
struct PlannedFault {
    start: SimTime,
    duration: SimDuration,
    fault: Fault,
}

impl PlannedFault {
    fn describe(&self) -> String {
        let (kind, target, param) = self.telemetry_triple();
        format!(
            "{}us +{}us {} {} param={}",
            self.start.as_micros(),
            self.duration.as_micros(),
            kind,
            target,
            param
        )
    }

    /// `(fault, target, param)` as recorded in `FaultInject` events.
    fn telemetry_triple(&self) -> (&'static str, String, u64) {
        match &self.fault {
            Fault::Crash { node } => ("crash", format!("n{}", node.0), 0),
            Fault::RollingRestart => ("rollingRestart", "stores".to_string(), 0),
            Fault::PartitionSite { site } => ("partitionSite", format!("site{site}"), 0),
            Fault::AsymLink { from, to } => ("asymLink", format!("site{from}->site{to}"), 0),
            Fault::LossBurst { loss } => {
                ("lossBurst", "net".to_string(), (loss * 1_000_000.0) as u64)
            }
            Fault::GrayNode { node, mult } => {
                ("grayNode", format!("n{}", node.0), (mult * 1_000.0) as u64)
            }
        }
    }
}

/// Everything one nemesis run produces.
#[derive(Debug)]
pub struct NemesisRun {
    /// Human-readable fault schedule, in injection order.
    pub schedule: Vec<String>,
    /// Per-client workload outcome lines, in client order.
    pub outcomes: Vec<String>,
    /// Critical sections that completed cleanly (entered and released).
    pub sections_ok: u64,
    /// Critical sections abandoned to the failure detector.
    pub sections_abandoned: u64,
    /// Final virtual time, in microseconds.
    pub final_time_us: u64,
    /// The recorded event log (empty unless the recorder was tracing).
    pub events: Vec<Event>,
    /// Counter/histogram snapshot (empty if the recorder was off).
    pub metrics: MetricsSnapshot,
    /// ECF checker verdict over `events`.
    pub report: EcfReport,
    /// Streaming checker verdict computed *during* the run (`None`
    /// unless the recorder was tracing). Its ECF core must equal
    /// [`NemesisRun::report`]; its queue layer must be clean.
    pub online: Option<OnlineReport>,
}

/// Draws the node-lane schedule: sequential, gap-separated faults so at
/// most one node is down (or one site cut) at any instant.
fn plan_node_lane(
    rng: &mut SmallRng,
    sys: &MusicSystem,
    sites: usize,
    count: usize,
) -> Vec<PlannedFault> {
    let mut at = SimTime::from_micros(rng.gen_range(200_000..800_000));
    let mut plan = Vec::with_capacity(count);
    for _ in 0..count {
        let duration = SimDuration::from_micros(rng.gen_range(1_500_000..4_000_000));
        let fault = match rng.gen_range(0..6u32) {
            0 => Fault::Crash {
                node: sys.store_nodes()[rng.gen_range(0..sys.store_nodes().len())],
            },
            1 => Fault::Crash {
                node: sys.replicas()[rng.gen_range(0..sys.replicas().len())].node(),
            },
            2 => Fault::RollingRestart,
            3 => Fault::PartitionSite {
                site: rng.gen_range(0..sites as u32),
            },
            _ => {
                let from = rng.gen_range(0..sites as u32);
                let mut to = rng.gen_range(0..sites as u32);
                if to == from {
                    to = (to + 1) % sites as u32;
                }
                Fault::AsymLink { from, to }
            }
        };
        plan.push(PlannedFault {
            start: at,
            duration,
            fault,
        });
        // Heal-to-next-fault gap: long enough for retries and the
        // watchdog to drain the previous fault's fallout.
        at = at + duration + SimDuration::from_micros(rng.gen_range(800_000..2_000_000));
    }
    plan
}

/// Draws the degradation lane: loss bursts and gray nodes, free to
/// overlap the node lane.
fn plan_degradation_lane(rng: &mut SmallRng, sys: &MusicSystem, count: usize) -> Vec<PlannedFault> {
    let mut at = SimTime::from_micros(rng.gen_range(400_000..1_200_000));
    let mut plan = Vec::with_capacity(count);
    for _ in 0..count {
        let duration = SimDuration::from_micros(rng.gen_range(2_000_000..5_000_000));
        let fault = if rng.gen_bool(0.5) {
            Fault::LossBurst {
                loss: rng.gen_range(0.02..0.10),
            }
        } else {
            let all: Vec<NodeId> = sys
                .store_nodes()
                .iter()
                .copied()
                .chain(sys.replicas().iter().map(|r| r.node()))
                .collect();
            Fault::GrayNode {
                node: all[rng.gen_range(0..all.len())],
                mult: rng.gen_range(3.0..10.0),
            }
        };
        plan.push(PlannedFault {
            start: at,
            duration,
            fault,
        });
        at = at + duration + SimDuration::from_micros(rng.gen_range(500_000..1_500_000));
    }
    plan
}

fn record_fault(net: &Network, fault: &'static str, target: String, param: u64, heal: bool) {
    let rec = net.recorder();
    rec.count(
        Scope::Global,
        if heal {
            "nemesis_heals"
        } else {
            "nemesis_faults"
        },
        1,
    );
    if rec.is_tracing() {
        let kind = if heal {
            EventKind::FaultHeal { fault, target }
        } else {
            EventKind::FaultInject {
                fault,
                target,
                param,
            }
        };
        rec.record(net.sim().now().as_micros(), 0, u32::MAX, kind);
    }
}

/// Applies `pf` (inject at `pf.start`, heal `pf.duration` later).
async fn apply_fault(sim: &Sim, net: &Network, sys: &MusicSystem, pf: &PlannedFault) {
    sim.sleep_until(pf.start).await;
    let (kind, target, param) = pf.telemetry_triple();
    match &pf.fault {
        Fault::Crash { node } => {
            record_fault(net, kind, target.clone(), param, false);
            net.set_node_up(*node, false);
            sim.sleep(pf.duration).await;
            net.set_node_up(*node, true);
        }
        Fault::RollingRestart => {
            record_fault(net, kind, target.clone(), param, false);
            let nodes = sys.store_nodes().to_vec();
            let step = SimDuration::from_micros(
                (pf.duration.as_micros() / (2 * nodes.len() as u64)).max(1),
            );
            for node in nodes {
                net.set_node_up(node, false);
                sim.sleep(step).await;
                net.set_node_up(node, true);
                sim.sleep(step).await;
            }
        }
        Fault::PartitionSite { site } => {
            record_fault(net, kind, target.clone(), param, false);
            net.partition_site(SiteId(*site), true);
            sim.sleep(pf.duration).await;
            net.partition_site(SiteId(*site), false);
        }
        Fault::AsymLink { from, to } => {
            record_fault(net, kind, target.clone(), param, false);
            net.partition_direction(SiteId(*from), SiteId(*to), false);
            sim.sleep(pf.duration).await;
            net.partition_direction(SiteId(*from), SiteId(*to), true);
        }
        Fault::LossBurst { loss } => {
            record_fault(net, kind, target.clone(), param, false);
            let before = net.loss();
            net.set_loss(*loss);
            sim.sleep(pf.duration).await;
            net.set_loss(before);
        }
        Fault::GrayNode { node, mult } => {
            record_fault(net, kind, target.clone(), param, false);
            net.set_service_multiplier(*node, *mult);
            sim.sleep(pf.duration).await;
            net.set_service_multiplier(*node, 1.0);
        }
    }
    record_fault(net, kind, target, param, true);
}

/// One workload client: a loop of bounded critical sections over a small
/// contended keyspace. Every failure path is tolerated — an error
/// abandons the section to the watchdog and moves on — because under the
/// nemesis *liveness* is the operating system's job; the run's verdict
/// is the ECF check over the trace.
async fn run_client(
    sys: MusicSystem,
    client_id: usize,
    mode: RunMode,
    sections: usize,
    keys: usize,
    seed: u64,
    flash_crowd: bool,
) -> (u64, u64, String) {
    let sim = sys.sim().clone();
    let mut rng = SmallRng::seed_from_u64(seed ^ (client_id as u64).wrapping_mul(0x9E37));
    let site = rng.gen_range(0..sys.replicas().len());
    let mut client = sys.client_at_site(site);
    match mode {
        RunMode::Sync => {}
        RunMode::Pipelined => {
            client = client.with_write_mode(WriteMode::Pipelined { window: 4 });
        }
        RunMode::Leased => {
            client = client.with_lease_window(SimDuration::from_secs(2));
        }
    }
    // Flash-crowd lane: the middle half of each client's sections lands
    // on the hot key k0 (every client's crowd window coincides, measured
    // in section counts), the rest stay background-uniform.
    let mut crowd = flash_crowd.then(|| {
        FlashCrowd::new(
            keys as u64,
            sections as u64 / 4,
            sections as u64 / 2,
            seed ^ (client_id as u64).wrapping_mul(0xF1A5),
        )
    });
    let mut ok = 0u64;
    let mut abandoned = 0u64;
    for section in 0..sections {
        let key = match crowd.as_mut() {
            Some(fc) => format!("k{}", fc.next_key()),
            None => format!("k{}", rng.gen_range(0..keys)),
        };
        // Stagger entries so clients contend but not in lockstep.
        sim.sleep(SimDuration::from_micros(rng.gen_range(50_000..600_000)))
            .await;
        // Entry is bounded: a section the nemesis makes unenterable for
        // 30 virtual seconds is abandoned, like a timing-out app would.
        let entered = timeout(&sim, SimDuration::from_secs(30), client.enter(&key)).await;
        let cs = match entered {
            Ok(Ok(cs)) => cs,
            Ok(Err(_)) | Err(_) => {
                abandoned += 1;
                continue;
            }
        };
        let mut failed = false;
        let puts = rng.gen_range(1..4u32);
        for p in 0..puts {
            let value = Bytes::from(format!("c{client_id}-s{section}-p{p}").into_bytes());
            let res = timeout(&sim, SimDuration::from_secs(30), cs.put(value)).await;
            if !matches!(res, Ok(Ok(()))) {
                failed = true;
                break;
            }
        }
        if !failed && rng.gen_bool(0.5) {
            let res = timeout(&sim, SimDuration::from_secs(30), cs.get()).await;
            failed = !matches!(res, Ok(Ok(_)));
        }
        if failed {
            // Abandon: drop the guard; the watchdog preempts and the
            // next holder resynchronizes (§IV-B).
            drop(cs);
            abandoned += 1;
            continue;
        }
        match timeout(&sim, SimDuration::from_secs(30), cs.release()).await {
            Ok(Ok(())) => ok += 1,
            Ok(Err(_)) | Err(_) => abandoned += 1,
        }
    }
    let line = format!("client {client_id} @site{site}: {ok} ok, {abandoned} abandoned");
    (ok, abandoned, line)
}

/// Runs one seeded nemesis schedule against one workload and returns the
/// recorded telemetry plus the ECF verdict.
///
/// Deterministic: the same `(profile, seed, options.mode)` triple always
/// produces the identical schedule, workload, event log, and metrics.
pub fn run_nemesis(
    profile: LatencyProfile,
    seed: u64,
    options: NemesisOptions,
    recorder: Recorder,
) -> NemesisRun {
    // Check the run as it executes: attach the streaming checker unless
    // the caller already configured one.
    if recorder.is_tracing() && recorder.online_report().is_none() {
        recorder.attach_online(OnlineConfig::unbounded());
    }
    let net_cfg = NetConfig {
        loss: 0.005,
        jitter_frac: 0.05,
        ..NetConfig::default()
    };
    let music_cfg = MusicConfig {
        // Tight enough that abandoned sections clear within a run.
        failure_timeout: SimDuration::from_secs(4),
        breaker_cooldown: SimDuration::from_millis(500),
        clock_epsilon: options.drift.map_or(SimDuration::ZERO, |d| d.epsilon),
        contention: if options.flash_crowd {
            crate::contention::ContentionKnobs::adaptive()
        } else {
            crate::contention::ContentionKnobs::default()
        },
        ..MusicConfig::default()
    };
    let sys = MusicSystemBuilder::new()
        .profile(profile.clone())
        .net_config(net_cfg)
        .music_config(music_cfg)
        .seed(seed)
        .telemetry(recorder.clone())
        .clock_drift(options.drift.map(|d| ClockDrift::bounded(d.max_skew)))
        .build();
    let sim = sys.sim().clone();
    let sites = profile.site_count();

    // The drift lane is a standing fault: every replica's clock is skewed
    // for the whole run, recorded up front (one inject per drifted node,
    // never healed — skew does not go away).
    if let Some(d) = options.drift {
        for r in sys.replicas() {
            record_fault(
                sys.net(),
                "clockDrift",
                format!("n{}", r.node().0),
                d.max_skew.as_micros(),
                false,
            );
        }
    }

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x004E_454D_4553_4953); // "NEMESIS"
    let node_lane = plan_node_lane(&mut rng, &sys, sites, options.node_faults);
    let degradation_lane = plan_degradation_lane(&mut rng, &sys, options.degradation_faults);
    let mut schedule: Vec<String> = node_lane
        .iter()
        .chain(degradation_lane.iter())
        .map(PlannedFault::describe)
        .collect();
    if let Some(d) = options.drift {
        schedule.insert(
            0,
            format!(
                "0us standing clockDrift all-replicas max_skew={}us epsilon={}us",
                d.max_skew.as_micros(),
                d.epsilon.as_micros()
            ),
        );
    }
    if options.flash_crowd {
        schedule.insert(
            0,
            format!(
                "0us standing flashCrowd all-clients hot-key=k0 \
                 crowd-sections={}..{} adaptive-controller=on",
                options.sections_per_client / 4,
                options.sections_per_client / 4 + options.sections_per_client / 2
            ),
        );
    }

    let sys2 = sys.clone();
    let (sections_ok, sections_abandoned, outcomes) = sim.block_on(async move {
        let sim = sys2.sim().clone();
        let net = sys2.net().clone();

        // Production machinery: one watchdog per site replica watching
        // every workload key, plus a periodic anti-entropy sweeper.
        let dog = Watchdog::new(sys2.replica(0).clone(), SimDuration::from_millis(500));
        for k in 0..options.keys {
            dog.watch(&format!("k{k}"));
        }
        dog.spawn();
        let fixer = RepairDaemon::new(sys2.replica(1).clone(), SimDuration::from_secs(3));
        fixer.spawn();

        // The nemesis lanes.
        let sys_a = sys2.clone();
        let net_a = net.clone();
        let sim_a = sim.clone();
        let lane_a = sim.spawn(async move {
            for pf in &node_lane {
                apply_fault(&sim_a, &net_a, &sys_a, pf).await;
            }
        });
        let sys_b = sys2.clone();
        let net_b = net.clone();
        let sim_b = sim.clone();
        let lane_b = sim.spawn(async move {
            for pf in &degradation_lane {
                apply_fault(&sim_b, &net_b, &sys_b, pf).await;
            }
        });

        // The workload.
        let mut handles = Vec::new();
        for c in 0..options.clients {
            handles.push(sim.spawn(run_client(
                sys2.clone(),
                c,
                options.mode,
                options.sections_per_client,
                options.keys,
                seed,
                options.flash_crowd,
            )));
        }
        let mut ok = 0u64;
        let mut abandoned = 0u64;
        let mut outcomes = Vec::new();
        for h in handles {
            let (o, a, line) = h.await;
            ok += o;
            abandoned += a;
            outcomes.push(line);
        }
        lane_a.await;
        lane_b.await;
        // Let the watchdog clear any section abandoned at the very end,
        // then one final sweep so the run ends converged.
        sim.sleep(SimDuration::from_secs(8)).await;
        fixer.stop();
        fixer.sweep_once().await;
        dog.stop();
        (ok, abandoned, outcomes)
    });

    let final_time_us = sys.sim().now().as_micros();
    let events = recorder.events();
    let metrics = recorder.metrics();
    let report = check(&events);
    let online = recorder.online_report();
    NemesisRun {
        schedule,
        outcomes,
        sections_ok,
        sections_abandoned,
        final_time_us,
        events,
        metrics,
        report,
        online,
    }
}

/// Everything the scripted beyond-ε demonstration produces (see
/// [`run_drift_unsafe_demo`]).
#[derive(Debug)]
pub struct DriftDemo {
    /// Lease revocations the (true-clock) watchdog issued: 1 in every
    /// region — the revocation itself is always legitimate.
    pub revocations: u64,
    /// Outcome names of the holder's two claim attempts, in order.
    pub claim_outcomes: Vec<&'static str>,
    /// `leaseDriftReject{guard:"claim"}` events recorded: the ε guard
    /// turning away a claim that fell inside the uncertainty margin.
    pub claim_drift_rejects: u64,
    /// The recorded event log (empty unless the recorder was tracing).
    pub events: Vec<Event>,
    /// Counter snapshot.
    pub metrics: MetricsSnapshot,
    /// Offline ECF verdict — clean in *every* region: end-to-end ECF
    /// excuses the resurrection as a zombie grant (`v2s` domination keeps
    /// the data plane safe), which is exactly why the queue-refinement
    /// layer exists.
    pub report: EcfReport,
    /// Streaming verdict; in the unsafe region its queue layer records a
    /// `re-grant of collected reference` violation.
    pub online: Option<OnlineReport>,
    /// Final virtual time, in microseconds.
    pub final_time_us: u64,
}

/// The documented unsafe region, demonstrated deterministically.
///
/// Script: a holder whose clock runs `holder_slow_by` behind true time
/// mints a 1 s lease on its own (slow) clock; the revocation's propagation
/// toward the holder's site is frozen (an asymmetric cut standing in for
/// the WAN commit-propagation window); past `until + ε` a true-clock
/// watchdog at another site legitimately revokes the unclaimed lease; the
/// holder then re-claims twice off its stale local view.
///
/// * `holder_slow_by` well beyond `2ε` (plus the revocation's quorum
///   latency): the ε claim guard passes, the collected reference is
///   resurrected, and the second claim's grant announcement is flagged by
///   the lock-queue refinement (`re-grant of collected reference`).
/// * `holder_slow_by` within the ε envelope: the guard rejects the claim
///   — inside the margin with a `leaseDriftReject` event, beyond it as a
///   plain expiry — and every verdict stays clean.
///
/// Deterministic: identical arguments replay byte-identical event logs.
pub fn run_drift_unsafe_demo(
    holder_slow_by: SimDuration,
    epsilon: SimDuration,
    recorder: Recorder,
) -> DriftDemo {
    if recorder.is_tracing() && recorder.online_report().is_none() {
        recorder.attach_online(OnlineConfig::unbounded());
    }
    let music_cfg = MusicConfig {
        failure_timeout: SimDuration::from_secs(4),
        clock_epsilon: epsilon,
        ..MusicConfig::default()
    };
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(NetConfig {
            loss: 0.0,
            jitter_frac: 0.0,
            ..NetConfig::default()
        })
        .music_config(music_cfg)
        .seed(7)
        .telemetry(recorder.clone())
        .build();
    let sim = sys.sim().clone();
    // The holder's replica, re-created over a clock running
    // `holder_slow_by` behind true virtual time (a pure offset: the worst
    // case for the claim guard, and the easiest to reason about).
    let base = sys.replica(0).clone();
    let slow_rt = sim.with_drift(music_simnet::clock::DriftSpec {
        offset_us: -(holder_slow_by.as_micros() as i64),
        ..music_simnet::clock::DriftSpec::NONE
    });
    let slow = MusicReplica::with_runtime(
        base.node(),
        slow_rt,
        base.site(),
        sys.recorder(),
        sys.locks().clone(),
        sys.data().clone(),
        base.config().clone(),
        sys.stats().clone(),
    );
    let sys2 = sys.clone();
    let (revocations, claim_outcomes) = sim.block_on(async move {
        let net = sys2.net().clone();
        let sim = sys2.sim().clone();
        let key = "drift-demo";
        // One clean leased section through the slow replica: the clean
        // release mints the successor lease on the holder's slow clock,
        // so `until` lands `holder_slow_by` early in true time.
        let r1 = slow.create_lock_ref(key).await.expect("enqueue");
        loop {
            match slow.acquire_lock(key, r1).await.expect("acquire") {
                AcquireOutcome::Acquired => break,
                _ => sim.sleep(SimDuration::from_millis(5)).await,
            }
        }
        slow.critical_put(key, r1, Bytes::from_static(b"v1"))
            .await
            .expect("put");
        let grant = slow
            .release_lock_leased(key, r1, SimDuration::from_secs(1))
            .await
            .expect("release")
            .expect("lease retained");
        // Freeze the revocation's propagation toward the holder's site:
        // messages from site 1 (the watchdog's) to site 0 vanish, so the
        // holder's local lock-store view keeps the lease at head — the
        // WAN commit-propagation window, stretched wide enough to script
        // against.
        net.partition_direction(SiteId(1), SiteId(0), false);
        // Past `until + ε`, a true-clock watchdog at site 1 legitimately
        // revokes the unclaimed lease.
        sim.sleep_until(grant.until + epsilon + SimDuration::from_millis(5))
            .await;
        let dog = Watchdog::new(sys2.replica(1).clone(), SimDuration::from_millis(100));
        dog.watch(key);
        dog.scan_once().await;
        // The slow holder re-claims off its stale local view, twice (the
        // claim is idempotent for a live lease, so a duplicate winning
        // poll is ordinarily benign — on a collected reference it is the
        // resurrection's detectable footprint).
        let mut claims = Vec::new();
        for _ in 0..2 {
            let outcome = slow.lease_reenter(key, grant.lock_ref).await;
            claims.push(match outcome {
                Ok(AcquireOutcome::Acquired) => "acquired",
                Ok(AcquireOutcome::NotYet) => "notYet",
                Ok(AcquireOutcome::NoLongerHolder) => "noLongerHolder",
                Err(_) => "error",
            });
            sim.sleep(SimDuration::from_millis(1)).await;
        }
        // Heal and let the stores converge before the verdict.
        net.partition_direction(SiteId(1), SiteId(0), true);
        sim.sleep(SimDuration::from_secs(1)).await;
        (dog.lease_revocations(), claims)
    });
    let final_time_us = sys.sim().now().as_micros();
    let events = recorder.events();
    let claim_drift_rejects = events
        .iter()
        .filter(|e| {
            matches!(
                &e.kind,
                EventKind::LeaseDriftReject { guard, .. } if *guard == "claim"
            )
        })
        .count() as u64;
    let metrics = recorder.metrics();
    let report = check(&events);
    let online = recorder.online_report();
    DriftDemo {
        revocations,
        claim_outcomes,
        claim_drift_rejects,
        events,
        metrics,
        report,
        online,
        final_time_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_seed_deterministic() {
        let sys = MusicSystemBuilder::new().build();
        let sites = 3;
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let pa: Vec<String> = plan_node_lane(&mut a, &sys, sites, 5)
            .iter()
            .map(PlannedFault::describe)
            .collect();
        let pb: Vec<String> = plan_node_lane(&mut b, &sys, sites, 5)
            .iter()
            .map(PlannedFault::describe)
            .collect();
        assert_eq!(pa, pb);
        let mut c = SmallRng::seed_from_u64(10);
        let pc: Vec<String> = plan_node_lane(&mut c, &sys, sites, 5)
            .iter()
            .map(PlannedFault::describe)
            .collect();
        assert_ne!(pa, pc, "different seeds draw different schedules");
    }

    #[test]
    fn node_lane_faults_never_overlap() {
        let sys = MusicSystemBuilder::new().build();
        let mut rng = SmallRng::seed_from_u64(1234);
        let plan = plan_node_lane(&mut rng, &sys, 3, 8);
        for w in plan.windows(2) {
            assert!(
                w[0].start + w[0].duration < w[1].start,
                "node-lane faults must be gap-separated: {:?}",
                w
            );
        }
    }

    #[test]
    fn run_modes_parse_and_name_round_trip() {
        for m in RunMode::ALL {
            assert_eq!(RunMode::parse(m.name()), Some(m));
        }
        assert_eq!(RunMode::parse("bogus"), None);
    }
}
