//! `music-load`: drives critical sections through a running `music-node`
//! cluster over real sockets, then verifies the results.
//!
//! Workload: `--clients` concurrent clients each loop over `--keys`
//! counter keys; every iteration is one full critical section —
//! `enter → criticalGet → parse → criticalPut(n+1) → release`. Because
//! every increment is a read-modify-write under the key's lock, the final
//! counter values must sum to exactly the number of sections completed:
//! any lost update, phantom grant, or stale read shows up as a mismatch.
//!
//! Exits 0 only if every requested section completed, zero protocol
//! errors were observed, and the final counters verify.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use bytes::Bytes;
use music::node::{remote_client, LoadConfig, RemoteMusicClient, CLIENT_ID_BASE};
use music::{MusicConfig, MusicError};
use music_runtime::{NativeRuntime, Runtime};
use music_telemetry::Recorder;

const USAGE: &str = "usage: music-load --peers \"1=host:port,...\" \
[--sections N] [--clients N] [--keys N] [--rf N]";

fn counter_key(k: u64) -> String {
    format!("counter-{k}")
}

fn decode_counter(raw: Option<Bytes>) -> Result<u64, String> {
    match raw {
        None => Ok(0),
        Some(b) => b
            .as_ref()
            .try_into()
            .map(u64::from_be_bytes)
            .map_err(|_| format!("counter value has width {} (want 8)", b.len())),
    }
}

/// One critical section: increment `key`'s counter read-modify-write.
async fn increment(client: &RemoteMusicClient, key: &str) -> Result<(), String> {
    let cs = client.enter(key).await.map_err(|e| e.to_string())?;
    let prev = cs.get().await.map_err(|e| e.to_string())?;
    // A malformed counter is a protocol error, not a client bug: abandon
    // the section so the run fails loudly.
    let next = decode_counter(prev)? + 1;
    cs.put(Bytes::copy_from_slice(&next.to_be_bytes()))
        .await
        .map_err(|e| e.to_string())?;
    cs.release().await.map_err(|e| e.to_string())
}

fn main() {
    let cfg = match LoadConfig::from_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("music-load: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let rt = NativeRuntime::new();
    let recorder = Recorder::off();
    let completed: Rc<RefCell<HashMap<String, u64>>> = Rc::new(RefCell::new(HashMap::new()));
    let errors: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let started = Instant::now();

    let mut handles = Vec::new();
    for c in 0..cfg.clients {
        // Spread sections round-robin so any client count divides the work.
        let quota = cfg.sections / u64::from(cfg.clients)
            + u64::from(u64::from(c) < cfg.sections % u64::from(cfg.clients));
        if quota == 0 {
            continue;
        }
        let client = match remote_client(
            &rt,
            CLIENT_ID_BASE + c,
            &cfg.peers,
            cfg.rf,
            MusicConfig::default(),
            recorder.clone(),
        ) {
            Ok(client) => client,
            Err(e) => {
                eprintln!("music-load: client {c} setup failed: {e}");
                std::process::exit(1);
            }
        };
        let completed = Rc::clone(&completed);
        let errors = Rc::clone(&errors);
        let keys = u64::from(cfg.keys);
        handles.push(rt.spawn(async move {
            for i in 0..quota {
                let key = counter_key((u64::from(c) + i) % keys);
                match increment(&client, &key).await {
                    Ok(()) => *completed.borrow_mut().entry(key).or_insert(0) += 1,
                    Err(e) => errors
                        .borrow_mut()
                        .push(format!("client {c} section on {key}: {e}")),
                }
            }
        }));
    }
    rt.block_on(async move {
        for h in handles {
            h.await;
        }
    });

    let done: u64 = completed.borrow().values().sum();
    let errs = errors.borrow().clone();
    let secs = started.elapsed().as_secs_f64();
    println!(
        "music-load: {done}/{} sections completed, {} errors in {secs:.2}s ({:.1} sections/s)",
        cfg.sections,
        errs.len(),
        done as f64 / secs.max(1e-9),
    );
    for e in &errs {
        eprintln!("music-load: error: {e}");
    }

    // Verify: read every counter under its lock; the values must sum to
    // exactly the sections completed, key by key.
    let verifier = match remote_client(
        &rt,
        CLIENT_ID_BASE + cfg.clients,
        &cfg.peers,
        cfg.rf,
        MusicConfig::default(),
        recorder,
    ) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("music-load: verifier setup failed: {e}");
            std::process::exit(1);
        }
    };
    let keys = u64::from(cfg.keys);
    let expected = completed.borrow().clone();
    let mismatches = rt.block_on(async move {
        let mut mismatches = Vec::new();
        for k in 0..keys {
            let key = counter_key(k);
            let want = expected.get(&key).copied().unwrap_or(0);
            let read = async {
                let cs = verifier.enter(&key).await?;
                let v = cs.get().await?;
                cs.release().await?;
                Ok::<_, MusicError>(v)
            }
            .await;
            match read.map(decode_counter) {
                Ok(Ok(got)) if got == want => {}
                Ok(Ok(got)) => mismatches.push(format!("{key}: counter {got}, want {want}")),
                Ok(Err(e)) => mismatches.push(format!("{key}: {e}")),
                Err(e) => mismatches.push(format!("{key}: verify read failed: {e}")),
            }
        }
        mismatches
    });
    for m in &mismatches {
        eprintln!("music-load: verify: {m}");
    }

    if done == cfg.sections && errs.is_empty() && mismatches.is_empty() {
        println!(
            "music-load: counter check OK ({} keys, total {done})",
            cfg.keys
        );
    } else {
        eprintln!("music-load: FAILED");
        std::process::exit(1);
    }
}
