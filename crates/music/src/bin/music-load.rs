//! `music-load`: drives critical sections through a running `music-node`
//! cluster over real sockets, then verifies the results.
//!
//! Workload: `--clients` concurrent clients each loop over `--keys`
//! counter keys; every iteration is one full critical section —
//! `enter → criticalGet → parse → criticalPut(n+1) → release`. Because
//! every increment is a read-modify-write under the key's lock, the final
//! counter values must sum to exactly the number of sections completed:
//! any lost update, phantom grant, or stale read shows up as a mismatch.
//!
//! `--zipf-theta F` skews key selection Zipfian (θ=1.2 is the paper's
//! hotspot setting); `--flash-crowd` converges every client on key 0 for
//! the middle half of its quota and enables the contention-adaptive
//! controller, so the crowd is absorbed by enqueue combining and the
//! admission guard instead of livelocking the enqueue LWTs.
//!
//! `--online-sample N` additionally streams every protocol event through
//! the in-process online checker (ECF + lock-queue refinement) while the
//! load runs, checking keys whose digest is divisible by `N` in O(live
//! keys) memory — no event log is stored. `--retries K` retries the
//! *idempotent-safe* steps (enter, get, release) up to `K` times per
//! section; puts are never retried, because a timed-out put may have
//! landed and redoing it in a fresh section would double-increment.
//!
//! Exits 0 only if every requested section completed, zero protocol
//! errors were observed, the final counters verify, and (when sampling)
//! the online checker reports no violation.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use bytes::Bytes;
use music::node::{remote_client, LoadConfig, RemoteMusicClient, CLIENT_ID_BASE};
use music::{ContentionKnobs, MusicConfig, MusicError, PeekMode};
use music_runtime::prelude::SimDuration;
use music_runtime::{NativeRuntime, Runtime};
use music_telemetry::{OnlineConfig, Recorder};
use music_workload::Zipfian;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const USAGE: &str = "usage: music-load --peers \"1=host:port,...\" \
[--sections N] [--clients N] [--keys N] [--rf N] \
[--online-sample N] [--key-prefix P] [--retries K] [--peek local|quorum] \
[--zipf-theta F] [--flash-crowd]";

fn counter_key(prefix: &str, k: u64) -> String {
    format!("{prefix}-{k}")
}

fn decode_counter(raw: Option<Bytes>) -> Result<u64, String> {
    match raw {
        None => Ok(0),
        Some(b) => b
            .as_ref()
            .try_into()
            .map(u64::from_be_bytes)
            .map_err(|_| format!("counter value has width {} (want 8)", b.len())),
    }
}

/// One critical section: increment `key`'s counter read-modify-write.
///
/// `retries` bounds re-attempts of the safe steps only. A failed `enter`
/// left nothing held (an orphaned queue ref is the watchdog's job); a
/// failed `get` holds the lock and rereads; a failed `release` retries
/// the idempotent release op itself. A failed `put` aborts the section:
/// the ack may have been lost after the write landed, so any redo would
/// not be a read-modify-write anymore.
async fn increment(
    rt: &NativeRuntime,
    client: &RemoteMusicClient,
    key: &str,
    retries: u32,
) -> Result<(), String> {
    let mut budget = retries;
    let backoff = async |budget: &mut u32, e: MusicError| -> Result<(), String> {
        if *budget == 0 {
            return Err(e.to_string());
        }
        *budget -= 1;
        // The admission guard's fast-reject names its own comeback time;
        // everything else gets the flat transient-failure pause.
        let pause = match e {
            MusicError::Overloaded { retry_after } => retry_after,
            _ => SimDuration::from_millis(100),
        };
        rt.sleep(pause).await;
        Ok(())
    };
    let cs = loop {
        match client.enter(key).await {
            Ok(cs) => break cs,
            Err(e) => backoff(&mut budget, e).await?,
        }
    };
    let prev = loop {
        match cs.get().await {
            Ok(v) => break v,
            Err(e) => backoff(&mut budget, e).await?,
        }
    };
    // A malformed counter is a protocol error, not a client bug: abandon
    // the section so the run fails loudly.
    let next = decode_counter(prev)? + 1;
    cs.put(Bytes::copy_from_slice(&next.to_be_bytes()))
        .await
        .map_err(|e| e.to_string())?;
    // `release` consumes the section; on failure, retry the underlying
    // idempotent release op directly with the captured reference.
    let lock_ref = cs.lock_ref();
    let mut last = match cs.release().await {
        Ok(()) => return Ok(()),
        Err(e) => e,
    };
    loop {
        backoff(&mut budget, last).await?;
        match client.release_lock(key, lock_ref).await {
            Ok(()) => return Ok(()),
            Err(e) => last = e,
        }
    }
}

fn main() {
    let cfg = match LoadConfig::from_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("music-load: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let rt = NativeRuntime::new();
    // Quorum peeks survive any single node's death; local peeks are the
    // paper's default and pin each key's grant polling to its primary.
    // Flash crowds run with the contention-adaptive controller on: the
    // whole point of that pass is the hot-key convergence the controller
    // exists to absorb.
    let mut music_builder = MusicConfig::builder();
    if cfg.peek_quorum {
        music_builder = music_builder.peek_mode(PeekMode::Quorum);
    }
    if cfg.flash_crowd {
        music_builder = music_builder.contention(ContentionKnobs::adaptive());
    }
    let music_cfg = music_builder.build();
    // With sampling on, the recorder feeds the streaming checker and
    // stores nothing; otherwise it is fully off.
    let recorder = if cfg.online_sample > 0 {
        Recorder::online(OnlineConfig::unbounded().with_sampling(cfg.online_sample))
    } else {
        Recorder::off()
    };
    let completed: Rc<RefCell<HashMap<String, u64>>> = Rc::new(RefCell::new(HashMap::new()));
    let errors: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let started = Instant::now();

    let mut handles = Vec::new();
    for c in 0..cfg.clients {
        // Spread sections round-robin so any client count divides the work.
        let quota = cfg.sections / u64::from(cfg.clients)
            + u64::from(u64::from(c) < cfg.sections % u64::from(cfg.clients));
        if quota == 0 {
            continue;
        }
        let client = match remote_client(
            &rt,
            CLIENT_ID_BASE + c,
            &cfg.peers,
            cfg.rf,
            music_cfg.clone(),
            recorder.clone(),
        ) {
            Ok(client) => client,
            Err(e) => {
                eprintln!("music-load: client {c} setup failed: {e}");
                std::process::exit(1);
            }
        };
        let completed = Rc::clone(&completed);
        let errors = Rc::clone(&errors);
        let keys = u64::from(cfg.keys);
        let prefix = cfg.key_prefix.clone();
        let retries = cfg.retries;
        let zipf_theta = cfg.zipf_theta;
        let flash_crowd = cfg.flash_crowd;
        let rt2 = rt.clone();
        handles.push(rt.spawn(async move {
            let zipf = (zipf_theta > 0.0).then(|| Zipfian::with_theta(keys, zipf_theta));
            let mut rng = SmallRng::seed_from_u64(0x6d75_7369_635f_6c64 ^ u64::from(c));
            for i in 0..quota {
                // Flash crowd: the middle half of the quota converges on
                // key 0; the edges keep the configured key distribution.
                let k = if flash_crowd && i >= quota / 4 && i < quota - quota / 4 {
                    0
                } else if let Some(zipf) = &zipf {
                    zipf.sample(&mut rng)
                } else {
                    (u64::from(c) + i) % keys
                };
                let key = counter_key(&prefix, k);
                match increment(&rt2, &client, &key, retries).await {
                    Ok(()) => *completed.borrow_mut().entry(key).or_insert(0) += 1,
                    Err(e) => errors
                        .borrow_mut()
                        .push(format!("client {c} section on {key}: {e}")),
                }
            }
        }));
    }
    rt.block_on(async move {
        for h in handles {
            h.await;
        }
    });

    let done: u64 = completed.borrow().values().sum();
    let errs = errors.borrow().clone();
    let secs = started.elapsed().as_secs_f64();
    // Machine-readable throughput line: `local_cluster.sh` extracts it
    // into the `BENCH_load.json` artifact (the socket-cluster point of
    // the BENCH trajectory, alongside the simulator's `BENCH_*.json`).
    println!(
        "{{\"kind\":\"benchLoad\",\"sections\":{},\"completed\":{done},\"errors\":{},\
         \"clients\":{},\"keys\":{},\"onlineSample\":{},\"elapsedSecs\":{secs:.3},\
         \"sectionsPerSec\":{:.1}}}",
        cfg.sections,
        errs.len(),
        cfg.clients,
        cfg.keys,
        cfg.online_sample,
        done as f64 / secs.max(1e-9),
    );
    println!(
        "music-load: {done}/{} sections completed, {} errors in {secs:.2}s ({:.1} sections/s)",
        cfg.sections,
        errs.len(),
        done as f64 / secs.max(1e-9),
    );
    for e in &errs {
        eprintln!("music-load: error: {e}");
    }

    // Verify: read every counter under its lock; the values must sum to
    // exactly the sections completed, key by key.
    let verifier = match remote_client(
        &rt,
        CLIENT_ID_BASE + cfg.clients,
        &cfg.peers,
        cfg.rf,
        music_cfg,
        recorder.clone(),
    ) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("music-load: verifier setup failed: {e}");
            std::process::exit(1);
        }
    };
    let keys = u64::from(cfg.keys);
    let expected = completed.borrow().clone();
    let prefix = cfg.key_prefix.clone();
    let retries = cfg.retries;
    let rt2 = rt.clone();
    let mismatches = rt.block_on(async move {
        let mut mismatches = Vec::new();
        for k in 0..keys {
            let key = counter_key(&prefix, k);
            let want = expected.get(&key).copied().unwrap_or(0);
            let read = async {
                let mut budget = retries;
                loop {
                    let attempt = async {
                        let cs = verifier.enter(&key).await?;
                        let v = cs.get().await?;
                        cs.release().await?;
                        Ok::<_, MusicError>(v)
                    }
                    .await;
                    match attempt {
                        Ok(v) => return Ok(v),
                        Err(e) if budget == 0 => return Err(e),
                        Err(_) => {
                            budget -= 1;
                            rt2.sleep(SimDuration::from_millis(100)).await;
                        }
                    }
                }
            }
            .await;
            match read.map(decode_counter) {
                Ok(Ok(got)) if got == want => {}
                Ok(Ok(got)) => mismatches.push(format!("{key}: counter {got}, want {want}")),
                Ok(Err(e)) => mismatches.push(format!("{key}: {e}")),
                Err(e) => mismatches.push(format!("{key}: verify read failed: {e}")),
            }
        }
        mismatches
    });
    for m in &mismatches {
        eprintln!("music-load: verify: {m}");
    }

    // With sampling on, the streaming checker saw every event the clients
    // and verifier emitted: report its verdict and fail on violations.
    let mut online_clean = true;
    if let Some(rep) = recorder.online_report() {
        println!("music-load: {rep}");
        if !rep.ok() {
            online_clean = false;
            for v in rep.ecf.violations.iter().chain(&rep.queue_violations) {
                eprintln!("music-load: online: {v}");
            }
        }
    }

    if done == cfg.sections && errs.is_empty() && mismatches.is_empty() && online_clean {
        println!(
            "music-load: counter check OK ({} keys, total {done})",
            cfg.keys
        );
    } else {
        eprintln!("music-load: FAILED");
        std::process::exit(1);
    }
}
