//! `music-node`: serves one MUSIC storage replica — the data table and the
//! lock table, multiplexed by store-tag byte — over length-prefixed TCP
//! frames.
//!
//! The node is pure storage: all protocol coordination (quorum fan-out,
//! LWTs, lock-queue transitions, critical sections) runs client-side in
//! `music-load` or any embedder of [`music::node::remote_client`]. That
//! mirrors the paper's deployment, where MUSIC's logic lives in a library
//! over Cassandra-style stores.
//!
//! ```text
//! music-node --id 1 --peers "1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103"
//! music-node --config node1.toml
//! ```
//!
//! Runs until killed; `scripts/local_cluster.sh` manages a 3-node cluster.

use music::node::{serve_node_frame, NodeConfig};
use music_lockstore::LockPartition;
use music_quorumstore::{DataRow, TableReplica};
use music_runtime::{NativeRuntime, TcpServer};

const USAGE: &str = "usage: music-node [--config FILE] --id N \
--peers \"1=host:port,2=host:port,...\" [--listen host:port] [--rf N]";

fn main() {
    let cfg = match NodeConfig::from_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("music-node: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let server = match TcpServer::bind(cfg.listen) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("music-node: cannot bind {}: {e}", cfg.listen);
            std::process::exit(1);
        }
    };
    println!(
        "music-node {}: serving data+lock stores on {} ({} peers, rf {})",
        cfg.id,
        server.local_addr(),
        cfg.peers.len(),
        cfg.rf
    );

    let rt = NativeRuntime::new();
    let mut data = TableReplica::<DataRow>::default();
    let mut locks = TableReplica::<LockPartition>::default();
    let done = server.serve(&rt, move |raw| serve_node_frame(&mut data, &mut locks, raw));
    // Serve until killed; the drain task only returns on shutdown.
    rt.block_on(done);
}
