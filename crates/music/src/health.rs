//! Per-replica health tracking: a circuit breaker with probationary
//! half-open probes.
//!
//! `MusicClient` fails over across replicas in distance order, but a
//! plain rotation keeps steering attempts into replicas it has just seen
//! fail — with a crashed primary, every operation burns part of its retry
//! budget re-discovering the same dead node. [`ReplicaHealth`] gives the
//! client a memory: after `threshold` consecutive failures a replica's
//! breaker *opens* and the replica is skipped outright; once the cooldown
//! elapses the breaker turns *half-open* and admits exactly one
//! probationary probe. A successful probe closes the breaker (and records
//! how long the replica was quarantined — the recovery-time histogram); a
//! failed probe re-opens it for another cooldown.
//!
//! All state lives behind a `RefCell` shared by the client's clones, and
//! every transition is driven by the caller's virtual `now` — no wall
//! clock, no randomness, so seeded runs replay byte-identically.

use std::cell::RefCell;

use music_simnet::time::{SimDuration, SimTime};
use music_telemetry::{EventKind, Recorder, Scope};

/// Breaker state for one replica.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum State {
    /// Healthy (or not yet proven otherwise); counts consecutive failures.
    Closed { failures: u32 },
    /// Quarantined until `until`; `opened_at` anchors the recovery timer.
    Open { until: SimTime, opened_at: SimTime },
    /// Cooldown elapsed: one probationary probe is in flight.
    HalfOpen { opened_at: SimTime },
}

/// Shared per-replica circuit breakers for one client (and its clones).
#[derive(Debug)]
pub struct ReplicaHealth {
    /// Replica node ids, in the client's preference order (telemetry
    /// attribution only).
    nodes: Vec<u32>,
    states: RefCell<Vec<State>>,
    threshold: u32,
    cooldown: SimDuration,
    recorder: Recorder,
}

impl ReplicaHealth {
    /// Breakers for `nodes.len()` replicas, all starting closed.
    pub fn new(nodes: Vec<u32>, threshold: u32, cooldown: SimDuration, recorder: Recorder) -> Self {
        let states = vec![State::Closed { failures: 0 }; nodes.len()];
        ReplicaHealth {
            nodes,
            states: RefCell::new(states),
            threshold: threshold.max(1),
            cooldown,
            recorder,
        }
    }

    /// Number of tracked replicas.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no replicas are tracked.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether replica `idx`'s breaker is open (still cooling down) at
    /// `now`.
    pub fn is_open(&self, idx: usize, now: SimTime) -> bool {
        matches!(self.states.borrow()[idx], State::Open { until, .. } if now < until)
    }

    /// Picks the replica for the next attempt: the first admitted replica
    /// at or after `preferred` in preference order. An open breaker whose
    /// cooldown has elapsed is admitted as a half-open probe; a breaker
    /// already probing is skipped. If every replica is quarantined the
    /// preferred one is returned anyway — a client with no admissible
    /// replica must still try *somewhere* rather than fail without an
    /// attempt.
    pub fn pick(&self, preferred: usize, now: SimTime, trace: u64) -> usize {
        let n = self.nodes.len();
        for off in 0..n {
            let idx = (preferred + off) % n;
            let mut states = self.states.borrow_mut();
            match states[idx] {
                State::Closed { .. } => return idx,
                State::Open { until, opened_at } if now >= until => {
                    states[idx] = State::HalfOpen { opened_at };
                    drop(states);
                    self.note_probe(idx, now, trace);
                    return idx;
                }
                State::Open { .. } | State::HalfOpen { .. } => {}
            }
        }
        preferred % n
    }

    /// Reports that replica `idx` answered (any protocol-level answer —
    /// even "not yet holder" proves the node is alive). Closes an open or
    /// half-open breaker, recording the quarantine duration.
    pub fn on_success(&self, idx: usize, now: SimTime, trace: u64) {
        let prev = {
            let mut states = self.states.borrow_mut();
            std::mem::replace(&mut states[idx], State::Closed { failures: 0 })
        };
        match prev {
            State::Closed { .. } => {}
            State::Open { opened_at, .. } | State::HalfOpen { opened_at } => {
                self.note_close(idx, now, trace, now.saturating_since(opened_at));
            }
        }
    }

    /// Reports that replica `idx` failed to answer. Trips the breaker
    /// after `threshold` consecutive failures; a failed half-open probe
    /// re-opens immediately (keeping the original `opened_at` so the
    /// recovery histogram spans the whole outage).
    pub fn on_failure(&self, idx: usize, now: SimTime, trace: u64) {
        let tripped = {
            let mut states = self.states.borrow_mut();
            match states[idx] {
                State::Closed { failures } => {
                    let failures = failures + 1;
                    if failures >= self.threshold {
                        states[idx] = State::Open {
                            until: now + self.cooldown,
                            opened_at: now,
                        };
                        Some(failures)
                    } else {
                        states[idx] = State::Closed { failures };
                        None
                    }
                }
                State::HalfOpen { opened_at } => {
                    states[idx] = State::Open {
                        until: now + self.cooldown,
                        opened_at,
                    };
                    None
                }
                State::Open { opened_at, .. } => {
                    // Used via the all-quarantined fallback: extend the
                    // cooldown, keep the outage anchor.
                    states[idx] = State::Open {
                        until: now + self.cooldown,
                        opened_at,
                    };
                    None
                }
            }
        };
        if let Some(failures) = tripped {
            self.note_trip(idx, now, trace, failures);
        }
    }

    fn note_trip(&self, idx: usize, now: SimTime, trace: u64, failures: u32) {
        let node = self.nodes[idx];
        self.recorder.count(Scope::Node(node), "breaker_trips", 1);
        if self.recorder.is_tracing() {
            self.recorder.record(
                now.as_micros(),
                trace,
                node,
                EventKind::BreakerTrip { node, failures },
            );
        }
    }

    fn note_probe(&self, idx: usize, now: SimTime, trace: u64) {
        let node = self.nodes[idx];
        self.recorder.count(Scope::Node(node), "breaker_probes", 1);
        if self.recorder.is_tracing() {
            self.recorder.record(
                now.as_micros(),
                trace,
                node,
                EventKind::BreakerProbe { node },
            );
        }
    }

    fn note_close(&self, idx: usize, now: SimTime, trace: u64, open_for: SimDuration) {
        let node = self.nodes[idx];
        let open_us = open_for.as_micros();
        self.recorder.count(Scope::Node(node), "breaker_closes", 1);
        self.recorder
            .observe(Scope::Node(node), "replica_recovery_us", open_us);
        if self.recorder.is_tracing() {
            self.recorder.record(
                now.as_micros(),
                trace,
                node,
                EventKind::BreakerClose { node, open_us },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn health() -> ReplicaHealth {
        ReplicaHealth::new(
            vec![10, 11, 12],
            3,
            SimDuration::from_millis(1),
            Recorder::metrics_only(),
        )
    }

    #[test]
    fn trips_after_threshold_and_skips_open_replicas() {
        let h = health();
        assert_eq!(h.pick(0, t(0), 0), 0);
        h.on_failure(0, t(0), 0);
        h.on_failure(0, t(1), 0);
        assert!(!h.is_open(0, t(1)), "below threshold stays closed");
        h.on_failure(0, t(2), 0);
        assert!(h.is_open(0, t(2)));
        assert_eq!(h.pick(0, t(3), 0), 1, "open replica is skipped");
    }

    #[test]
    fn success_resets_the_failure_count() {
        let h = health();
        h.on_failure(0, t(0), 0);
        h.on_failure(0, t(1), 0);
        h.on_success(0, t(2), 0);
        h.on_failure(0, t(3), 0);
        h.on_failure(0, t(4), 0);
        assert!(!h.is_open(0, t(4)), "count restarted after a success");
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_failure() {
        let h = health();
        for i in 0..3 {
            h.on_failure(0, t(i), 0);
        }
        // Cooldown not elapsed: skipped. Elapsed: admitted as the probe.
        assert_eq!(h.pick(0, t(500), 0), 1);
        assert_eq!(h.pick(0, t(1_200), 0), 0, "half-open probe admitted");
        // While the probe is in flight the replica is not re-admitted.
        assert_eq!(h.pick(0, t(1_300), 0), 1);
        h.on_failure(0, t(1_400), 0);
        assert!(h.is_open(0, t(1_500)), "failed probe re-opens");
        assert_eq!(h.pick(0, t(2_600), 0), 0, "second probe after cooldown");
        h.on_success(0, t(2_700), 0);
        assert_eq!(h.pick(0, t(2_800), 0), 0, "closed again");
    }

    #[test]
    fn all_quarantined_falls_back_to_preferred() {
        let h = health();
        for idx in 0..3 {
            for i in 0..3 {
                h.on_failure(idx, t(i), 0);
            }
        }
        assert_eq!(h.pick(1, t(10), 0), 1);
    }

    #[test]
    fn recovery_histogram_spans_the_whole_outage() {
        let rec = Recorder::metrics_only();
        let h = ReplicaHealth::new(vec![7], 1, SimDuration::from_millis(1), rec.clone());
        h.on_failure(0, t(100), 0); // opens at 100
        assert_eq!(h.pick(0, t(1_200), 0), 0); // probe
        h.on_failure(0, t(1_250), 0); // probe fails, opened_at stays 100
        assert_eq!(h.pick(0, t(2_400), 0), 0); // probe again
        h.on_success(0, t(2_500), 0);
        let m = rec.metrics();
        let hist = m
            .histogram(Scope::Node(7), "replica_recovery_us")
            .expect("recovery histogram");
        assert_eq!(hist.samples, vec![2_400], "2500 - opened_at(100)");
        assert_eq!(m.get(Scope::Node(7), "breaker_trips"), 1);
        assert_eq!(m.get(Scope::Node(7), "breaker_probes"), 2);
        assert_eq!(m.get(Scope::Node(7), "breaker_closes"), 1);
    }
}
