//! Property-based verification of the jittered backoff (§III-A): for
//! *every* base, attempt, and salt the delay stays inside the
//! `[base, 64×base]` envelope, is a pure function of its inputs (the
//! byte-identical-replay requirement), and distinct salts decorrelate
//! co-located contenders.

use music::backoff::{delay, hash_str, salt, MAX_BACKOFF_FACTOR};
use music_simnet::time::SimDuration;
use proptest::prelude::*;

proptest! {
    #[test]
    fn delay_stays_within_base_and_cap(
        base_us in 1u64..10_000_000,
        attempt in 0u32..1_000,
        s in 0u64..=u64::MAX,
    ) {
        let base = SimDuration::from_micros(base_us);
        let d = delay(base, attempt, s);
        prop_assert!(d >= base, "{d:?} below base {base:?}");
        prop_assert!(
            d <= SimDuration::from_micros(base_us * MAX_BACKOFF_FACTOR),
            "{d:?} above 64×base"
        );
    }

    #[test]
    fn delay_is_a_pure_function(
        base_us in 1u64..1_000_000,
        attempt in 0u32..100,
        s in 0u64..=u64::MAX,
    ) {
        let base = SimDuration::from_micros(base_us);
        // Replay determinism hinges on this: no RNG state, no wall clock.
        prop_assert_eq!(delay(base, attempt, s), delay(base, attempt, s));
    }

    #[test]
    fn distinct_salts_do_not_poll_in_lockstep(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        if a != b {
            let base = SimDuration::from_millis(2);
            let sa: Vec<_> = (0..16).map(|i| delay(base, i, salt(&[a]))).collect();
            let sb: Vec<_> = (0..16).map(|i| delay(base, i, salt(&[b]))).collect();
            // 16 attempts × ≥1ms of jitter range each: a full collision
            // means the salts did not decorrelate.
            prop_assert_ne!(sa, sb);
        }
    }

    #[test]
    fn zero_base_is_clamped_not_zero(attempt in 0u32..100, s in 0u64..=u64::MAX) {
        // A zero poll interval must not produce a zero-delay busy loop.
        let d = delay(SimDuration::ZERO, attempt, s);
        prop_assert!(d >= SimDuration::from_micros(1));
        prop_assert!(d <= SimDuration::from_micros(MAX_BACKOFF_FACTOR));
    }
}

#[test]
fn salt_parts_are_order_sensitive_and_stable() {
    assert_eq!(
        salt(&[hash_str("acquireLock"), 3, 9]),
        salt(&[hash_str("acquireLock"), 3, 9])
    );
    assert_ne!(salt(&[1, 2, 3]), salt(&[3, 2, 1]));
}
