//! End-to-end verification of MUSIC's ECF semantics (§III) on the
//! simulated WAN: exclusivity, latest-state, failure handling, false
//! failure detection, orphan collection, and the duration bound.

use bytes::Bytes;
use music::{
    AcquireOutcome, CriticalError, MusicConfig, MusicSystem, MusicSystemBuilder, PutMode, Watchdog,
};
use music_simnet::prelude::*;

fn quiet_net() -> NetConfig {
    NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    }
}

fn system() -> MusicSystem {
    MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet_net())
        .seed(5)
        .build()
}

fn b(s: &'static str) -> Bytes {
    Bytes::from_static(s.as_bytes())
}

#[test]
fn listing_1_basic_critical_section() {
    let sys = system();
    let client = sys.client_at_site(0);
    sys.sim().clone().block_on(async move {
        let cs = client.enter("k").await.unwrap();
        assert_eq!(cs.get().await.unwrap(), None);
        cs.put(b("v1")).await.unwrap();
        assert_eq!(cs.get().await.unwrap(), Some(b("v1")));
        cs.put(b("v2")).await.unwrap();
        cs.release().await.unwrap();

        // The next critical section (from another site) reads the true value.
        let cs = client.enter("k").await.unwrap();
        assert_eq!(cs.get().await.unwrap(), Some(b("v2")));
        cs.release().await.unwrap();
    });
}

#[test]
fn latest_state_across_sites_and_holders() {
    let sys = system();
    let sim = sys.sim().clone();
    let clients: Vec<_> = (0..3).map(|s| sys.client_at_site(s)).collect();
    sim.block_on(async move {
        let mut expected = None;
        for round in 0..6 {
            let client = &clients[round % 3];
            let cs = client.enter("shared").await.unwrap();
            assert_eq!(
                cs.get().await.unwrap(),
                expected,
                "round {round}: lockholder must see the true value"
            );
            let val = Bytes::from(format!("round-{round}").into_bytes());
            cs.put(val.clone()).await.unwrap();
            expected = Some(val);
            cs.release().await.unwrap();
        }
    });
}

#[test]
fn locks_are_granted_in_request_order() {
    let sys = system();
    let sim = sys.sim().clone();
    let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    // Three clients race for the same key; lockRefs are minted in some
    // order, and grants must follow that order exactly (fairness, §III-A).
    let mut expected = Vec::new();
    for site in 0..3 {
        let client = sys.client_at_site(site);
        let order = std::rc::Rc::clone(&order);
        let replica = sys.replica(site).clone();
        let lr = sim.block_on({
            let replica = replica.clone();
            async move { replica.create_lock_ref("fair").await.unwrap() }
        });
        expected.push(lr);
        let _ = client;
        sim.spawn(async move {
            loop {
                match replica.acquire_lock("fair", lr).await.unwrap() {
                    AcquireOutcome::Acquired => break,
                    AcquireOutcome::NotYet => {
                        // poll again shortly
                    }
                    AcquireOutcome::NoLongerHolder => panic!("preempted in failure-free run"),
                }
            }
            order.borrow_mut().push(lr);
            replica.release_lock("fair", lr).await.unwrap();
        });
    }
    sim.run();
    expected.sort_unstable();
    assert_eq!(*order.borrow(), expected, "grant order = lockRef order");
}

#[test]
fn false_failure_detection_preserves_exclusivity() {
    // §IV-B: a preempted-but-alive client keeps issuing criticalPuts; they
    // must have no effect on the true value, and once its local lock store
    // catches up it is told "youAreNoLongerLockHolder".
    let sys = system();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let a = sys2.replica(0).clone(); // Ohio
        let far = sys2.replica(2).clone(); // Oregon

        let a_ref = a.create_lock_ref("job").await.unwrap();
        while a.acquire_lock("job", a_ref).await.unwrap() != AcquireOutcome::Acquired {}
        a.critical_put("job", a_ref, b("a1")).await.unwrap();

        // A network partition delays A's view; a far replica presumes A
        // failed and preempts it.
        far.forced_release("job", a_ref).await.unwrap();

        // The next client (at the far site) takes over.
        let b_ref = far.create_lock_ref("job").await.unwrap();
        loop {
            match far.acquire_lock("job", b_ref).await.unwrap() {
                AcquireOutcome::Acquired => break,
                _ => sys2.sim().sleep(SimDuration::from_millis(1)).await,
            }
        }
        // acquireLock synchronized the data store: B sees A's last
        // acknowledged put.
        assert_eq!(far.critical_get("job", b_ref).await.unwrap(), Some(b("a1")));
        far.critical_put("job", b_ref, b("b1")).await.unwrap();

        // A — alive, with a possibly stale local lock store — keeps writing.
        // Its puts either get rejected (NoLongerHolder) or are silently
        // ineffective (stale window); the true value must stay B's.
        for i in 0..5 {
            let res = a
                .critical_put(
                    "job",
                    a_ref,
                    Bytes::from(format!("intruder-{i}").into_bytes()),
                )
                .await;
            match res {
                Ok(()) | Err(CriticalError::NotYetHolder) => {}
                Err(CriticalError::NoLongerHolder) => break,
                other => panic!("unexpected: {other:?}"),
            }
            sys2.sim().sleep(SimDuration::from_millis(20)).await;
        }

        // Exclusivity: the lockholder B still reads its own write.
        assert_eq!(far.critical_get("job", b_ref).await.unwrap(), Some(b("b1")));

        // Once A's local store catches up it is told explicitly.
        sys2.sim().sleep(SimDuration::from_millis(200)).await;
        let res = a.critical_put("job", a_ref, b("late")).await;
        assert_eq!(res.unwrap_err(), CriticalError::NoLongerHolder);
        assert_eq!(far.critical_get("job", b_ref).await.unwrap(), Some(b("b1")));
    });
}

#[test]
fn holder_failure_mid_put_synchronizes_next_holder() {
    // A's criticalPut reaches only its own site (no quorum, never
    // acknowledged), A dies, and the next holder must enter a critical
    // section on a *defined* data store — §III-A's refined true value.
    let sys = system();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let a = sys2.replica(0).clone(); // Ohio
        let takeover = sys2.replica(1).clone(); // N. California

        // Seed an acknowledged value first.
        let r0 = a.create_lock_ref("state").await.unwrap();
        while a.acquire_lock("state", r0).await.unwrap() != AcquireOutcome::Acquired {}
        a.critical_put("state", r0, b("stable")).await.unwrap();
        a.release_lock("state", r0).await.unwrap();

        // A acquires again, then its site is partitioned away mid-write.
        let a_ref = a.create_lock_ref("state").await.unwrap();
        while a.acquire_lock("state", a_ref).await.unwrap() != AcquireOutcome::Acquired {}
        sys2.net().partition_site(SiteId(0), true);
        let res = a.critical_put("state", a_ref, b("half-written")).await;
        assert!(
            matches!(res, Err(CriticalError::Store(_))),
            "write must be unacknowledged: {res:?}"
        );
        // A crashes (we simply stop driving it).

        // A surviving replica preempts the dead holder and the next client
        // takes over from the latest *acknowledged* state.
        takeover.forced_release("state", a_ref).await.unwrap();
        let b_ref = takeover.create_lock_ref("state").await.unwrap();
        loop {
            match takeover.acquire_lock("state", b_ref).await.unwrap() {
                AcquireOutcome::Acquired => break,
                _ => sys2.sim().sleep(SimDuration::from_millis(1)).await,
            }
        }
        // The half-written value never reached a quorum, so the committed
        // choice is the stable value.
        assert_eq!(
            takeover.critical_get("state", b_ref).await.unwrap(),
            Some(b("stable"))
        );
        // Critical-Section Invariant: with the holder in Critical state the
        // data store is defined as the true value.
        assert_eq!(sys2.data_store_defined("state"), Some(Some(b("stable"))));
        takeover
            .critical_put("state", b_ref, b("recovered"))
            .await
            .unwrap();
        takeover.release_lock("state", b_ref).await.unwrap();
    });
}

#[test]
fn watchdog_collects_dead_holder_and_orphans() {
    let cfg = MusicConfig {
        failure_timeout: SimDuration::from_secs(2),
        ..MusicConfig::default()
    };
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet_net())
        .music_config(cfg)
        .seed(9)
        .build();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let a = sys2.replica(0).clone();
        let dog = Watchdog::new(sys2.replica(1).clone(), SimDuration::from_millis(500));
        dog.watch("task");
        dog.spawn();

        // A dead holder: acquires, writes, never releases.
        let a_ref = a.create_lock_ref("task").await.unwrap();
        while a.acquire_lock("task", a_ref).await.unwrap() != AcquireOutcome::Acquired {}
        a.critical_put("task", a_ref, b("progress")).await.unwrap();
        // ... A crashes here ...

        // An orphan reference: its client dies before ever acquiring.
        let _orphan = a.create_lock_ref("task").await.unwrap();

        // A healthy client eventually gets the lock despite both.
        sys2.sim().sleep(SimDuration::from_secs(3)).await;
        let c = sys2.replica(2).clone();
        let c_ref = c.create_lock_ref("task").await.unwrap();
        let deadline = sys2.sim().now() + SimDuration::from_secs(20);
        loop {
            match c.acquire_lock("task", c_ref).await.unwrap() {
                AcquireOutcome::Acquired => break,
                _ => {
                    assert!(
                        sys2.sim().now() < deadline,
                        "watchdog failed to clear queue"
                    );
                    sys2.sim().sleep(SimDuration::from_millis(100)).await;
                }
            }
        }
        // Latest state survives the takeover.
        assert_eq!(
            c.critical_get("task", c_ref).await.unwrap(),
            Some(b("progress"))
        );
        assert!(dog.preemptions() >= 2, "dead holder + orphan preempted");
        dog.stop();
        c.release_lock("task", c_ref).await.unwrap();
    });
}

#[test]
fn critical_section_duration_bound_is_enforced() {
    let cfg = MusicConfig {
        t_max: SimDuration::from_secs(5),
        ..MusicConfig::default()
    };
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet_net())
        .music_config(cfg)
        .seed(3)
        .build();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let r = sys2.replica(0).clone();
        let lr = r.create_lock_ref("k").await.unwrap();
        while r.acquire_lock("k", lr).await.unwrap() != AcquireOutcome::Acquired {}
        r.critical_put("k", lr, b("in-time")).await.unwrap();
        sys2.sim().sleep(SimDuration::from_secs(6)).await;
        let res = r.critical_put("k", lr, b("too-late")).await;
        assert_eq!(res.unwrap_err(), CriticalError::Expired);
        // v2s stays sound: the in-time value is still the true value for
        // the next holder.
        r.forced_release("k", lr).await.unwrap();
        let lr2 = r.create_lock_ref("k").await.unwrap();
        while r.acquire_lock("k", lr2).await.unwrap() != AcquireOutcome::Acquired {}
        assert_eq!(r.critical_get("k", lr2).await.unwrap(), Some(b("in-time")));
        r.release_lock("k", lr2).await.unwrap();
    });
}

#[test]
fn client_failover_survives_replica_site_partition() {
    let sys = system();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let client = sys2.client_at_site(0);
        // Warm up: a successful critical section.
        let cs = client.enter("ha").await.unwrap();
        cs.put(b("v")).await.unwrap();
        cs.release().await.unwrap();

        // Partition the client's home site: its own MUSIC replica and the
        // local store node are unreachable from the rest of the world, but
        // the client (modeled at the replica node) can still reach remote
        // replicas? No — same site. Instead: partition site 2 (a remote
        // minority) and verify everything still works.
        sys2.net().partition_site(SiteId(2), true);
        let cs = client.enter("ha").await.unwrap();
        assert_eq!(cs.get().await.unwrap(), Some(b("v")));
        cs.put(b("v2")).await.unwrap();
        cs.release().await.unwrap();
        sys2.net().partition_site(SiteId(2), false);
    });
}

#[test]
fn lock_free_put_get_and_get_all_keys() {
    let sys = system();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let r = sys2.replica(0).clone();
        r.put("jobs/1", b("desc1")).await.unwrap();
        r.put("jobs/2", b("desc2")).await.unwrap();
        assert_eq!(r.get("jobs/1").await.unwrap(), Some(b("desc1")));
        // Also write a critical key, whose synchFlag must not leak into
        // the key scan.
        let lr = r.create_lock_ref("jobs/1").await.unwrap();
        while r.acquire_lock("jobs/1", lr).await.unwrap() != AcquireOutcome::Acquired {}
        r.critical_put("jobs/1", lr, b("claimed")).await.unwrap();
        r.release_lock("jobs/1", lr).await.unwrap();
        let keys = r.get_all_keys().await.unwrap();
        assert_eq!(keys, vec!["jobs/1".to_string(), "jobs/2".to_string()]);
    });
}

#[test]
fn critical_delete_removes_the_true_value() {
    let sys = system();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let r = sys2.replica(0).clone();
        let lr = r.create_lock_ref("doomed").await.unwrap();
        while r.acquire_lock("doomed", lr).await.unwrap() != AcquireOutcome::Acquired {}
        r.critical_put("doomed", lr, b("alive")).await.unwrap();
        r.critical_delete("doomed", lr).await.unwrap();
        assert_eq!(r.critical_get("doomed", lr).await.unwrap(), None);
        r.release_lock("doomed", lr).await.unwrap();

        // The tombstone is the true value for the next holder, and the key
        // no longer shows up in scans.
        let lr2 = r.create_lock_ref("doomed").await.unwrap();
        while r.acquire_lock("doomed", lr2).await.unwrap() != AcquireOutcome::Acquired {}
        assert_eq!(r.critical_get("doomed", lr2).await.unwrap(), None);
        r.release_lock("doomed", lr2).await.unwrap();
        assert!(!r
            .get_all_keys()
            .await
            .unwrap()
            .contains(&"doomed".to_string()));
    });
}

#[test]
fn mscp_mode_critical_puts_use_lwt() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet_net())
        .music_config(MusicConfig::builder().put_mode(PutMode::Lwt).build())
        .seed(4)
        .build();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let r = sys2.replica(0).clone();
        let lr = r.create_lock_ref("k").await.unwrap();
        while r.acquire_lock("k", lr).await.unwrap() != AcquireOutcome::Acquired {}
        let t0 = sys2.sim().now();
        r.critical_put("k", lr, b("v")).await.unwrap();
        let put_latency = sys2.sim().now() - t0;
        // LWT put = 4 RTT ≈ 215ms on 1Us, vs ~54ms for a quorum put: the
        // entire MUSIC-vs-MSCP gap of Fig. 5(b).
        assert!(put_latency.as_millis() >= 200, "LWT put took {put_latency}");
        assert_eq!(r.critical_get("k", lr).await.unwrap(), Some(b("v")));
        r.release_lock("k", lr).await.unwrap();
        assert_eq!(sys2.stats().count(music::OpKind::MscpPut), 1);
    });
}
