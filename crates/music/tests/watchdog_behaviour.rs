//! Failure-detector behaviour: when the watchdog must preempt, when it
//! must hold its fire, and how progress resets its timer.

use bytes::Bytes;
use music::{AcquireOutcome, MusicConfig, MusicSystemBuilder, Watchdog};
use music_simnet::prelude::*;

fn quiet() -> NetConfig {
    NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    }
}

fn system(failure_timeout: SimDuration) -> music::MusicSystem {
    MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .music_config(MusicConfig {
            failure_timeout,
            ..MusicConfig::default()
        })
        .seed(77)
        .build()
}

#[test]
fn healthy_turnover_is_never_preempted() {
    let sys = system(SimDuration::from_secs(3));
    let sim = sys.sim().clone();
    let dog = Watchdog::new(sys.replica(1).clone(), SimDuration::from_millis(250));
    dog.watch("busy");
    dog.spawn();

    // A steady stream of short critical sections: the head keeps changing,
    // so the watchdog's staleness timer keeps resetting.
    let replica = sys.replica(0).clone();
    let sim2 = sim.clone();
    let h = sim.spawn(async move {
        for i in 0..8 {
            let lr = replica.create_lock_ref("busy").await.unwrap();
            while replica.acquire_lock("busy", lr).await.unwrap() != AcquireOutcome::Acquired {}
            replica
                .critical_put("busy", lr, Bytes::from(format!("{i}").into_bytes()))
                .await
                .unwrap();
            // Hold briefly — well below the failure timeout.
            sim2.sleep(SimDuration::from_millis(800)).await;
            replica.release_lock("busy", lr).await.unwrap();
        }
    });
    sim.run_until_complete(h);
    dog.stop();
    assert_eq!(
        dog.preemptions(),
        0,
        "healthy holders must not be preempted"
    );
}

#[test]
fn slow_holder_is_preempted_exactly_once() {
    let sys = system(SimDuration::from_secs(2));
    let sim = sys.sim().clone();
    let dog = Watchdog::new(sys.replica(1).clone(), SimDuration::from_millis(250));
    dog.watch("slow");
    dog.spawn();

    let replica = sys.replica(0).clone();
    let sys2 = sys.clone();
    let h = sim.spawn(async move {
        let lr = replica.create_lock_ref("slow").await.unwrap();
        while replica.acquire_lock("slow", lr).await.unwrap() != AcquireOutcome::Acquired {}
        replica
            .critical_put("slow", lr, Bytes::from_static(b"v"))
            .await
            .unwrap();
        // "Crash": stop driving this client entirely.
        sys2.sim().sleep(SimDuration::from_secs(10)).await;
    });
    sim.run_until_complete(h);
    dog.stop();
    assert_eq!(dog.preemptions(), 1, "one dead holder, one preemption");
}

#[test]
fn watchdog_is_idempotent_across_replicas() {
    // Two watchdogs on different replicas race to preempt the same dead
    // holder; the lock queue must stay sane and the next client proceeds.
    let sys = system(SimDuration::from_secs(2));
    let sim = sys.sim().clone();
    let dog1 = Watchdog::new(sys.replica(1).clone(), SimDuration::from_millis(300));
    let dog2 = Watchdog::new(sys.replica(2).clone(), SimDuration::from_millis(300));
    for d in [&dog1, &dog2] {
        d.watch("contested");
        d.spawn();
    }

    let a = sys.replica(0).clone();
    let sys2 = sys.clone();
    let h = sim.spawn(async move {
        let lr = a.create_lock_ref("contested").await.unwrap();
        while a.acquire_lock("contested", lr).await.unwrap() != AcquireOutcome::Acquired {}
        a.critical_put("contested", lr, Bytes::from_static(b"last"))
            .await
            .unwrap();
        // Holder dies.
        sys2.sim().sleep(SimDuration::from_secs(6)).await;

        // Next client gets the lock and the latest state.
        let b = sys2.replica(1).clone();
        let lr2 = b.create_lock_ref("contested").await.unwrap();
        let deadline = sys2.sim().now() + SimDuration::from_secs(30);
        loop {
            match b.acquire_lock("contested", lr2).await.unwrap() {
                AcquireOutcome::Acquired => break,
                _ => {
                    assert!(sys2.sim().now() < deadline);
                    sys2.sim().sleep(SimDuration::from_millis(100)).await;
                }
            }
        }
        assert_eq!(
            b.critical_get("contested", lr2).await.unwrap(),
            Some(Bytes::from_static(b"last"))
        );
        b.release_lock("contested", lr2).await.unwrap();
    });
    sim.run_until_complete(h);
    dog1.stop();
    dog2.stop();
    assert!(dog1.preemptions() + dog2.preemptions() >= 1);
}

#[test]
fn stop_halts_the_scan_loop() {
    let sys = system(SimDuration::from_secs(1));
    let sim = sys.sim().clone();
    let dog = Watchdog::new(sys.replica(0).clone(), SimDuration::from_millis(100));
    dog.watch("k");
    dog.spawn();
    sim.run_until(SimTime::ZERO + SimDuration::from_millis(500));
    dog.stop();
    // After stop, the simulation quiesces (no immortal periodic task).
    sim.run();
    let t = sim.now();
    sim.run();
    assert_eq!(sim.now(), t, "no further watchdog activity after stop");
}

// ---- Lease handling (driven through `scan_once` for determinism) ----

use music::{AcquireOutcome as AO, LockRef};

#[test]
fn standing_lease_is_exempt_from_the_staleness_timeout() {
    let sys = system(SimDuration::from_secs(2));
    let sim = sys.sim().clone();
    let dog = Watchdog::new(sys.replica(1).clone(), SimDuration::from_millis(250));
    dog.watch("leased");
    let sys2 = sys.clone();
    let dog2 = dog.clone();
    let h = sim.spawn(async move {
        let r = sys2.replica(0).clone();
        let lr = r.create_lock_ref("leased").await.unwrap();
        while r.acquire_lock("leased", lr).await.unwrap() != AO::Acquired {}
        let grant = r
            .release_lock_leased("leased", lr, SimDuration::from_secs(60))
            .await
            .unwrap()
            .expect("clean release retains the lease");
        assert_eq!(grant.lock_ref, LockRef::new(lr.value() + 1));
        // Scan far past the failure timeout: the unclaimed, unexpired
        // lease is a standing reservation, not a stuck holder.
        for _ in 0..20 {
            dog2.scan_once().await;
            sys2.sim().sleep(SimDuration::from_millis(500)).await;
        }
    });
    sim.run_until_complete(h);
    assert_eq!(dog.preemptions(), 0, "standing lease must not be preempted");
    assert_eq!(dog.lease_revocations(), 0);
}

#[test]
fn expired_unclaimed_lease_is_revoked_on_the_first_scan() {
    // An enormous failure timeout proves the revocation is driven by the
    // lease deadline, not by the staleness clock.
    let sys = system(SimDuration::from_secs(1_000));
    let sim = sys.sim().clone();
    let dog = Watchdog::new(sys.replica(1).clone(), SimDuration::from_millis(250));
    dog.watch("leased");
    let sys2 = sys.clone();
    let dog2 = dog.clone();
    let h = sim.spawn(async move {
        let r = sys2.replica(0).clone();
        let lr = r.create_lock_ref("leased").await.unwrap();
        while r.acquire_lock("leased", lr).await.unwrap() != AO::Acquired {}
        r.release_lock_leased("leased", lr, SimDuration::from_millis(500))
            .await
            .unwrap()
            .expect("lease granted");
        // Let the lease lapse unclaimed, plus propagation slack.
        sys2.sim().sleep(SimDuration::from_secs(2)).await;
        dog2.scan_once().await;
        assert_eq!(dog2.lease_revocations(), 1, "revoked on the first scan");
        // The key is free again: a newcomer enters without breaking.
        let b = sys2.replica(2).clone();
        let lr2 = b.create_lock_ref("leased").await.unwrap();
        let deadline = sys2.sim().now() + SimDuration::from_secs(30);
        loop {
            match b.acquire_lock("leased", lr2).await.unwrap() {
                AO::Acquired => break,
                _ => {
                    assert!(sys2.sim().now() < deadline);
                    sys2.sim().sleep(SimDuration::from_millis(100)).await;
                }
            }
        }
        b.release_lock("leased", lr2).await.unwrap();
    });
    sim.run_until_complete(h);
    assert_eq!(dog.preemptions(), 1, "a revocation is a forced release");
    assert_eq!(dog.lease_revocations(), 1);
}

#[test]
fn lease_claim_resets_the_staleness_clock() {
    let sys = system(SimDuration::from_secs(2));
    let sim = sys.sim().clone();
    let dog = Watchdog::new(sys.replica(1).clone(), SimDuration::from_millis(250));
    dog.watch("leased");
    let sys2 = sys.clone();
    let dog2 = dog.clone();
    let h = sim.spawn(async move {
        let r = sys2.replica(0).clone();
        let lr = r.create_lock_ref("leased").await.unwrap();
        while r.acquire_lock("leased", lr).await.unwrap() != AO::Acquired {}
        let grant = r
            .release_lock_leased("leased", lr, SimDuration::from_secs(60))
            .await
            .unwrap()
            .expect("lease granted");
        // Sit unclaimed well past the failure timeout, observing scans.
        sys2.sim().sleep(SimDuration::from_secs(3)).await;
        dog2.scan_once().await;
        assert_eq!(dog2.preemptions(), 0, "exempt while unclaimed");
        // Claim it: from here the holder is ordinary again.
        assert_eq!(
            r.lease_reenter("leased", grant.lock_ref).await.unwrap(),
            AO::Acquired
        );
        dog2.scan_once().await; // observes the claim; clock starts now
        sys2.sim().sleep(SimDuration::from_secs(1)).await;
        dog2.scan_once().await;
        assert_eq!(dog2.preemptions(), 0, "claimed and within the timeout");
        // ...but a claimed holder that stalls is preempted normally, and
        // it is NOT counted as a lease revocation.
        sys2.sim().sleep(SimDuration::from_secs(3)).await;
        dog2.scan_once().await;
        assert_eq!(dog2.preemptions(), 1, "stalled claimant preempted");
        assert_eq!(dog2.lease_revocations(), 0);
    });
    sim.run_until_complete(h);
}

// ---- Skewed observer clocks (the ε break guard) ----

use music::MusicReplica;
use music_simnet::clock::DriftSpec;

const EPS: SimDuration = SimDuration::from_millis(100);

fn eps_system(failure_timeout: SimDuration) -> music::MusicSystem {
    MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .music_config(MusicConfig {
            failure_timeout,
            clock_epsilon: EPS,
            ..MusicConfig::default()
        })
        .seed(77)
        .build()
}

/// A clone of the replica at `site` whose clock reads `offset_us` ahead
/// (negative = behind) of true virtual time.
fn skewed_replica(sys: &music::MusicSystem, site: usize, offset_us: i64) -> MusicReplica {
    let base = sys.replica(site).clone();
    let rt = sys.sim().with_drift(DriftSpec {
        offset_us,
        ..DriftSpec::NONE
    });
    MusicReplica::with_runtime(
        base.node(),
        rt,
        base.site(),
        sys.recorder(),
        sys.locks().clone(),
        sys.data().clone(),
        base.config().clone(),
        sys.stats().clone(),
    )
}

#[test]
fn fast_scan_does_not_revoke_a_live_lease() {
    // The watchdog's clock runs ε fast: right at the edge of what the
    // deployment promises. Pre-ε-guard, such an observer would revoke a
    // lease up to ε before its true deadline — stealing it from a
    // legitimate claimant.
    let sys = eps_system(SimDuration::from_secs(1_000));
    let sim = sys.sim().clone();
    let fast = skewed_replica(&sys, 1, EPS.as_micros() as i64);
    let dog = Watchdog::new(fast, SimDuration::from_millis(250));
    dog.watch("leased");
    let sys2 = sys.clone();
    let dog2 = dog.clone();
    let h = sim.spawn(async move {
        let r = sys2.replica(0).clone();
        let lr = r.create_lock_ref("leased").await.unwrap();
        while r.acquire_lock("leased", lr).await.unwrap() != AO::Acquired {}
        let grant = r
            .release_lock_leased("leased", lr, SimDuration::from_secs(1))
            .await
            .unwrap()
            .expect("lease granted");
        // 150 ms of true time before the deadline: the fast observer's
        // clock already reads the lease as within 50 ms of expiry (alive),
        // and shortly after as expired — neither may revoke.
        sys2.sim()
            .sleep_until(SimTime::from_micros(grant.until.as_micros() - 150_000))
            .await;
        dog2.scan_once().await;
        assert_eq!(dog2.preemptions(), 0, "live lease revoked by a fast scan");
        assert_eq!(dog2.drift_defers(), 0, "observer still reads it as live");
        // The true-clock owner claims the lease it is still entitled to.
        assert_eq!(
            r.lease_reenter("leased", grant.lock_ref).await.unwrap(),
            AO::Acquired,
            "the live lease must remain claimable"
        );
        dog2.scan_once().await;
        assert_eq!(dog2.preemptions(), 0);
    });
    sim.run_until_complete(h);
    assert_eq!(dog.lease_revocations(), 0);
}

#[test]
fn fast_scan_defers_inside_the_margin_then_revokes_past_it() {
    let sys = eps_system(SimDuration::from_secs(1_000));
    let sim = sys.sim().clone();
    let fast = skewed_replica(&sys, 1, EPS.as_micros() as i64);
    let dog = Watchdog::new(fast, SimDuration::from_millis(250));
    dog.watch("leased");
    let sys2 = sys.clone();
    let dog2 = dog.clone();
    let h = sim.spawn(async move {
        let r = sys2.replica(0).clone();
        let lr = r.create_lock_ref("leased").await.unwrap();
        while r.acquire_lock("leased", lr).await.unwrap() != AO::Acquired {}
        let grant = r
            .release_lock_leased("leased", lr, SimDuration::from_secs(1))
            .await
            .unwrap()
            .expect("lease granted");
        // 50 ms of true time before the deadline: the fast observer reads
        // the lease as 50 ms expired — inside the ε margin, where a
        // slower-clocked owner could still legitimately claim. Defer.
        sys2.sim()
            .sleep_until(SimTime::from_micros(grant.until.as_micros() - 50_000))
            .await;
        dog2.scan_once().await;
        assert_eq!(dog2.preemptions(), 0, "margin revocation must defer");
        assert_eq!(dog2.drift_defers(), 1, "the deferral is counted");
        // 150 ms of true time past the deadline: even a clock ε *slow*
        // would now read it expired — revoke.
        sys2.sim()
            .sleep_until(grant.until + SimDuration::from_millis(150))
            .await;
        dog2.scan_once().await;
        assert_eq!(dog2.lease_revocations(), 1, "expired past ε: revoked");
    });
    sim.run_until_complete(h);
    assert_eq!(dog.preemptions(), 1);
}

#[test]
fn slow_scan_still_revokes_an_expired_unclaimed_lease() {
    // The observer's clock runs ε slow: revocation is delayed (never
    // lost) — once even the slow clock is more than ε past the deadline,
    // the lease is collected like any other.
    let sys = eps_system(SimDuration::from_secs(1_000));
    let sim = sys.sim().clone();
    let slow = skewed_replica(&sys, 1, -(EPS.as_micros() as i64));
    let dog = Watchdog::new(slow, SimDuration::from_millis(250));
    dog.watch("leased");
    let sys2 = sys.clone();
    let dog2 = dog.clone();
    let h = sim.spawn(async move {
        let r = sys2.replica(0).clone();
        let lr = r.create_lock_ref("leased").await.unwrap();
        while r.acquire_lock("leased", lr).await.unwrap() != AO::Acquired {}
        let grant = r
            .release_lock_leased("leased", lr, SimDuration::from_millis(500))
            .await
            .unwrap()
            .expect("lease granted");
        // 50 ms of true time past the deadline: the slow observer still
        // reads the lease as live. No revocation, no defer.
        sys2.sim()
            .sleep_until(grant.until + SimDuration::from_millis(50))
            .await;
        dog2.scan_once().await;
        assert_eq!(dog2.preemptions(), 0);
        assert_eq!(dog2.drift_defers(), 0);
        // 150 ms past: the slow clock reads 50 ms expired — inside the
        // margin, deferred.
        sys2.sim()
            .sleep_until(grant.until + SimDuration::from_millis(150))
            .await;
        dog2.scan_once().await;
        assert_eq!(dog2.preemptions(), 0);
        assert_eq!(dog2.drift_defers(), 1);
        // 250 ms past: the slow clock is ε past the deadline plus 50 ms —
        // beyond the margin, revoked.
        sys2.sim()
            .sleep_until(grant.until + SimDuration::from_millis(250))
            .await;
        dog2.scan_once().await;
        assert_eq!(dog2.lease_revocations(), 1, "late scan still revokes");
    });
    sim.run_until_complete(h);
    assert_eq!(dog.preemptions(), 1);
}

#[test]
fn revocation_racing_reentry_stays_exclusive() {
    // The owner's cached grant and the watchdog race after expiry. The
    // re-entry path refuses to claim an expired lease (it cannot know
    // whether the revocation already committed), so the race resolves to
    // the slow path and exactly one revocation.
    let sys = system(SimDuration::from_secs(1_000));
    let sim = sys.sim().clone();
    let dog = Watchdog::new(sys.replica(1).clone(), SimDuration::from_millis(250));
    dog.watch("leased");
    let sys2 = sys.clone();
    let dog2 = dog.clone();
    let h = sim.spawn(async move {
        let r = sys2.replica(0).clone();
        let lr = r.create_lock_ref("leased").await.unwrap();
        while r.acquire_lock("leased", lr).await.unwrap() != AO::Acquired {}
        r.critical_put("leased", lr, Bytes::from_static(b"pre-crash"))
            .await
            .unwrap();
        let grant = r
            .release_lock_leased("leased", lr, SimDuration::from_millis(500))
            .await
            .unwrap()
            .expect("lease granted");
        sys2.sim().sleep(SimDuration::from_secs(2)).await;
        // Owner wakes first with its stale grant: it must refuse.
        assert_eq!(
            r.lease_reenter("leased", grant.lock_ref).await.unwrap(),
            AO::NoLongerHolder,
            "an expired grant must not be claimed"
        );
        dog2.scan_once().await;
        assert_eq!(dog2.lease_revocations(), 1);
        // Owner falls back to the slow path and still sees its own value.
        let lr2 = r.create_lock_ref("leased").await.unwrap();
        let deadline = sys2.sim().now() + SimDuration::from_secs(30);
        loop {
            match r.acquire_lock("leased", lr2).await.unwrap() {
                AO::Acquired => break,
                _ => {
                    assert!(sys2.sim().now() < deadline);
                    sys2.sim().sleep(SimDuration::from_millis(100)).await;
                }
            }
        }
        assert_eq!(
            r.critical_get("leased", lr2).await.unwrap(),
            Some(Bytes::from_static(b"pre-crash"))
        );
        r.release_lock("leased", lr2).await.unwrap();
    });
    sim.run_until_complete(h);
    assert_eq!(dog.preemptions(), 1);
}
