//! Pipelined critical-section writes: window bounding, the flush barriers,
//! the failure path (flush failure marks the `synchFlag` and fails the
//! release), and ECF under a pipelined lockholder crash.

use bytes::Bytes;
use music::{MusicConfig, MusicError, MusicSystemBuilder, Watchdog, WriteMode};
use music_quorumstore::StoreError;
use music_simnet::prelude::*;
use music_telemetry::{check, Recorder};

fn b(s: &'static str) -> Bytes {
    Bytes::from_static(s.as_bytes())
}

fn quiet() -> NetConfig {
    NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    }
}

/// The window bounds in-flight puts, `put` pipelines in `Pipelined` mode,
/// flush barriers drain, and a burst of pipelined puts beats the same
/// burst of synchronous puts by a wide margin.
#[test]
fn pipelined_puts_overlap_and_respect_the_window() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .seed(31)
        .build();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        // Synchronous burst for comparison.
        let sync_client = sys2.client_at_site(0);
        assert_eq!(sync_client.write_mode(), WriteMode::Sync);
        let cs = sync_client.enter("k").await.unwrap();
        let t0 = sys2.sim().now();
        for i in 0..16 {
            cs.put(Bytes::from(format!("s{i}").into_bytes()))
                .await
                .unwrap();
            assert_eq!(cs.in_flight(), 0, "sync puts never queue");
        }
        let sync_elapsed = sys2.sim().now() - t0;
        cs.release().await.unwrap();

        // The same burst, pipelined with a window of 8.
        let piped = sys2
            .client_at_site(0)
            .with_write_mode(WriteMode::Pipelined { window: 8 });
        let cs = piped.enter("k").await.unwrap();
        assert_eq!(cs.write_mode(), WriteMode::Pipelined { window: 8 });
        let t0 = sys2.sim().now();
        let mut peak = 0;
        for i in 0..16 {
            // In Pipelined mode the plain `put` pipelines too.
            cs.put(Bytes::from(format!("p{i}").into_bytes()))
                .await
                .unwrap();
            peak = peak.max(cs.in_flight());
            assert!(cs.in_flight() <= 8, "window exceeded");
        }
        cs.flush().await.unwrap();
        let piped_elapsed = sys2.sim().now() - t0;
        assert_eq!(cs.in_flight(), 0, "flush drains everything");
        assert!(peak > 1, "puts actually overlapped (peak {peak})");
        // criticalGet is a flush barrier and reads its own last write.
        assert_eq!(cs.get().await.unwrap(), Some(b("p15")));
        cs.release().await.unwrap();

        assert!(
            piped_elapsed * 3 < sync_elapsed,
            "pipelining should beat sync by >3x: {piped_elapsed:?} vs {sync_elapsed:?}"
        );
    });
}

/// A flush that cannot acknowledge its writes marks the `synchFlag`,
/// poisons the section, and fails the release — the lock is left queued
/// for the failure detector, and the next holder resynchronizes.
#[test]
fn failed_flush_marks_synch_flag_and_fails_the_release() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .music_config(MusicConfig {
            client_retries: 1,
            failure_timeout: SimDuration::from_secs(2),
            ..MusicConfig::default()
        })
        .seed(32)
        .build();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let piped = sys2
            .client_at_site(0)
            .with_write_mode(WriteMode::Pipelined { window: 4 });
        let cs = piped.enter("k").await.unwrap();
        let lock_ref = cs.lock_ref();
        cs.put(b("v1")).await.unwrap();
        cs.flush().await.unwrap();

        // Two of three store nodes go dark: issued writes can no longer
        // reach a quorum (the local peek still answers, so issuing works).
        let nodes = sys2.store_nodes().to_vec();
        sys2.net().set_node_up(nodes[1], false);
        sys2.net().set_node_up(nodes[2], false);
        cs.put(b("v2")).await.unwrap();
        assert_eq!(cs.in_flight(), 1);

        // Heal while the failed flush is marking the synchFlag, so the
        // mark's retransmits can land.
        let healer = sys2.clone();
        sys2.sim().spawn(async move {
            healer.sim().sleep(SimDuration::from_secs(9)).await;
            healer.net().set_node_up(nodes[1], true);
            healer.net().set_node_up(nodes[2], true);
        });

        let err = cs.flush().await.unwrap_err();
        assert_eq!(err.store_cause(), Some(StoreError::Unavailable));

        // The section is poisoned: every further operation fails the same
        // way, including the release.
        assert_eq!(cs.get().await.unwrap_err(), err);
        assert_eq!(cs.put(b("v3")).await.unwrap_err(), err);
        assert_eq!(cs.release().await.unwrap_err(), err);

        // The synchFlag reached a quorum, and the holder is still queued —
        // the lock was *not* handed off.
        let marked = sys2
            .synch_flags("k")
            .into_iter()
            .filter(|f| f.as_deref() == Some(b"1".as_ref()))
            .count();
        assert!(marked >= 2, "synchFlag not at a quorum ({marked}/3)");
        let queue = sys2
            .locks()
            .queue_local(sys2.replica(0).node(), "k")
            .await
            .unwrap();
        assert!(queue.contains(&lock_ref), "failed release must not dequeue");

        // The failure detector collects the poisoned holder and the next
        // holder resynchronizes to a defined value.
        let dog = Watchdog::new(sys2.replica(1).clone(), SimDuration::from_millis(400));
        dog.watch("k");
        dog.spawn();
        let takeover = sys2.client_at_site(1);
        let cs = takeover.enter("k").await.unwrap();
        let v = cs.get().await.unwrap().expect("defined value");
        assert!(
            v == b("v1") || v == b("v2"),
            "resynchronized value must be an issued write, got {v:?}"
        );
        cs.release().await.unwrap();
        dog.stop();
        assert!(dog.preemptions() >= 1);
    });
}

/// A pipelined holder crashing with unacknowledged writes in flight: the
/// watchdog's resynchronizing preemption keeps the trace ECF-clean even
/// though the writes keep propagating after the crash.
#[test]
fn pipelined_crash_with_writes_in_flight_is_ecf_clean() {
    let rec = Recorder::tracing();
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .music_config(MusicConfig {
            failure_timeout: SimDuration::from_secs(2),
            ..MusicConfig::default()
        })
        .telemetry(rec.clone())
        .seed(33)
        .build();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let dog = Watchdog::new(sys2.replica(0).clone(), SimDuration::from_millis(500));
        dog.watch("k");
        dog.spawn();

        let piped = sys2
            .client_at_site(2)
            .with_write_mode(WriteMode::Pipelined { window: 4 });
        let cs = piped.enter("k").await.unwrap();
        cs.put(b("stable")).await.unwrap();
        cs.flush().await.unwrap();
        // Cut the holder's site off and crash it with two writes in
        // flight; heal so the orphans can still trickle in.
        sys2.net().partition_site(SiteId(2), true);
        cs.put(b("inflight-1")).await.unwrap();
        cs.put(b("inflight-2")).await.unwrap();
        assert_eq!(cs.in_flight(), 2);
        drop(cs);
        sys2.net().partition_site(SiteId(2), false);

        let takeover = sys2.client_at_site(0);
        let cs = takeover.enter("k").await.unwrap();
        let v = cs.get().await.unwrap().expect("defined value");
        assert!(
            v == b("stable") || v == b("inflight-1") || v == b("inflight-2"),
            "takeover must read an issued write, got {v:?}"
        );
        cs.put(b("recovered")).await.unwrap();
        cs.release().await.unwrap();
        dog.stop();
        assert!(dog.preemptions() >= 1, "watchdog never preempted");
    });

    let report = check(&rec.events());
    assert!(report.ok(), "ECF violated: {:?}", report.violations);
    assert!(report.forced_releases >= 1);
}

/// After an `Unavailable` failure the error carries the last store-level
/// cause, and failover telemetry names it.
#[test]
fn unavailable_names_its_store_cause() {
    let rec = Recorder::tracing();
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .music_config(MusicConfig {
            client_retries: 2,
            ..MusicConfig::default()
        })
        .telemetry(rec.clone())
        .seed(34)
        .build();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let nodes = sys2.store_nodes().to_vec();
        sys2.net().set_node_up(nodes[1], false);
        sys2.net().set_node_up(nodes[2], false);
        let client = sys2.client_at_site(0);
        // The lock store needs a quorum even to create a reference.
        let err = client.enter("k").await.unwrap_err();
        assert!(matches!(err, MusicError::Unavailable { .. }), "{err:?}");
        assert_eq!(err.store_cause(), Some(StoreError::Unavailable));
        let trail = err.attempt_trail().expect("per-attempt causes");
        assert!(trail.attempts() >= 1);
        assert!(trail
            .causes()
            .iter()
            .all(|c| *c == Some(StoreError::Unavailable)));
    });
    let named = rec.events().iter().any(|e| {
        matches!(
            &e.kind,
            music_telemetry::EventKind::ClientFailover { cause, .. } if *cause == "unavailable"
        )
    });
    assert!(named, "clientFailover events must carry the cause");
}
