//! The anti-entropy daemon: heals stale replicas left behind by long
//! partitions, restoring the freshness of *local* reads (eventual `get`s
//! and `lsPeek`) that quorum traffic never repairs.

use bytes::Bytes;
use music::{AcquireOutcome, MusicSystemBuilder, RepairDaemon};
use music_simnet::prelude::*;

fn b(s: &'static str) -> Bytes {
    Bytes::from_static(s.as_bytes())
}

#[test]
fn daemon_heals_stale_local_views_after_a_long_partition() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(NetConfig {
            service_fixed: SimDuration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX / 2,
            loss: 0.0,
            jitter_frac: 0.0,
        })
        .seed(13)
        .build();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();

    // Write while site 2 is cut off, for longer than the retransmission
    // window (10 × 2 s): its replica stays stale.
    sim.block_on({
        let sys = sys2.clone();
        async move {
            let r = sys.replica(0).clone();
            sys.net().partition_site(SiteId(2), true);
            let lr = r.create_lock_ref("cfg").await.unwrap();
            while r.acquire_lock("cfg", lr).await.unwrap() != AcquireOutcome::Acquired {}
            r.critical_put("cfg", lr, b("fresh")).await.unwrap();
            r.release_lock("cfg", lr).await.unwrap();
            sys.sim().sleep(SimDuration::from_secs(30)).await;
            sys.net().partition_site(SiteId(2), false);
        }
    });
    sim.run();
    // Site 2's local (eventual) view is stale.
    let stale = sim.block_on({
        let r = sys2.replica(2).clone();
        async move { r.get("cfg").await.unwrap() }
    });
    assert_eq!(
        stale, None,
        "local read at the once-partitioned site is stale"
    );

    // One repair sweep heals both stores.
    let daemon = RepairDaemon::new(sys2.replica(1).clone(), SimDuration::from_secs(60));
    sim.block_on({
        let daemon = daemon.clone();
        async move { daemon.sweep_once().await }
    });
    sim.run();
    assert!(
        daemon.repaired() >= 1,
        "repaired {} keys",
        daemon.repaired()
    );

    let healed = sim.block_on({
        let r = sys2.replica(2).clone();
        async move { r.get("cfg").await.unwrap() }
    });
    assert_eq!(
        healed,
        Some(b("fresh")),
        "local read healed without quorum traffic"
    );
}

#[test]
fn daemon_converges_stale_views_after_an_asymmetric_partition_heals() {
    // Gray failure: site 2 can *send* but not *receive* — its acks and
    // requests leave, nothing comes back in. Quorum writes at site 0
    // still commit (sites 0+1), while site 2's replica silently misses
    // every replication delta. After the one-way cut heals, one
    // `sweep_once` must converge the straggler without quorum traffic.
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(NetConfig {
            service_fixed: SimDuration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX / 2,
            loss: 0.0,
            jitter_frac: 0.0,
        })
        .seed(29)
        .build();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();

    sim.block_on({
        let sys = sys2.clone();
        async move {
            // Cut only the *incoming* direction at site 2.
            sys.net().partition_direction(SiteId(0), SiteId(2), false);
            sys.net().partition_direction(SiteId(1), SiteId(2), false);
            let r = sys.replica(0).clone();
            let lr = r.create_lock_ref("route").await.unwrap();
            while r.acquire_lock("route", lr).await.unwrap() != AcquireOutcome::Acquired {}
            r.critical_put("route", lr, b("healed-value"))
                .await
                .unwrap();
            r.release_lock("route", lr).await.unwrap();
            // Outlast the retransmission window so the miss is permanent.
            sys.sim().sleep(SimDuration::from_secs(30)).await;
            sys.net().partition_direction(SiteId(0), SiteId(2), true);
            sys.net().partition_direction(SiteId(1), SiteId(2), true);
        }
    });
    sim.run();
    let stale = sim.block_on({
        let r = sys2.replica(2).clone();
        async move { r.get("route").await.unwrap() }
    });
    assert_eq!(stale, None, "one-way cut left site 2's local view stale");

    let daemon = RepairDaemon::new(sys2.replica(1).clone(), SimDuration::from_secs(60));
    sim.block_on({
        let daemon = daemon.clone();
        async move { daemon.sweep_once().await }
    });
    sim.run();
    assert!(daemon.repaired() >= 1, "sweep repaired nothing");

    let healed = sim.block_on({
        let r = sys2.replica(2).clone();
        async move { r.get("route").await.unwrap() }
    });
    assert_eq!(
        healed,
        Some(b("healed-value")),
        "sweep converged the asymmetric straggler"
    );
}

#[test]
fn daemon_loop_runs_and_stops() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_l())
        .seed(2)
        .build();
    let sim = sys.sim().clone();
    // Seed one key so sweeps have something to enumerate.
    sim.block_on({
        let r = sys.replica(0).clone();
        async move { r.put("k", b("v")).await.unwrap() }
    });
    let daemon = RepairDaemon::new(sys.replica(0).clone(), SimDuration::from_millis(500));
    daemon.spawn();
    daemon.spawn(); // idempotent
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    assert!(daemon.sweeps() >= 4, "got {} sweeps", daemon.sweeps());
    daemon.stop();
    sim.run();
    let t = sim.now();
    sim.run();
    assert_eq!(sim.now(), t, "no immortal periodic task after stop");
}
