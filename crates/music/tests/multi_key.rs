//! Multi-key critical sections (§III-A's deadlock-avoidance extension):
//! lexicographic acquisition order, atomicity of entry, and
//! deadlock-freedom under inverse acquisition patterns.

use bytes::Bytes;
use music::{MusicError, MusicSystemBuilder};
use music_simnet::prelude::*;

fn b(s: &'static str) -> Bytes {
    Bytes::from_static(s.as_bytes())
}

fn quiet() -> NetConfig {
    NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    }
}

#[test]
fn multi_key_section_reads_and_writes_all_keys() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .seed(2)
        .build();
    let sim = sys.sim().clone();
    let client = sys.client_at_site(0);
    sim.block_on(async move {
        let mcs = client
            .enter_many(&["beta", "alpha", "alpha"])
            .await
            .unwrap();
        // Deduplicated, lexicographically ordered.
        assert_eq!(mcs.keys(), vec!["alpha", "beta"]);
        mcs.put("alpha", b("a1")).await.unwrap();
        mcs.put("beta", b("b1")).await.unwrap();
        assert_eq!(mcs.get("alpha").await.unwrap(), Some(b("a1")));
        assert_eq!(mcs.get("beta").await.unwrap(), Some(b("b1")));
        // A key outside the set is refused — and distinguishably so: the
        // caller's bug (NotInSection), not a protocol preemption.
        assert_eq!(
            mcs.get("gamma").await.unwrap_err(),
            MusicError::NotInSection
        );
        assert_eq!(
            mcs.put("gamma", b("g1")).await.unwrap_err(),
            MusicError::NotInSection
        );
        mcs.release().await.unwrap();

        // Both keys are free again.
        let again = client.enter_many(&["alpha", "beta"]).await.unwrap();
        assert_eq!(again.get("alpha").await.unwrap(), Some(b("a1")));
        again.release().await.unwrap();
    });
}

#[test]
fn inverse_acquisition_orders_do_not_deadlock() {
    // Client 1 asks for {a, b}; client 2 asks for {b, a}. Without the
    // lexicographic rule this is the classic deadlock; with it, both
    // complete.
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .seed(3)
        .build();
    let sim = sys.sim().clone();
    let mut handles = Vec::new();
    for (i, keys) in [["acct-a", "acct-b"], ["acct-b", "acct-a"]]
        .into_iter()
        .enumerate()
    {
        let client = sys.client_at_site(i);
        handles.push(sim.spawn(async move {
            let mcs = client.enter_many(&keys).await.unwrap();
            // Transfer: read both, write both.
            let a = mcs.get("acct-a").await.unwrap();
            let _ = a;
            mcs.put("acct-a", Bytes::from(format!("by-{i}").into_bytes()))
                .await
                .unwrap();
            mcs.put("acct-b", Bytes::from(format!("by-{i}").into_bytes()))
                .await
                .unwrap();
            mcs.release().await.unwrap();
        }));
    }
    for h in handles {
        sim.run_until_complete(h);
    }
    // Whoever went second owns the final value of both keys — and they
    // agree (the two-key update was exclusive).
    let client = sys.client_at_site(2);
    let (a, bv) = sim.block_on(async move {
        let mcs = client.enter_many(&["acct-a", "acct-b"]).await.unwrap();
        let a = mcs.get("acct-a").await.unwrap().unwrap();
        let bv = mcs.get("acct-b").await.unwrap().unwrap();
        mcs.release().await.unwrap();
        (a, bv)
    });
    assert_eq!(a, bv, "both keys updated atomically under the multi-lock");
}

#[test]
fn empty_key_set_is_an_error_not_a_panic() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_l())
        .net_config(quiet())
        .seed(4)
        .build();
    let sim = sys.sim().clone();
    let client = sys.client_at_site(0);
    sim.block_on(async move {
        let empty: [&str; 0] = [];
        let err = client.enter_many(&empty).await.unwrap_err();
        assert_eq!(err, MusicError::EmptyKeySet);
    });
}
