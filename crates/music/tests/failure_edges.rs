//! Edge-of-the-envelope ECF scenarios: store loss during the acquire
//! synchronization, forced release racing voluntary release, daemon
//! interplay, and multi-replica-per-site deployments.

use bytes::Bytes;
use music::{AcquireOutcome, MusicConfig, MusicSystemBuilder, RepairDaemon, Watchdog};
use music_simnet::prelude::*;

fn quiet() -> NetConfig {
    NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    }
}

fn b(s: &'static str) -> Bytes {
    Bytes::from_static(s.as_bytes())
}

/// The grant path's synchronization hits an unavailable data store: the
/// acquire nacks, the client retries, and once the store heals the next
/// acquire completes the synchronization — the flag is only reset after a
/// successful rewrite.
#[test]
fn acquire_synchronization_survives_store_outage() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .seed(21)
        .build();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let a = sys2.replica(0).clone();
        // Seed a value, then preempt the holder so the synchFlag is set.
        let r1 = a.create_lock_ref("k").await.unwrap();
        while a.acquire_lock("k", r1).await.unwrap() != AcquireOutcome::Acquired {}
        a.critical_put("k", r1, b("seeded")).await.unwrap();
        a.forced_release("k", r1).await.unwrap();

        // Next acquire must synchronize — but two store nodes are down.
        let nodes = sys2.store_nodes().to_vec();
        sys2.net().set_node_up(nodes[1], false);
        sys2.net().set_node_up(nodes[2], false);
        let r2 = a.create_lock_ref("k").await; // lock store also needs quorum
        assert!(r2.is_err(), "no quorum: createLockRef nacks");

        // Heal; everything proceeds and the flag was never half-reset.
        sys2.net().set_node_up(nodes[1], true);
        sys2.net().set_node_up(nodes[2], true);
        let r2 = a.create_lock_ref("k").await.unwrap();
        loop {
            match a.acquire_lock("k", r2).await {
                Ok(AcquireOutcome::Acquired) => break,
                _ => sys2.sim().sleep(SimDuration::from_millis(10)).await,
            }
        }
        assert_eq!(a.critical_get("k", r2).await.unwrap(), Some(b("seeded")));
        a.release_lock("k", r2).await.unwrap();
    });
}

/// A forced release firing on a reference the holder is releasing
/// voluntarily at the same time: the paper's analysis says the only
/// consequence is an unnecessary synchronization — never a safety issue.
#[test]
fn forced_release_racing_voluntary_release_is_harmless() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .seed(22)
        .build();
    let sim = sys.sim().clone();
    let a = sys.replica(0).clone();
    let far = sys.replica(2).clone();
    let sys2 = sys.clone();

    let setup = sim.spawn({
        let a = a.clone();
        async move {
            let r = a.create_lock_ref("k").await.unwrap();
            while a.acquire_lock("k", r).await.unwrap() != AcquireOutcome::Acquired {}
            a.critical_put("k", r, b("mine")).await.unwrap();
            r
        }
    });
    let r = sim.run_until_complete(setup);

    // Fire both releases concurrently.
    let h1 = sim.spawn({
        let a = a.clone();
        async move { a.release_lock("k", r).await }
    });
    let h2 = sim.spawn({
        let far = far.clone();
        async move { far.forced_release("k", r).await }
    });
    sim.run_until_complete(h1).unwrap();
    sim.run_until_complete(h2).unwrap();

    // The next critical section enters cleanly and reads the true value
    // (possibly after one spurious synchronization).
    let h = sim.spawn({
        let sys2 = sys2.clone();
        let a = a.clone();
        async move {
            let r2 = a.create_lock_ref("k").await.unwrap();
            loop {
                match a.acquire_lock("k", r2).await.unwrap() {
                    AcquireOutcome::Acquired => break,
                    _ => sys2.sim().sleep(SimDuration::from_millis(5)).await,
                }
            }
            let v = a.critical_get("k", r2).await.unwrap();
            a.release_lock("k", r2).await.unwrap();
            v
        }
    });
    assert_eq!(sim.run_until_complete(h), Some(b("mine")));
}

/// Watchdog and repair daemon running together on a failing system: the
/// watchdog clears a dead holder while the daemon heals the partitioned
/// replica, and the two never interfere.
#[test]
fn watchdog_and_repair_daemon_coexist() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .music_config(MusicConfig {
            failure_timeout: SimDuration::from_secs(2),
            ..MusicConfig::default()
        })
        .seed(23)
        .build();
    let sim = sys.sim().clone();
    let dog = Watchdog::new(sys.replica(1).clone(), SimDuration::from_millis(400));
    dog.watch("svc");
    let daemon = RepairDaemon::new(sys.replica(1).clone(), SimDuration::from_secs(3));

    let sys2 = sys.clone();
    sim.block_on({
        let sys = sys2.clone();
        async move {
            let a = sys.replica(0).clone();
            let r = a.create_lock_ref("svc").await.unwrap();
            while a.acquire_lock("svc", r).await.unwrap() != AcquireOutcome::Acquired {}
            a.critical_put("svc", r, b("checkpoint")).await.unwrap();
            // Holder dies; site 2 is partitioned for a while.
            sys.net().partition_site(SiteId(2), true);
        }
    });
    dog.spawn();
    daemon.spawn();
    sim.run_until(sim.now() + SimDuration::from_secs(8));
    sys.net().partition_site(SiteId(2), false);
    sim.run_until(sim.now() + SimDuration::from_secs(8));

    // Dead holder was collected; a new client proceeds with the latest
    // state; and the healed site serves it locally after repair.
    let h = sim.spawn({
        let sys = sys2.clone();
        async move {
            let c = sys.replica(2).clone();
            let r = c.create_lock_ref("svc").await.unwrap();
            loop {
                match c.acquire_lock("svc", r).await.unwrap() {
                    AcquireOutcome::Acquired => break,
                    _ => sys.sim().sleep(SimDuration::from_millis(50)).await,
                }
            }
            let v = c.critical_get("svc", r).await.unwrap();
            c.release_lock("svc", r).await.unwrap();
            v
        }
    });
    let v = sim.run_until_complete(h);
    assert_eq!(v, Some(b("checkpoint")));
    assert!(dog.preemptions() >= 1);
    dog.stop();
    daemon.stop();
    sim.run();
    // Local read at the once-partitioned site is fresh after repairs.
    let local = sim.block_on({
        let c = sys.replica(2).clone();
        async move { c.get("svc").await.unwrap() }
    });
    assert_eq!(local, Some(b("checkpoint")));
}

/// A 9-replica deployment (3 per site): clients spread over all replicas
/// of their site, and critical sections from different replicas of the
/// same site still respect ECF.
#[test]
fn multi_replica_per_site_deployment_works() {
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet())
        .replicas_per_site(3)
        .store_nodes_per_site(3)
        .seed(24)
        .build();
    let sim = sys.sim().clone();
    assert_eq!(sys.replicas().len(), 9);
    let sys2 = sys.clone();
    sim.block_on(async move {
        let mut expected = None;
        // Walk a key through every one of the nine replicas.
        for (i, replica) in sys2.replicas().iter().enumerate() {
            let r = replica.create_lock_ref("ring").await.unwrap();
            loop {
                match replica.acquire_lock("ring", r).await.unwrap() {
                    AcquireOutcome::Acquired => break,
                    _ => sys2.sim().sleep(SimDuration::from_millis(5)).await,
                }
            }
            assert_eq!(
                replica.critical_get("ring", r).await.unwrap(),
                expected,
                "replica {i} must see the latest state"
            );
            let val = Bytes::from(format!("step-{i}").into_bytes());
            replica.critical_put("ring", r, val.clone()).await.unwrap();
            expected = Some(val);
            replica.release_lock("ring", r).await.unwrap();
        }
    });
}
