//! Coverage audit for [`OpStats`]: one scripted run drives every
//! [`OpKind`] at least once, so a newly added operation that forgets to
//! record its latency fails here rather than silently reporting `-` in
//! the benchmark tables.

use bytes::Bytes;
use music::{AcquireOutcome, MusicSystem, MusicSystemBuilder, OpKind, PutMode};
use music_quorumstore::Put;
use music_simnet::prelude::*;

fn quiet_net() -> NetConfig {
    NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    }
}

fn system() -> MusicSystem {
    MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet_net())
        .seed(11)
        .build()
}

fn b(s: &'static str) -> Bytes {
    Bytes::from_static(s.as_bytes())
}

#[test]
fn every_op_kind_is_recorded() {
    let sys = system();
    let sim = sys.sim().clone();
    let sys2 = sys.clone();
    sim.block_on(async move {
        let r = sys2.replica(0).clone();

        // createLockRef / acquireLock(peek+grant) / criticalPut /
        // criticalGet / releaseLock.
        let r0 = r.create_lock_ref("k").await.unwrap();
        while r.acquire_lock("k", r0).await.unwrap() != AcquireOutcome::Acquired {
            sys2.sim().sleep(SimDuration::from_millis(10)).await;
        }
        r.critical_put("k", r0, b("v1")).await.unwrap();
        // The LWT flavour of criticalPut (the MSCP baseline).
        r.critical_put_with("k", r0, Put::value(b("v2")), PutMode::Lwt)
            .await
            .unwrap();
        assert_eq!(r.critical_get("k", r0).await.unwrap(), Some(b("v2")));
        r.release_lock("k", r0).await.unwrap();

        // forcedRelease: enqueue a second ref, let it become holder, then
        // have the watchdog's primitive evict it directly.
        let r1 = r.create_lock_ref("k").await.unwrap();
        while r.acquire_lock("k", r1).await.unwrap() != AcquireOutcome::Acquired {
            sys2.sim().sleep(SimDuration::from_millis(10)).await;
        }
        r.forced_release("k", r1).await.unwrap();

        // Eventual (lock-free) path.
        r.put("notes", b("e1")).await.unwrap();
        assert_eq!(r.get("notes").await.unwrap(), Some(b("e1")));

        // criticalSection is recorded by the client wrapper on release.
        let client = sys2.client_at_site(1);
        let cs = client.enter("k2").await.unwrap();
        cs.put(b("w")).await.unwrap();
        cs.release().await.unwrap();

        // leaseReenter: a clean release under a lease window retains a
        // grant, and the next enter on the same key claims it locally.
        let leased = sys2
            .client_at_site(1)
            .with_lease_window(SimDuration::from_secs(60));
        let cs = leased.enter("k3").await.unwrap();
        cs.release().await.unwrap();
        assert!(leased.lease("k3").is_some(), "clean release retains lease");
        let cs = leased.enter("k3").await.unwrap();
        cs.release().await.unwrap();
        leased.relinquish("k3").await.unwrap();
        assert!(leased.lease("k3").is_none());
    });

    let stats = sys.stats();
    for kind in OpKind::ALL {
        assert!(
            stats.count(kind) > 0,
            "OpKind::{kind:?} ({kind}) was never recorded"
        );
    }
}
