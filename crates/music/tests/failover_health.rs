//! Health-aware client failover: the per-replica circuit breaker must
//! (a) let a client complete critical sections while its primary replica
//! is crashed, without burning the whole retry budget re-discovering the
//! dead node, and (b) re-admit the replica after recovery via a half-open
//! probe — with the quarantine visible in the recovery-time histogram.

use bytes::Bytes;
use music::{MusicConfig, MusicSystemBuilder};
use music_quorumstore::TableConfig;
use music_simnet::prelude::*;
use music_telemetry::Scope;

fn quiet_net() -> NetConfig {
    NetConfig {
        service_fixed: SimDuration::ZERO,
        bandwidth_bytes_per_sec: u64::MAX / 2,
        loss: 0.0,
        jitter_frac: 0.0,
    }
}

#[test]
fn crashed_primary_is_quarantined_and_sections_still_succeed() {
    let cooldown = SimDuration::from_secs(120);
    let sys = MusicSystemBuilder::new()
        .profile(LatencyProfile::one_us())
        .net_config(quiet_net())
        .table_config(TableConfig {
            op_timeout: SimDuration::from_millis(500),
            ..TableConfig::default()
        })
        .music_config(MusicConfig {
            breaker_threshold: 2,
            breaker_cooldown: cooldown,
            ..MusicConfig::default()
        })
        .seed(11)
        .telemetry(music_telemetry::Recorder::metrics_only())
        .build();
    let sim = sys.sim().clone();
    let client = sys.client_at_site(0);
    let primary = client.primary().node();
    let rec = sys.recorder();

    sys.net().set_node_up(primary, false);
    sim.block_on({
        let client = client.clone();
        async move {
            let cs = client
                .enter("acct")
                .await
                .expect("enter via healthy replica");
            cs.put(Bytes::from_static(b"v1"))
                .await
                .expect("criticalPut");
            cs.release().await.expect("release");
        }
    });
    sim.run();

    let m = rec.metrics();
    assert!(
        m.get(Scope::Node(primary.0), "breaker_trips") >= 1,
        "dead primary must trip its breaker"
    );
    let failovers_after_first = m.get(Scope::Global, "client_failovers");
    assert!(
        failovers_after_first >= 2,
        "threshold failures were counted"
    );

    // With the breaker open the primary is skipped outright: a second
    // section must not pay the discovery cost again.
    sim.block_on({
        let client = client.clone();
        async move {
            let cs = client
                .enter("acct")
                .await
                .expect("enter while breaker open");
            cs.put(Bytes::from_static(b"v2"))
                .await
                .expect("criticalPut");
            cs.release().await.expect("release");
        }
    });
    sim.run();
    let m = rec.metrics();
    assert_eq!(
        m.get(Scope::Global, "client_failovers"),
        failovers_after_first,
        "open breaker skips the dead primary without new failed attempts"
    );

    // Recovery: bring the node back, let the cooldown elapse, and the next
    // operation admits exactly one half-open probe which closes the
    // breaker and records the quarantine duration.
    sys.net().set_node_up(primary, true);
    sim.block_on({
        let sim = sim.clone();
        async move { sim.sleep(cooldown + SimDuration::from_secs(1)).await }
    });
    sim.block_on({
        let client = client.clone();
        async move {
            let cs = client.enter("acct").await.expect("enter after recovery");
            let v = cs.get().await.expect("criticalGet");
            assert_eq!(v, Some(Bytes::from_static(b"v2")));
            cs.release().await.expect("release");
        }
    });
    sim.run();

    let m = rec.metrics();
    assert!(
        m.get(Scope::Node(primary.0), "breaker_probes") >= 1,
        "recovery goes through a half-open probe"
    );
    assert!(
        m.get(Scope::Node(primary.0), "breaker_closes") >= 1,
        "successful probe closes the breaker"
    );
    let hist = m
        .histogram(Scope::Node(primary.0), "replica_recovery_us")
        .expect("recovery-time histogram is populated");
    assert_eq!(hist.samples.len(), 1, "one quarantine, one sample");
    assert!(
        hist.samples[0] >= cooldown.as_micros(),
        "recovery time {}us spans at least the cooldown",
        hist.samples[0]
    );
}
