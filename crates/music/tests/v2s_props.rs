//! Property-based verification of the §X-A2 lemma (`v2s` preserves vector
//! timestamp order) and the §X-A3 overflow analysis.

use music::{V2s, VectorTimestamp};
use music_lockstore::LockRef;
use music_simnet::time::SimDuration;
use proptest::prelude::*;

const T_MICROS: u64 = 600_000_000; // T = 600 s

fn v2s() -> V2s {
    V2s::new(SimDuration::from_micros(T_MICROS))
}

prop_compose! {
    /// A vector timestamp valid under T: elapsed < T, lockRef within the
    /// overflow bound.
    fn arb_ts()(lr in 1u64..10_000_000, t in 0u64..T_MICROS) -> VectorTimestamp {
        VectorTimestamp::new(LockRef::new(lr), SimDuration::from_micros(t))
    }
}

proptest! {
    /// The lemma: t1 < t2 ⟺ v2s(t1) < v2s(t2), and equality maps to
    /// equality.
    #[test]
    fn v2s_preserves_order(a in arb_ts(), b in arb_ts()) {
        let m = v2s();
        let (sa, sb) = (m.scalar(a), m.scalar(b));
        prop_assert_eq!(a.cmp(&b), sa.cmp(&sb));
    }

    /// Same lock reference: ordered by elapsed time (the in-critical-
    /// section case).
    #[test]
    fn same_lock_ref_ordered_by_time(lr in 1u64..1_000_000, t1 in 0u64..T_MICROS, t2 in 0u64..T_MICROS) {
        let m = v2s();
        let a = VectorTimestamp::new(LockRef::new(lr), SimDuration::from_micros(t1));
        let b = VectorTimestamp::new(LockRef::new(lr), SimDuration::from_micros(t2));
        prop_assert_eq!(t1.cmp(&t2), m.scalar(a).cmp(&m.scalar(b)));
    }

    /// Earlier critical sections always lose, no matter the elapsed times
    /// (lockRef dominates).
    #[test]
    fn lock_ref_dominates(lr in 1u64..1_000_000, t1 in 0u64..T_MICROS, t2 in 0u64..T_MICROS) {
        let m = v2s();
        let early = VectorTimestamp::new(LockRef::new(lr), SimDuration::from_micros(t1));
        let late = VectorTimestamp::new(LockRef::new(lr + 1), SimDuration::from_micros(t2));
        prop_assert!(m.scalar(early) < m.scalar(late));
    }

    /// §X-A3: within the supported lockRef range, scalars stay below 2^63
    /// (Cassandra timestamps are signed 64-bit).
    #[test]
    fn no_overflow_within_bound(t in 0u64..T_MICROS) {
        let m = v2s();
        let max_ref = m.max_lock_ref();
        let ts = VectorTimestamp::new(LockRef::new(max_ref - 1), SimDuration::from_micros(t));
        prop_assert!(m.scalar(ts).value() < (1u64 << 63) + T_MICROS);
    }

    /// The forcedRelease stamp sits strictly between the same reference's
    /// reset and the next reference's reset, for any δ in (0, T).
    #[test]
    fn forced_release_stamp_is_between(lr in 1u64..1_000_000, delta_us in 1u64..T_MICROS) {
        let m = v2s();
        let delta = SimDuration::from_micros(delta_us);
        let own_reset = m.scalar(VectorTimestamp::new(LockRef::new(lr), SimDuration::ZERO));
        let next_reset = m.scalar(VectorTimestamp::new(LockRef::new(lr + 1), SimDuration::ZERO));
        let forced = m.forced_release_stamp(LockRef::new(lr), delta);
        prop_assert!(forced > own_reset);
        prop_assert!(forced < next_reset);
    }

    /// Round trip: the lock reference is recoverable from the scalar.
    #[test]
    fn lock_ref_recoverable(ts in arb_ts()) {
        let m = v2s();
        prop_assert_eq!(m.lock_ref_of(m.scalar(ts)), ts.lock_ref);
    }
}
