//! Property-based verification of the §X-A2 lemma (`v2s` preserves vector
//! timestamp order) and the §X-A3 overflow analysis.

use music::{V2s, VectorTimestamp};
use music_lockstore::LockRef;
use music_simnet::time::SimDuration;
use proptest::prelude::*;

const T_MICROS: u64 = 600_000_000; // T = 600 s

fn v2s() -> V2s {
    V2s::new(SimDuration::from_micros(T_MICROS))
}

prop_compose! {
    /// A vector timestamp valid under T: elapsed < T, lockRef within the
    /// overflow bound.
    fn arb_ts()(lr in 1u64..10_000_000, t in 0u64..T_MICROS) -> VectorTimestamp {
        VectorTimestamp::new(LockRef::new(lr), SimDuration::from_micros(t))
    }
}

proptest! {
    /// The lemma: t1 < t2 ⟺ v2s(t1) < v2s(t2), and equality maps to
    /// equality.
    #[test]
    fn v2s_preserves_order(a in arb_ts(), b in arb_ts()) {
        let m = v2s();
        let (sa, sb) = (m.scalar(a), m.scalar(b));
        prop_assert_eq!(a.cmp(&b), sa.cmp(&sb));
    }

    /// Same lock reference: ordered by elapsed time (the in-critical-
    /// section case).
    #[test]
    fn same_lock_ref_ordered_by_time(lr in 1u64..1_000_000, t1 in 0u64..T_MICROS, t2 in 0u64..T_MICROS) {
        let m = v2s();
        let a = VectorTimestamp::new(LockRef::new(lr), SimDuration::from_micros(t1));
        let b = VectorTimestamp::new(LockRef::new(lr), SimDuration::from_micros(t2));
        prop_assert_eq!(t1.cmp(&t2), m.scalar(a).cmp(&m.scalar(b)));
    }

    /// Earlier critical sections always lose, no matter the elapsed times
    /// (lockRef dominates).
    #[test]
    fn lock_ref_dominates(lr in 1u64..1_000_000, t1 in 0u64..T_MICROS, t2 in 0u64..T_MICROS) {
        let m = v2s();
        let early = VectorTimestamp::new(LockRef::new(lr), SimDuration::from_micros(t1));
        let late = VectorTimestamp::new(LockRef::new(lr + 1), SimDuration::from_micros(t2));
        prop_assert!(m.scalar(early) < m.scalar(late));
    }

    /// §X-A3: within the supported lockRef range, scalars stay below 2^63
    /// (Cassandra timestamps are signed 64-bit).
    #[test]
    fn no_overflow_within_bound(t in 0u64..T_MICROS) {
        let m = v2s();
        let max_ref = m.max_lock_ref();
        let ts = VectorTimestamp::new(LockRef::new(max_ref - 1), SimDuration::from_micros(t));
        prop_assert!(m.scalar(ts).value() < (1u64 << 63) + T_MICROS);
    }

    /// The forcedRelease stamp sits strictly between the same reference's
    /// reset and the next reference's reset, for any δ in (0, T).
    #[test]
    fn forced_release_stamp_is_between(lr in 1u64..1_000_000, delta_us in 1u64..T_MICROS) {
        let m = v2s();
        let delta = SimDuration::from_micros(delta_us);
        let own_reset = m.scalar(VectorTimestamp::new(LockRef::new(lr), SimDuration::ZERO));
        let next_reset = m.scalar(VectorTimestamp::new(LockRef::new(lr + 1), SimDuration::ZERO));
        let forced = m.forced_release_stamp(LockRef::new(lr), delta);
        prop_assert!(forced > own_reset);
        prop_assert!(forced < next_reset);
    }

    /// Round trip: the lock reference is recoverable from the scalar.
    #[test]
    fn lock_ref_recoverable(ts in arb_ts()) {
        let m = v2s();
        prop_assert_eq!(m.lock_ref_of(m.scalar(ts)), ts.lock_ref);
    }
}

// ---- Adversarial boundaries (lease-era hardening) ----
//
// A lease-minted successor is `guard + 1` stamped from elapsed 0, so the
// exact fences — elapsed one tick under `T`, references one step under
// `max_lock_ref`, and the forcedRelease stamp's `δ` — are the places an
// off-by-one would corrupt last-write-wins ordering.

proptest! {
    /// The last representable microseconds under `T` never collide with
    /// the successor's earliest stamps — the boundary every lease mint
    /// (`guard + 1`, elapsed 0) crosses at claim time.
    #[test]
    fn boundary_elapsed_never_collides_with_successor(
        lr in 1u64..1_000_000,
        t_old in (T_MICROS - 3)..T_MICROS,
        t_new in 0u64..3,
    ) {
        let m = v2s();
        let last = VectorTimestamp::new(LockRef::new(lr), SimDuration::from_micros(t_old));
        let first = VectorTimestamp::new(LockRef::new(lr + 1), SimDuration::from_micros(t_new));
        prop_assert!(m.scalar(last) < m.scalar(first));
    }

    /// Near `max_lock_ref`: order preservation and the lockRef round trip
    /// still hold at boundary elapsed values.
    #[test]
    fn near_max_lock_ref_order_and_round_trip(
        off_a in 1u64..1_000,
        off_b in 1u64..1_000,
        t_pick in 0usize..5,
    ) {
        let m = v2s();
        let t = [0, 1, T_MICROS / 2, T_MICROS - 2, T_MICROS - 1][t_pick];
        let max = m.max_lock_ref();
        let a = VectorTimestamp::new(LockRef::new(max - off_a), SimDuration::from_micros(t));
        let b = VectorTimestamp::new(LockRef::new(max - off_b), SimDuration::from_micros(t));
        prop_assert_eq!(a.cmp(&b), m.scalar(a).cmp(&m.scalar(b)));
        prop_assert_eq!(m.lock_ref_of(m.scalar(a)), a.lock_ref);
    }

    /// A run of lease-minted successors (`guard + 1` per clean release)
    /// stays strictly monotone and within the §X-A3 overflow bound even
    /// when it starts just under `max_lock_ref`.
    #[test]
    fn lease_mint_chain_monotone_near_bound(
        off in 8u64..10_000,
        chain in 1usize..8,
        t in 0u64..T_MICROS,
    ) {
        let m = v2s();
        let start = m.max_lock_ref() - off; // off >= chain keeps the run in range
        let mut prev = m.scalar(VectorTimestamp::new(LockRef::new(start), SimDuration::from_micros(t)));
        for i in 1..=chain as u64 {
            let next = m.scalar(VectorTimestamp::new(LockRef::new(start + i), SimDuration::ZERO));
            prop_assert!(next > prev);
            prev = next;
        }
        prop_assert!(prev.value() < (1u64 << 63) + T_MICROS);
    }

    /// §IV-B at the fence: the forced stamp `(r, δ)` dominates the
    /// holder's writes stamped strictly before `δ` and yields at `δ`
    /// exactly — not one microsecond off on either side.
    #[test]
    fn forced_stamp_fence_is_exact(lr in 1u64..1_000_000, delta_us in 1u64..T_MICROS) {
        let m = v2s();
        let forced = m.forced_release_stamp(LockRef::new(lr), SimDuration::from_micros(delta_us));
        let before = m.scalar(VectorTimestamp::new(LockRef::new(lr), SimDuration::from_micros(delta_us - 1)));
        let at = m.scalar(VectorTimestamp::new(LockRef::new(lr), SimDuration::from_micros(delta_us)));
        prop_assert!(before < forced);
        prop_assert!(at >= forced);
    }
}
