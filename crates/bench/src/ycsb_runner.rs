//! YCSB runner (Fig. 9): R / UR / U workloads with Zipfian key choice and
//! genuine lock collisions, comparing MUSIC and MSCP.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::Bytes;

use music::{AcquireOutcome, CriticalError};
use music_simnet::metrics::Histogram;
use music_simnet::time::{SimDuration, SimTime};
use music_simnet::topology::LatencyProfile;
use music_workload::sweep::payload;
use music_workload::{Op, WorkloadKind, WorkloadSpec};

use crate::setup::Mode;

/// Results of one YCSB run.
#[derive(Clone, Debug)]
pub struct YcsbResult {
    /// Operations per second over the makespan.
    pub throughput: f64,
    /// Read-operation latencies.
    pub read_latency: Histogram,
    /// Update-operation latencies.
    pub update_latency: Histogram,
    /// Fraction of operations that contended for a lock (the paper reports
    /// ~5.5%).
    pub collision_rate: f64,
    /// Total operations executed.
    pub ops: u64,
}

/// Runs a Fig. 9 workload: `threads` workers share the operation stream;
/// every operation runs as its own critical section on the chosen key
/// (create → acquire → get/put → release), so Zipfian-hot keys produce
/// lock collisions among workers.
pub fn run_ycsb(
    profile: LatencyProfile,
    mode: Mode,
    kind: WorkloadKind,
    threads: usize,
    op_count: u64,
    seed: u64,
) -> YcsbResult {
    // Aggressive failure detection: with many workers LWT-racing the hot
    // Zipfian keys, *orphan* lock references occur (a createLockRef whose
    // first ballot attempt committed but was retried — §IV-B); a watchdog
    // must collect them or the hot key wedges, exactly as in production.
    let mut cfg = crate::setup::bench_music_config(mode);
    cfg.failure_timeout = SimDuration::from_secs(5);
    let sys = crate::setup::music_system_with(profile.clone(), cfg, 1, seed);
    let sim = sys.sim().clone();
    let sites = profile.site_count();

    let spec = WorkloadSpec {
        op_count,
        ..WorkloadSpec::fig9(kind, seed)
    };

    // Load phase: seed every record with an eventual put, then settle.
    {
        let replica = sys.replica(0).clone();
        let keys: Vec<String> = spec.all_keys().collect();
        let h = sim.spawn(async move {
            for k in keys {
                let _ = replica.put(&k, Bytes::from_static(b"init")).await;
            }
        });
        sim.run_until_complete(h);
        sim.run(); // drain propagation so reads find data everywhere
    }

    // Started only after the load settles: the watchdog's periodic timer
    // would otherwise keep `sim.run()` from ever quiescing.
    let watchdog = music::Watchdog::new(sys.replica(0).clone(), SimDuration::from_millis(500));
    for k in spec.all_keys() {
        watchdog.watch(&k);
    }
    watchdog.spawn();

    // Deal the operation stream round-robin to the workers.
    let mut per_thread: Vec<Vec<Op>> = vec![Vec::new(); threads];
    for (i, op) in spec.generator().enumerate() {
        per_thread[i % threads].push(op);
    }

    let read_hist = Rc::new(RefCell::new(Histogram::new()));
    let update_hist = Rc::new(RefCell::new(Histogram::new()));
    let collisions = Rc::new(Cell::new(0u64));
    let done_ops = Rc::new(Cell::new(0u64));
    let start = sim.now();
    let value = Bytes::from(payload(spec.value_size));

    let mut handles = Vec::new();
    for (t, ops) in per_thread.into_iter().enumerate() {
        let replica = sys.replica(t % sites).clone();
        let sim2 = sim.clone();
        let read_hist = Rc::clone(&read_hist);
        let update_hist = Rc::clone(&update_hist);
        let collisions = Rc::clone(&collisions);
        let done_ops = Rc::clone(&done_ops);
        let value = value.clone();
        handles.push(sim.spawn(async move {
            for op in ops {
                let key = op.key().to_string();
                let t0 = sim2.now();
                // One critical section per operation.
                let Ok(lock_ref) = retry_create(&replica, &key, &sim2).await else {
                    continue;
                };
                let mut contended = false;
                let mut last_report = sim2.now();
                // Standard exponential back-off on the acquire poll
                // (§III-A: "Standard back-off mechanisms can be used to
                // alleviate the cost of polling").
                let mut poll = SimDuration::from_millis(2);
                let poll_cap = SimDuration::from_millis(128);
                let granted = loop {
                    match replica.acquire_lock(&key, lock_ref).await {
                        Ok(AcquireOutcome::Acquired) => break true,
                        Ok(AcquireOutcome::NotYet) => {
                            contended = true;
                            sim2.sleep(poll).await;
                            poll = (poll * 2).min(poll_cap);
                        }
                        Ok(AcquireOutcome::NoLongerHolder) => break false,
                        Err(_) => sim2.sleep(poll).await,
                    }
                    if std::env::var("MUSIC_YCSB_TRACE").is_ok()
                        && sim2.now() - last_report > SimDuration::from_secs(10)
                    {
                        last_report = sim2.now();
                        let head = replica.peek_holder(&key).await;
                        eprintln!(
                            "[ycsb] t={} worker={t} STUCK on {key} mine={lock_ref} head={head:?}",
                            sim2.now()
                        );
                    }
                };
                if contended {
                    collisions.set(collisions.get() + 1);
                }
                if !granted {
                    continue;
                }
                let ok = match &op {
                    Op::Read(_) => run_read(&replica, &key, lock_ref, &sim2).await,
                    Op::Update(_) => run_update(&replica, &key, lock_ref, &value, &sim2).await,
                };
                // Retry the release until it sticks: an abandoned lock
                // reference would wedge this hot key for every worker.
                while replica.release_lock(&key, lock_ref).await.is_err() {
                    sim2.sleep(SimDuration::from_millis(5)).await;
                }
                if ok {
                    let elapsed = sim2.now() - t0;
                    match &op {
                        Op::Read(_) => read_hist.borrow_mut().record(elapsed),
                        Op::Update(_) => update_hist.borrow_mut().record(elapsed),
                    }
                    done_ops.set(done_ops.get() + 1);
                    if std::env::var("MUSIC_YCSB_TRACE").is_ok() {
                        eprintln!(
                            "[ycsb] t={} worker={t} done={} key={}",
                            sim2.now(),
                            done_ops.get(),
                            op.key()
                        );
                    }
                }
            }
        }));
    }
    for h in handles {
        sim.run_until_complete(h);
    }
    watchdog.stop();
    let makespan = (sim.now() - start).as_secs_f64();
    let read_latency = read_hist.borrow().clone();
    let update_latency = update_hist.borrow().clone();
    YcsbResult {
        throughput: done_ops.get() as f64 / makespan.max(1e-9),
        read_latency,
        update_latency,
        collision_rate: collisions.get() as f64 / op_count as f64,
        ops: done_ops.get(),
    }
}

async fn retry_create(
    replica: &music::MusicReplica,
    key: &str,
    sim: &music_simnet::executor::Sim,
) -> Result<music::LockRef, ()> {
    for _ in 0..16 {
        if let Ok(r) = replica.create_lock_ref(key).await {
            return Ok(r);
        }
        sim.sleep(SimDuration::from_millis(5)).await;
    }
    Err(())
}

async fn run_read(
    replica: &music::MusicReplica,
    key: &str,
    lock_ref: music::LockRef,
    sim: &music_simnet::executor::Sim,
) -> bool {
    for _ in 0..16 {
        match replica.critical_get(key, lock_ref).await {
            Ok(_) => return true,
            Err(CriticalError::NotYetHolder) => sim.sleep(SimDuration::from_millis(1)).await,
            Err(_) => return false,
        }
    }
    false
}

async fn run_update(
    replica: &music::MusicReplica,
    key: &str,
    lock_ref: music::LockRef,
    value: &Bytes,
    sim: &music_simnet::executor::Sim,
) -> bool {
    for _ in 0..16 {
        match replica.critical_put(key, lock_ref, value.clone()).await {
            Ok(()) => return true,
            Err(CriticalError::NotYetHolder) => sim.sleep(SimDuration::from_millis(1)).await,
            Err(_) => return false,
        }
    }
    false
}

/// Virtual start-of-run marker for tests.
pub fn _start_marker() -> SimTime {
    SimTime::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ycsb_run_completes_with_collisions() {
        let res = run_ycsb(
            LatencyProfile::one_us(),
            Mode::Music,
            WorkloadKind::Ur,
            8,
            200,
            5,
        );
        assert!(res.ops >= 195, "nearly all ops complete, got {}", res.ops);
        assert!(res.throughput > 0.0);
        assert!(res.read_latency.count() > 0);
        assert!(res.update_latency.count() > 0);
        assert!(
            res.collision_rate > 0.0,
            "zipfian contention must produce some collisions"
        );
    }
}
