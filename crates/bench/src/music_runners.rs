//! MUSIC / MSCP / CassaEV experiment runners.

use std::cell::Cell;
use std::collections::VecDeque;
use std::rc::Rc;

use bytes::Bytes;

use music::{AcquireOutcome, MusicReplica, MusicSystem, OpKind, OpStats, PendingPut};
use music_simnet::metrics::Histogram;
use music_simnet::time::{SimDuration, SimTime};
use music_simnet::topology::LatencyProfile;
use music_workload::sweep::payload;

use crate::setup::{music_system, Mode};

/// Parameters of one saturating throughput run.
#[derive(Clone, Debug)]
pub struct ThroughputRun {
    /// WAN profile.
    pub profile: LatencyProfile,
    /// MUSIC or MSCP.
    pub mode: Mode,
    /// Store nodes per site (1 = the 3-node cluster, 3 = the 9-node one).
    pub nodes_per_site: usize,
    /// Closed-loop client tasks (spread round-robin over sites).
    pub threads: usize,
    /// criticalPuts per critical section.
    pub batch: usize,
    /// Value payload bytes.
    pub value_size: usize,
    /// Warm-up before counting.
    pub warmup: SimDuration,
    /// Measurement window.
    pub window: SimDuration,
    /// Determinism seed.
    pub seed: u64,
}

impl ThroughputRun {
    /// Defaults mirroring Fig. 4(a): batch 1, 10-byte values.
    pub fn new(profile: LatencyProfile, mode: Mode) -> Self {
        ThroughputRun {
            profile,
            mode,
            nodes_per_site: 1,
            threads: 384,
            batch: 1,
            value_size: 10,
            warmup: SimDuration::from_secs(2),
            window: SimDuration::from_secs(8),
            seed: 7,
        }
    }
}

fn count_if_in_window(counter: &Rc<Cell<u64>>, now: SimTime, lo: SimTime, hi: SimTime) {
    if now >= lo && now < hi {
        counter.set(counter.get() + 1);
    }
}

/// Issues one pipelined criticalPut at the replica level, retrying the
/// stale-local-view nack like the synchronous runners do. Returns `None`
/// on a terminal error (the thread should stop, like the sync path).
async fn issue_pipelined(
    sim: &music_simnet::executor::Sim,
    replica: &MusicReplica,
    key: &str,
    lock_ref: music::LockRef,
    value: Bytes,
) -> Option<PendingPut> {
    loop {
        match replica
            .critical_put_async(key, lock_ref, value.clone())
            .await
        {
            Ok(pp) => return Some(pp),
            Err(music::CriticalError::NotYetHolder) => {
                sim.sleep(SimDuration::from_millis(1)).await;
            }
            Err(_) => return None,
        }
    }
}

/// Peak write throughput (completed criticalPuts per second) of a MUSIC /
/// MSCP deployment under `run`'s saturating closed loop. Each thread works
/// a private key (non-overlapping ranges, §VIII-a).
pub fn music_write_throughput(run: &ThroughputRun) -> f64 {
    let sys = music_system(run.profile.clone(), run.mode, run.nodes_per_site, run.seed);
    let sim = sys.sim().clone();
    let replica_count = sys.replicas().len();
    let counter = Rc::new(Cell::new(0u64));
    let t_lo = SimTime::ZERO + run.warmup;
    let t_hi = t_lo + run.window;
    let value = Bytes::from(payload(run.value_size));

    if matches!(run.mode, Mode::MusicLeased(_)) {
        // The leased series goes through the client API (the lease cache
        // lives there): each thread re-enters its private key, so every
        // section after the first skips the lock protocol.
        for t in 0..run.threads {
            let client = sys.client_at_site(t % replica_count);
            let key = format!("bench-{t}");
            let counter = Rc::clone(&counter);
            let sim2 = sim.clone();
            let value = value.clone();
            let batch = run.batch;
            let stagger = SimDuration::from_micros((t as u64 * 7919) % 200_000);
            sim.spawn(async move {
                sim2.sleep(stagger).await;
                loop {
                    let Ok(cs) = client.enter(&key).await else {
                        sim2.sleep(SimDuration::from_millis(5)).await;
                        continue;
                    };
                    for _ in 0..batch {
                        match cs.put(value.clone()).await {
                            Ok(()) => count_if_in_window(&counter, sim2.now(), t_lo, t_hi),
                            Err(_) => return,
                        }
                    }
                    // A failed release abandons the ref to the failure
                    // detector; re-entry then takes the slow path.
                    let _ = cs.release().await;
                }
            });
        }
        sim.run_until(t_hi);
        return counter.get() as f64 / run.window.as_secs_f64();
    }

    for t in 0..run.threads {
        // Spread threads over every MUSIC replica (replicas scale with the
        // store cluster, as in Fig. 1's production deployment).
        let replica = sys.replicas()[t % replica_count].clone();
        let key = format!("bench-{t}");
        let counter = Rc::clone(&counter);
        let sim2 = sim.clone();
        let value = value.clone();
        let batch = run.batch;
        let window = run.mode.window();
        let stagger = SimDuration::from_micros((t as u64 * 7919) % 200_000);
        sim.spawn(async move {
            sim2.sleep(stagger).await;
            loop {
                let Ok(lock_ref) = replica.create_lock_ref(&key).await else {
                    continue;
                };
                loop {
                    match replica.acquire_lock(&key, lock_ref).await {
                        Ok(AcquireOutcome::Acquired) => break,
                        Ok(AcquireOutcome::NoLongerHolder) => return,
                        _ => sim2.sleep(SimDuration::from_millis(2)).await,
                    }
                }
                if window > 1 {
                    // Pipelined: keep up to `window` quorum writes in
                    // flight; each ack counts when it completes.
                    let mut pending: VecDeque<PendingPut> = VecDeque::new();
                    for _ in 0..batch {
                        let Some(pp) =
                            issue_pipelined(&sim2, &replica, &key, lock_ref, value.clone()).await
                        else {
                            return;
                        };
                        pending.push_back(pp);
                        if pending.len() >= window {
                            let oldest = pending.pop_front().expect("window is non-empty");
                            match oldest.wait().await {
                                Ok(()) => count_if_in_window(&counter, sim2.now(), t_lo, t_hi),
                                Err(_) => return,
                            }
                        }
                    }
                    // Flush before handing the lock off.
                    while let Some(pp) = pending.pop_front() {
                        match pp.wait().await {
                            Ok(()) => count_if_in_window(&counter, sim2.now(), t_lo, t_hi),
                            Err(_) => return,
                        }
                    }
                } else {
                    for _ in 0..batch {
                        loop {
                            match replica.critical_put(&key, lock_ref, value.clone()).await {
                                Ok(()) => {
                                    count_if_in_window(&counter, sim2.now(), t_lo, t_hi);
                                    break;
                                }
                                Err(music::CriticalError::NotYetHolder) => {
                                    sim2.sleep(SimDuration::from_millis(1)).await;
                                }
                                Err(_) => return,
                            }
                        }
                    }
                }
                // Retry the release until it sticks: an abandoned lock
                // reference would wedge this thread's key forever.
                while replica.release_lock(&key, lock_ref).await.is_err() {
                    sim2.sleep(SimDuration::from_millis(5)).await;
                }
            }
        });
    }
    sim.run_until(t_hi);
    counter.get() as f64 / run.window.as_secs_f64()
}

/// Peak eventual-write throughput (the `CassaEV` upper bound): closed-loop
/// lock-free `put`s.
pub fn cassa_ev_throughput(
    profile: LatencyProfile,
    threads: usize,
    value_size: usize,
    warmup: SimDuration,
    window: SimDuration,
    seed: u64,
) -> f64 {
    let sys = music_system(profile.clone(), Mode::Music, 1, seed);
    let sim = sys.sim().clone();
    let sites = profile.site_count();
    let counter = Rc::new(Cell::new(0u64));
    let t_lo = SimTime::ZERO + warmup;
    let t_hi = t_lo + window;
    let value = Bytes::from(payload(value_size));

    for t in 0..threads {
        let replica = sys.replica(t % sites).clone();
        let key = format!("ev-{t}");
        let counter = Rc::clone(&counter);
        let sim2 = sim.clone();
        let value = value.clone();
        let stagger = SimDuration::from_micros((t as u64 * 104729) % 5_000);
        sim.spawn(async move {
            sim2.sleep(stagger).await;
            loop {
                if replica.put(&key, value.clone()).await.is_ok() {
                    count_if_in_window(&counter, sim2.now(), t_lo, t_hi);
                }
            }
        });
    }
    sim.run_until(t_hi);
    counter.get() as f64 / window.as_secs_f64()
}

/// Result of a single-threaded latency run.
#[derive(Clone, Debug)]
pub struct LatencyResult {
    /// Latency of whole critical sections (enter → released).
    pub section: Histogram,
    /// Per-operation breakdown sink.
    pub ops: OpStats,
    /// Protocol counter snapshot for the run (messages, retries, grants…).
    pub counters: music_telemetry::MetricsSnapshot,
}

/// Mean-latency run: one client thread at site 0 executing `sections`
/// critical sections of `batch` puts each (§VIII-a "mean latency using a
/// single thread of operation").
pub fn music_cs_latency(
    profile: LatencyProfile,
    mode: Mode,
    batch: usize,
    value_size: usize,
    sections: usize,
    seed: u64,
) -> LatencyResult {
    let sys = music_system(profile, mode, 1, seed);
    let sim = sys.sim().clone();
    let replica = sys.replica(0).clone();
    let value = Bytes::from(payload(value_size));
    let window = mode.window();
    let section_hist = Rc::new(std::cell::RefCell::new(Histogram::new()));
    let hist2 = Rc::clone(&section_hist);
    let sim2 = sim.clone();
    let handle = sim.spawn(async move {
        for s in 0..sections {
            let key = format!("lat-{s}");
            let t0 = sim2.now();
            let lock_ref = loop {
                if let Ok(r) = replica.create_lock_ref(&key).await {
                    break r;
                }
            };
            loop {
                match replica.acquire_lock(&key, lock_ref).await {
                    Ok(AcquireOutcome::Acquired) => break,
                    _ => sim2.sleep(SimDuration::from_millis(2)).await,
                }
            }
            if window > 1 {
                let mut pending: VecDeque<PendingPut> = VecDeque::new();
                for _ in 0..batch {
                    let pp = issue_pipelined(&sim2, &replica, &key, lock_ref, value.clone())
                        .await
                        .expect("latency runs are loss-free");
                    pending.push_back(pp);
                    if pending.len() >= window {
                        let oldest = pending.pop_front().expect("window is non-empty");
                        oldest.wait().await.expect("latency runs are loss-free");
                    }
                }
                // Flush: the section is only done once every put is acked.
                while let Some(pp) = pending.pop_front() {
                    pp.wait().await.expect("latency runs are loss-free");
                }
            } else {
                for _ in 0..batch {
                    while replica
                        .critical_put(&key, lock_ref, value.clone())
                        .await
                        .is_err()
                    {
                        sim2.sleep(SimDuration::from_millis(1)).await;
                    }
                }
            }
            while replica.release_lock(&key, lock_ref).await.is_err() {}
            hist2.borrow_mut().record(sim2.now() - t0);
        }
    });
    sys.stats().reset();
    sim.run_until_complete(handle);
    let section = section_hist.borrow().clone();
    LatencyResult {
        section,
        ops: sys.stats().clone(),
        counters: sys.recorder().metrics(),
    }
}

/// Mean-latency run over *repeated* critical sections on one key by one
/// client — the lease fast path's target workload (a client re-entering
/// the section it just left). Goes through the client API because the
/// lease cache lives there; under a lease-less mode every re-entry pays
/// the full lock protocol, making this the control series.
///
/// The first section (always a cold, full-protocol entry) is excluded
/// from the histogram as warm-up.
pub fn music_reentry_latency(
    profile: LatencyProfile,
    mode: Mode,
    batch: usize,
    value_size: usize,
    sections: usize,
    seed: u64,
) -> LatencyResult {
    let sys = music_system(profile, mode, 1, seed);
    let sim = sys.sim().clone();
    let client = sys.client_at_site(0);
    let value = Bytes::from(payload(value_size));
    let section_hist = Rc::new(std::cell::RefCell::new(Histogram::new()));
    let hist2 = Rc::clone(&section_hist);
    let sim2 = sim.clone();
    let handle = sim.spawn(async move {
        for s in 0..sections {
            let t0 = sim2.now();
            let cs = client
                .enter("reentry")
                .await
                .expect("quiet benches never nack");
            for _ in 0..batch {
                cs.put(value.clone())
                    .await
                    .expect("quiet benches never nack");
            }
            cs.release().await.expect("quiet benches never nack");
            if s > 0 {
                hist2.borrow_mut().record(sim2.now() - t0);
            }
        }
        // Surrender any standing lease so the queue drains.
        let _ = client.relinquish("reentry").await;
    });
    sys.stats().reset();
    sim.run_until_complete(handle);
    let section = section_hist.borrow().clone();
    LatencyResult {
        section,
        ops: sys.stats().clone(),
        counters: sys.recorder().metrics(),
    }
}

/// Mean latency of the lock-free eventual put (CassaEV), single thread.
pub fn cassa_ev_latency(
    profile: LatencyProfile,
    value_size: usize,
    iterations: usize,
    seed: u64,
) -> Histogram {
    let sys = music_system(profile, Mode::Music, 1, seed);
    let sim = sys.sim().clone();
    let replica = sys.replica(0).clone();
    let value = Bytes::from(payload(value_size));
    let handle = sim.spawn(async move {
        for i in 0..iterations {
            let key = format!("evlat-{i}");
            while replica.put(&key, value.clone()).await.is_err() {}
        }
    });
    sys.stats().reset();
    sim.run_until_complete(handle);
    sys.stats().histogram(OpKind::EventualPut)
}

/// Convenience: a system + replica pair for ad-hoc measurement code.
pub fn single_replica(
    profile: LatencyProfile,
    mode: Mode,
    seed: u64,
) -> (MusicSystem, MusicReplica) {
    let sys = music_system(profile, mode, 1, seed);
    let replica = sys.replica(0).clone();
    (sys, replica)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_runner_matches_protocol_costs() {
        // 1Us, one section, one put: create(4 RTT) + grant(1 RTT) + put
        // (1 RTT) + release(4 RTT) ≈ 540ms, far below MSCP's put.
        let music = music_cs_latency(LatencyProfile::one_us(), Mode::Music, 1, 10, 3, 1);
        let mscp = music_cs_latency(LatencyProfile::one_us(), Mode::Mscp, 1, 10, 3, 1);
        let m = music.section.mean().as_millis_f64();
        let s = mscp.section.mean().as_millis_f64();
        assert!(m > 400.0 && m < 800.0, "MUSIC CS mean {m}ms");
        assert!(
            s > m + 100.0,
            "MSCP {s}ms must exceed MUSIC {m}ms by ~3 RTT"
        );
        assert_eq!(music.ops.count(OpKind::CriticalPut), 3);
        assert_eq!(mscp.ops.count(OpKind::MscpPut), 3);
    }

    #[test]
    fn pipelining_speeds_up_write_heavy_sections_by_3x() {
        // The ISSUE's acceptance bar: batch 100 on 1Us, Pipelined{16}
        // improves mean CS latency over Sync by at least 3x. Sync pays
        // ~100 sequential quorum RTTs; pipelined pays ~ceil(100/16).
        let sync = music_cs_latency(LatencyProfile::one_us(), Mode::Music, 100, 10, 1, 5);
        let piped = music_cs_latency(
            LatencyProfile::one_us(),
            Mode::MusicPipelined(16),
            100,
            10,
            1,
            5,
        );
        let s = sync.section.mean().as_millis_f64();
        let p = piped.section.mean().as_millis_f64();
        assert!(
            p * 3.0 < s,
            "pipelined {p}ms must be >=3x faster than sync {s}ms"
        );
        // Same number of acknowledged puts either way.
        assert_eq!(piped.ops.count(OpKind::CriticalPut), 100);
    }

    #[test]
    fn lease_fast_path_reenters_at_least_2x_faster() {
        // The ISSUE's acceptance bar: uncontended re-entry of an empty
        // critical section at 1Us under the lease fast path is >=2x
        // faster than WriteMode::Sync full entry. Sync re-entry pays
        // create(4 RTT) + grant(1 RTT) + release(4 RTT); the leased one
        // pays only the release LWT (4 RTT) — entry itself is local.
        let sync = music_reentry_latency(LatencyProfile::one_us(), Mode::Music, 0, 10, 4, 9);
        let leased = music_reentry_latency(
            LatencyProfile::one_us(),
            Mode::MusicLeased(60_000_000),
            0,
            10,
            4,
            9,
        );
        let s = sync.section.mean().as_millis_f64();
        let l = leased.section.mean().as_millis_f64();
        assert!(
            l * 2.0 <= s,
            "leased re-entry {l}ms must be >=2x faster than sync {s}ms"
        );
        // Every warm section took the fast path: exactly one cold
        // createLockRef, three leased re-entries.
        assert_eq!(leased.ops.count(OpKind::CreateLockRef), 1);
        assert_eq!(leased.ops.count(OpKind::LeaseReenter), 3);
        assert_eq!(sync.ops.count(OpKind::LeaseReenter), 0);
    }

    #[test]
    fn throughput_runner_produces_positive_rates() {
        let mut run = ThroughputRun::new(LatencyProfile::one_us(), Mode::Music);
        run.threads = 12;
        run.warmup = SimDuration::from_millis(500);
        run.window = SimDuration::from_secs(2);
        let tput = music_write_throughput(&run);
        assert!(tput > 0.0, "got {tput}");
    }
}
