//! ZooKeeper-baseline runners (Fig. 6): critical sections via the lock
//! recipe with Zab `setData` writes.

use std::cell::Cell;
use std::rc::Rc;

use bytes::Bytes;

use music_simnet::executor::Sim;
use music_simnet::net::Network;
use music_simnet::time::SimDuration;
use music_simnet::topology::{LatencyProfile, SiteId};
use music_workload::sweep::payload;
use music_zab::{CreateMode, ZkEnsemble, ZkLock};

use crate::setup::bench_net_config;

/// Builds a 3-server ensemble (one per site, leader at site 0) plus one
/// client node per thread.
fn build(
    profile: &LatencyProfile,
    threads: usize,
    seed: u64,
) -> (Sim, ZkEnsemble, Vec<music_simnet::net::NodeId>) {
    let sim = Sim::new();
    let net = Network::new(sim.clone(), profile.clone(), bench_net_config(), seed);
    let servers: Vec<_> = (0..profile.site_count() as u32)
        .map(|s| net.add_node(SiteId(s)))
        .collect();
    let clients: Vec<_> = (0..threads)
        .map(|t| net.add_node(SiteId((t % profile.site_count()) as u32)))
        .collect();
    let ens = ZkEnsemble::new(net, servers);
    (sim, ens, clients)
}

/// Peak `setData` throughput of critical sections over ZooKeeper: each
/// thread holds its own lock (non-overlapping keys) and performs `batch`
/// writes per section.
pub fn zk_write_throughput(
    profile: LatencyProfile,
    threads: usize,
    batch: usize,
    value_size: usize,
    warmup: SimDuration,
    window: SimDuration,
    seed: u64,
) -> f64 {
    let (sim, ens, clients) = build(&profile, threads, seed);
    let counter = Rc::new(Cell::new(0u64));
    let value = Bytes::from(payload(value_size));

    // Pre-create the data parents from one session.
    {
        let ens2 = ens.clone();
        let node = clients[0];
        let threads2 = threads;
        let h = sim.spawn(async move {
            let s = ens2.connect(node);
            let _ = s
                .create("/data", Bytes::new(), CreateMode::Persistent)
                .await;
            let _ = s
                .create("/locks", Bytes::new(), CreateMode::Persistent)
                .await;
            for t in 0..threads2 {
                let _ = s
                    .create(&format!("/data/t{t}"), Bytes::new(), CreateMode::Persistent)
                    .await;
            }
        });
        sim.run_until_complete(h);
    }

    // The measurement window starts only after the load phase: the
    // pre-creates consume non-trivial virtual time themselves.
    let t_lo = sim.now() + warmup;
    let t_hi = t_lo + window;

    for (t, &node) in clients.iter().enumerate() {
        let ens = ens.clone();
        let counter = Rc::clone(&counter);
        let sim2 = sim.clone();
        let value = value.clone();
        let stagger = SimDuration::from_micros((t as u64 * 7919) % 200_000);
        sim.spawn(async move {
            sim2.sleep(stagger).await;
            let session = ens.connect(node);
            let data_path = format!("/data/t{t}");
            let lock_path = format!("/locks/t{t}");
            loop {
                let mut lock = ZkLock::new(&session, lock_path.clone());
                if lock.acquire().await.is_err() {
                    continue;
                }
                for _ in 0..batch {
                    if session.set_data(&data_path, value.clone()).await.is_ok() {
                        let now = sim2.now();
                        if now >= t_lo && now < t_hi {
                            counter.set(counter.get() + 1);
                        }
                    }
                }
                while lock.release().await.is_err() {
                    sim2.sleep(SimDuration::from_millis(5)).await;
                }
            }
        });
    }
    sim.run_until(t_hi);
    counter.get() as f64 / window.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zk_throughput_positive_and_batch_amortizes() {
        let small = zk_write_throughput(
            LatencyProfile::one_us(),
            6,
            1,
            10,
            SimDuration::from_millis(500),
            SimDuration::from_secs(2),
            3,
        );
        let big = zk_write_throughput(
            LatencyProfile::one_us(),
            6,
            20,
            10,
            SimDuration::from_millis(500),
            SimDuration::from_secs(2),
            3,
        );
        assert!(small > 0.0);
        assert!(
            big > small,
            "larger batches amortize the lock recipe: {big} vs {small}"
        );
    }
}
