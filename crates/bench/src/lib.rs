//! # music-bench
//!
//! Shared experiment runners for the reproduction of the MUSIC evaluation
//! (§VIII and appendix §X-B). Each figure/table of the paper has a
//! `harness = false` bench target under `benches/` that drives the runners
//! in this crate and prints the same rows/series the paper reports,
//! alongside the paper's published numbers for comparison.
//!
//! Methodology mirrors §VIII-a, adapted to the simulator:
//!
//! * three logical sites with the Table II WAN latency profiles;
//! * one lock+data store node per site (RF = 3, one copy per site) unless
//!   a run scales the cluster (Fig. 4(b));
//! * throughput measured by saturating the deployment with many
//!   closed-loop client tasks on **non-overlapping keys**, counting
//!   completed writes in a virtual-time window after a warm-up;
//! * latency measured with a single client thread;
//! * no failures are injected during performance runs.
//!
//! Absolute numbers differ from the paper (its testbed is 8-core servers
//! running real Cassandra; ours is a calibrated discrete-event model) —
//! the reproduction targets are the *shapes*: who wins, by what factor,
//! and where the crossovers sit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdb_runners;
pub mod music_runners;
pub mod profile;
pub mod report;
pub mod setup;
pub mod ycsb_runner;
pub mod zk_runners;

pub use report::{print_header, print_row, print_table, ratio};
pub use setup::{bench_net_config, fast_mode, Mode};
