//! Deployment construction shared by every experiment.

use music::{MusicConfig, MusicSystem, MusicSystemBuilder, PutMode, WriteMode};
use music_simnet::net::NetConfig;
use music_simnet::time::SimDuration;
use music_simnet::topology::LatencyProfile;

/// Which system variant a MUSIC-side run exercises (§VIII-b).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Mode {
    /// MUSIC proper: critical puts are quorum writes.
    Music,
    /// MSCP: critical puts are sequentially consistent LWT writes.
    Mscp,
    /// MUSIC with pipelined critical puts: quorum writes issued with this
    /// in-flight window, flushed at release (the beyond-the-paper series).
    MusicPipelined(usize),
    /// MUSIC with lease-cached lock re-entry: clean releases retain a
    /// lease of this many microseconds, so repeated critical sections on
    /// the same key by the same client skip the lock protocol entirely
    /// (the second beyond-the-paper series).
    MusicLeased(u64),
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Music => write!(f, "MUSIC"),
            Mode::Mscp => write!(f, "MSCP"),
            Mode::MusicPipelined(w) => write!(f, "MUSIC-P{w}"),
            Mode::MusicLeased(_) => write!(f, "MUSIC-L"),
        }
    }
}

impl Mode {
    /// Both paper variants, paper order.
    pub const BOTH: [Mode; 2] = [Mode::Music, Mode::Mscp];

    /// The in-flight put window runners should use (1 = synchronous).
    pub fn window(self) -> usize {
        match self {
            Mode::MusicPipelined(w) => w.max(1),
            _ => 1,
        }
    }
}

/// The calibrated network cost model used by all experiments: 20 µs fixed
/// service per message and 1 GB/s node bandwidth. Calibration note: this
/// yields an eventual-write (CassaEV) ceiling in the tens of thousands of
/// op/s on 3 nodes, the same order as the Datastax figure the paper quotes
/// (§VIII-b); all comparisons are within-simulator.
pub fn bench_net_config() -> NetConfig {
    NetConfig {
        service_fixed: SimDuration::from_micros(20),
        bandwidth_bytes_per_sec: 1_000_000_000,
        loss: 0.0,
        jitter_frac: 0.0,
    }
}

/// Whether `MUSIC_BENCH_FAST=1` is set: shrinks windows/thread counts so
/// the whole suite runs in seconds (CI smoke mode).
pub fn fast_mode() -> bool {
    std::env::var("MUSIC_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// The benchmark `MusicConfig` for a mode: long `T` (performance runs
/// never expire critical sections), quorum or LWT puts.
pub fn bench_music_config(mode: Mode) -> MusicConfig {
    MusicConfig {
        put_mode: match mode {
            Mode::Music | Mode::MusicPipelined(_) | Mode::MusicLeased(_) => PutMode::Quorum,
            Mode::Mscp => PutMode::Lwt,
        },
        write_mode: match mode {
            Mode::MusicPipelined(w) => WriteMode::Pipelined { window: w },
            _ => WriteMode::Sync,
        },
        lease_window: match mode {
            Mode::MusicLeased(us) => Some(SimDuration::from_micros(us)),
            _ => None,
        },
        t_max: SimDuration::from_secs(3_600),
        ..MusicConfig::default()
    }
}

/// Builds the standard benchmark deployment.
pub fn music_system(
    profile: LatencyProfile,
    mode: Mode,
    store_nodes_per_site: usize,
    seed: u64,
) -> MusicSystem {
    music_system_with(
        profile,
        bench_music_config(mode),
        store_nodes_per_site,
        seed,
    )
}

/// Builds a deployment with a custom `MusicConfig` (e.g. the YCSB run's
/// aggressive failure detector). MUSIC replicas scale with the store
/// cluster, as in the paper's 9-replica / 9-node production deployment
/// (Fig. 1).
pub fn music_system_with(
    profile: LatencyProfile,
    music_cfg: MusicConfig,
    store_nodes_per_site: usize,
    seed: u64,
) -> MusicSystem {
    // Counting is zero-perturbation, so every figure can print its
    // counter table next to its latency rows (report::print_metrics).
    MusicSystemBuilder::new()
        .profile(profile)
        .net_config(bench_net_config())
        .music_config(music_cfg)
        .store_nodes_per_site(store_nodes_per_site)
        .replicas_per_site(store_nodes_per_site)
        .replication_factor(3)
        .seed(seed)
        .telemetry(music_telemetry::Recorder::metrics_only())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_display_like_the_paper() {
        assert_eq!(Mode::Music.to_string(), "MUSIC");
        assert_eq!(Mode::Mscp.to_string(), "MSCP");
        assert_eq!(Mode::MusicPipelined(16).to_string(), "MUSIC-P16");
        assert_eq!(Mode::Music.window(), 1);
        assert_eq!(Mode::MusicPipelined(16).window(), 16);
        assert_eq!(Mode::MusicPipelined(0).window(), 1);
        assert!(bench_music_config(Mode::MusicPipelined(8))
            .write_mode
            .is_pipelined());
        assert_eq!(Mode::MusicLeased(5_000_000).to_string(), "MUSIC-L");
        assert_eq!(
            bench_music_config(Mode::MusicLeased(5_000_000)).lease_window,
            Some(SimDuration::from_secs(5))
        );
        assert_eq!(bench_music_config(Mode::Music).lease_window, None);
    }

    #[test]
    fn system_builds_for_all_profiles() {
        for p in LatencyProfile::table_ii() {
            let sys = music_system(p, Mode::Music, 1, 1);
            assert_eq!(sys.replicas().len(), 3);
            assert_eq!(sys.store_nodes().len(), 3);
        }
    }
}
