//! Plain-text table output for the figure reproductions.

use music_telemetry::MetricsSnapshot;

/// Prints a figure header with the paper reference.
pub fn print_header(figure: &str, description: &str) {
    println!();
    println!("=== {figure} — {description} ===");
}

/// Prints a table: header row then data rows, column-aligned.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Prints one free-form row (for notes under a table).
pub fn print_row(note: &str) {
    println!("  {note}");
}

/// Prints a telemetry counter snapshot as a scope/name/value table
/// (skipped entirely when the snapshot is empty, i.e. recording was off).
pub fn print_metrics(snapshot: &MetricsSnapshot) {
    if snapshot.is_empty() {
        return;
    }
    let rows: Vec<Vec<String>> = snapshot
        .entries
        .iter()
        .map(|e| vec![e.scope.to_string(), e.name.to_string(), e.value.to_string()])
        .collect();
    print_table(&["scope", "counter", "value"], &rows);
}

/// `a / b` guarded against division by zero.
pub fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::NAN
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_guards_zero() {
        assert!(ratio(1.0, 0.0).is_nan());
        assert_eq!(ratio(6.0, 3.0), 2.0);
    }

    #[test]
    fn table_printing_does_not_panic() {
        print_header("Fig. X", "smoke");
        print_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        print_row("note");
    }
}
