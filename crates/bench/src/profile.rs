//! Seeded span-profiling workloads and the canonical `BENCH_*.json`
//! trajectory.
//!
//! `run_mode_profile` drives a fixed multi-site critical-section workload
//! through the client API with a *tracing* recorder installed, so every
//! section produces a full span tree (see `music_telemetry::span`). The
//! per-phase latency decomposition, the simulator's executor profile, the
//! protocol counters, and the per-site grant-wait fairness histograms are
//! then folded into one deterministic JSON artifact by [`bench_json`].
//!
//! Everything in the artifact is derived from **virtual time**, so two
//! replays of the same seed emit byte-identical files — which is what
//! makes the artifact a committable baseline. [`compare_benches`] is the
//! CI regression gate over two such files: it flattens every numeric leaf
//! and fails on relative deviation beyond a tolerance.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use bytes::Bytes;

use music::{MusicSystemBuilder, OpKind};
use music_simnet::executor::ExecutorProfile;
use music_simnet::time::SimDuration;
use music_simnet::topology::LatencyProfile;
use music_telemetry::span::{check, durations_by_phase};
use music_telemetry::{OnlineConfig, OnlineReport, Recorder, Scope, Span, SpanReport};
use music_workload::sweep::payload;

use crate::setup::{bench_music_config, bench_net_config, Mode};

/// Which write-mode series a profile run exercises.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ModeKey {
    /// Synchronous quorum criticalPuts (`Mode::Music`).
    Sync,
    /// Pipelined criticalPuts, window 8 (`Mode::MusicPipelined`).
    Pipelined,
    /// Lease-cached re-entry, 60 s window (`Mode::MusicLeased`).
    Leased,
}

impl ModeKey {
    /// All three series, canonical order.
    pub const ALL: [ModeKey; 3] = [ModeKey::Sync, ModeKey::Pipelined, ModeKey::Leased];

    /// The stable key this series uses in `BENCH_*.json`.
    pub fn name(self) -> &'static str {
        match self {
            ModeKey::Sync => "sync",
            ModeKey::Pipelined => "pipelined",
            ModeKey::Leased => "leased",
        }
    }

    /// Parses a `--mode` operand (`all` is handled by the caller).
    pub fn parse(s: &str) -> Option<ModeKey> {
        match s {
            "sync" => Some(ModeKey::Sync),
            "pipelined" => Some(ModeKey::Pipelined),
            "leased" => Some(ModeKey::Leased),
            _ => None,
        }
    }

    /// The benchmark [`Mode`] this series runs under.
    pub fn mode(self) -> Mode {
        match self {
            ModeKey::Sync => Mode::Music,
            ModeKey::Pipelined => Mode::MusicPipelined(8),
            ModeKey::Leased => Mode::MusicLeased(60_000_000),
        }
    }
}

/// Workload parameters of one profile run. The defaults are the canonical
/// `BENCH_baseline.json` workload; tests shrink them.
#[derive(Clone, Debug)]
pub struct ProfileOptions {
    /// Determinism seed.
    pub seed: u64,
    /// Client tasks per site (the first client of each site contends on
    /// one shared hot key; the rest work private keys).
    pub clients_per_site: usize,
    /// Critical sections per client.
    pub sections_per_client: usize,
    /// criticalPuts per section (one criticalGet rides along).
    pub puts_per_section: usize,
    /// Value payload bytes.
    pub value_size: usize,
    /// Mutant knob: extra per-message service latency, µs. Zero for real
    /// runs; the CI gate's deliberately-slowed run sets this and must be
    /// caught by [`compare_benches`].
    pub handicap_us: u64,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            seed: 7,
            clients_per_site: 2,
            sections_per_client: 3,
            puts_per_section: 4,
            value_size: 16,
            handicap_us: 0,
        }
    }
}

impl ProfileOptions {
    /// A reduced workload for fast tests (1 client/site, 2 sections).
    pub fn quick(seed: u64) -> Self {
        ProfileOptions {
            seed,
            clients_per_site: 1,
            sections_per_client: 2,
            puts_per_section: 2,
            ..ProfileOptions::default()
        }
    }
}

/// Order statistics of one phase's closed-span durations (virtual µs).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Closed spans observed.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile — the starvation tail far sites show first.
    pub p999_us: u64,
    /// Largest sample.
    pub max_us: u64,
}

impl PhaseStats {
    /// Nearest-rank order statistics over `samples`.
    pub fn from_samples(mut samples: Vec<u64>) -> PhaseStats {
        samples.sort_unstable();
        let pctl = |q: f64| -> u64 {
            if samples.is_empty() {
                return 0;
            }
            let rank = ((samples.len() as f64) * q).ceil() as usize;
            samples[rank.clamp(1, samples.len()) - 1]
        };
        PhaseStats {
            count: samples.len() as u64,
            p50_us: pctl(0.50),
            p95_us: pctl(0.95),
            p99_us: pctl(0.99),
            p999_us: pctl(0.999),
            max_us: samples.last().copied().unwrap_or(0),
        }
    }
}

/// Per-site lock-grant fairness: how long this site's clients waited from
/// section entry to grant.
#[derive(Clone, Debug)]
pub struct SiteGrantStats {
    /// Site index.
    pub site: u32,
    /// Sections this site's clients entered.
    pub entered: u64,
    /// Grant-wait distribution (virtual µs).
    pub wait: PhaseStats,
}

/// Everything one mode's profile run produced.
#[derive(Clone, Debug)]
pub struct ModeProfile {
    /// Which series.
    pub key: ModeKey,
    /// Final virtual time (µs) — the denominator of every rate.
    pub virtual_us: u64,
    /// Critical sections completed.
    pub sections: u64,
    /// Protocol operations completed (every [`OpKind`] except the
    /// whole-section aggregate).
    pub protocol_ops: u64,
    /// Simulator executor hot-path profile.
    pub executor: ExecutorProfile,
    /// Selected protocol counter totals, in fixed order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-phase latency decomposition, taxonomy order.
    pub phases: Vec<(&'static str, PhaseStats)>,
    /// Per-site grant-wait fairness rows.
    pub sites: Vec<SiteGrantStats>,
    /// Span well-formedness verdict.
    pub span_report: SpanReport,
    /// The raw span log (for Chrome-trace export and tests).
    pub spans: Vec<Span>,
    /// Streaming checker verdict, computed while the workload ran.
    pub online: OnlineReport,
    /// Whether the streaming ECF core matched the offline replay of the
    /// same event log exactly (it must).
    pub online_matches_offline: bool,
}

/// Counter totals every BENCH artifact carries, in emission order.
const BENCH_COUNTERS: [&str; 10] = [
    "lock_grants",
    "lease_grants",
    "lease_breaks",
    "sections_entered",
    "quorum_writes",
    "quorum_reads",
    "lwt_retries",
    "pipelined_puts",
    "cs_flushes",
    "msgs_delivered",
];

/// Runs the canonical profile workload for one mode and collects its
/// span, counter, and executor telemetry.
///
/// The workload is closed-form: `3 * clients_per_site` clients (the 1Us
/// profile has three sites), the first client of every site contending on
/// one shared `hot` key — that cross-site queue is what exposes per-site
/// grant-latency fairness — and the rest working private keys. Every
/// section does `puts_per_section` criticalPuts and one criticalGet.
pub fn run_mode_profile(key: ModeKey, opts: &ProfileOptions) -> ModeProfile {
    let profile = LatencyProfile::one_us();
    let sites = profile.site_count();
    let mut net = bench_net_config();
    net.service_fixed += SimDuration::from_micros(opts.handicap_us);
    let recorder = Recorder::tracing();
    recorder.attach_online(OnlineConfig::unbounded());
    let sys = MusicSystemBuilder::new()
        .profile(profile)
        .net_config(net)
        .music_config(bench_music_config(key.mode()))
        .store_nodes_per_site(1)
        .replicas_per_site(1)
        .replication_factor(3)
        .seed(opts.seed)
        .telemetry(recorder)
        .build();
    let sim = sys.sim().clone();
    let value = Bytes::from(payload(opts.value_size));

    let mut handles = Vec::new();
    for t in 0..sites * opts.clients_per_site {
        let site = t % sites;
        let key_name = if t < sites {
            "hot".to_string()
        } else {
            format!("key-{t}")
        };
        let client = sys.client_at_site(site);
        let sim2 = sim.clone();
        let value = value.clone();
        let sections = opts.sections_per_client;
        let puts = opts.puts_per_section;
        let leased = key == ModeKey::Leased;
        let stagger = SimDuration::from_micros((t as u64 * 7919) % 50_000);
        handles.push(sim.spawn(async move {
            sim2.sleep(stagger).await;
            for _ in 0..sections {
                let cs = loop {
                    match client.enter(&key_name).await {
                        Ok(cs) => break cs,
                        // Contended enqueue LWTs can nack transiently.
                        Err(_) => sim2.sleep(SimDuration::from_millis(5)).await,
                    }
                };
                for _ in 0..puts {
                    let mut acked = false;
                    for _ in 0..20 {
                        if cs.put(value.clone()).await.is_ok() {
                            acked = true;
                            break;
                        }
                        sim2.sleep(SimDuration::from_millis(1)).await;
                    }
                    assert!(acked, "profile put kept failing on a loss-free net");
                }
                let mut read = false;
                for _ in 0..20 {
                    if cs.get().await.is_ok() {
                        read = true;
                        break;
                    }
                    sim2.sleep(SimDuration::from_millis(1)).await;
                }
                assert!(read, "profile get kept failing on a loss-free net");
                cs.release().await.expect("loss-free release");
            }
            if leased {
                // Surrender the standing lease so the hot-key queue drains.
                let _ = client.relinquish(&key_name).await;
            }
        }));
    }
    let done = sim.spawn(async move {
        for h in handles {
            h.await;
        }
    });
    sim.run_until_complete(done);

    let snapshot = sys.recorder().metrics();
    let spans = sys.recorder().spans();
    let span_report = check(&spans);
    let online = sys
        .recorder()
        .online_report()
        .expect("streaming checker attached above");
    let online_matches_offline = online.ecf == music_telemetry::check(&sys.recorder().events());
    let phases = durations_by_phase(&spans)
        .into_iter()
        .map(|(name, samples)| (name, PhaseStats::from_samples(samples)))
        .collect();
    let site_rows = (0..sites as u32)
        .map(|s| SiteGrantStats {
            site: s,
            entered: snapshot.get(Scope::Site(s), "sections_entered"),
            wait: PhaseStats::from_samples(
                snapshot
                    .histogram(Scope::Site(s), "grant_wait_us")
                    .map(|h| h.samples.clone())
                    .unwrap_or_default(),
            ),
        })
        .collect();
    let stats = sys.stats();
    let protocol_ops = OpKind::ALL
        .iter()
        .filter(|k| **k != OpKind::CriticalSection)
        .map(|&k| stats.count(k) as u64)
        .sum();
    ModeProfile {
        key,
        virtual_us: sim.now().as_micros(),
        sections: stats.count(OpKind::CriticalSection) as u64,
        protocol_ops,
        executor: sim.profile(),
        counters: BENCH_COUNTERS
            .iter()
            .map(|&name| (name, total_by_name(&snapshot, name)))
            .collect(),
        phases,
        sites: site_rows,
        span_report,
        spans,
        online,
        online_matches_offline,
    }
}

/// `MetricsSnapshot::total` takes a `&'static str`; this walks rows by
/// value instead so the counter list above can stay one table.
fn total_by_name(snapshot: &music_telemetry::MetricsSnapshot, name: &str) -> u64 {
    snapshot
        .entries
        .iter()
        .filter(|e| e.name == name)
        .map(|e| e.value)
        .sum()
}

/// Per-virtual-second rate, rendered with fixed precision so the JSON is
/// byte-stable for fixed inputs.
fn rate(count: u64, virtual_us: u64) -> String {
    if virtual_us == 0 {
        return "0.000".into();
    }
    format!("{:.3}", count as f64 * 1_000_000.0 / virtual_us as f64)
}

/// Renders the canonical BENCH artifact for a set of mode runs.
///
/// Every figure is virtual-time-derived, so the output is byte-identical
/// across replays of the same seed — the property the committed baseline
/// and [`compare_benches`] rely on.
pub fn bench_json(name: &str, opts: &ProfileOptions, modes: &[ModeProfile]) -> String {
    let profile = LatencyProfile::one_us();
    let mut out = String::with_capacity(4096);
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"{name}\",");
    let _ = writeln!(out, "  \"seed\": {},", opts.seed);
    let _ = writeln!(out, "  \"profile\": \"{}\",", profile.name());
    out.push_str("  \"rtt_us\": {");
    let mut first = true;
    for a in 0..profile.site_count() {
        for b in (a + 1)..profile.site_count() {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(
                out,
                "\"{}-{}\": {}",
                profile.site_name(a),
                profile.site_name(b),
                profile.rtt(a, b).as_micros()
            );
        }
    }
    out.push_str("},\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"clients_per_site\": {}, \"sections_per_client\": {}, \
         \"puts_per_section\": {}, \"value_bytes\": {}}},",
        opts.clients_per_site, opts.sections_per_client, opts.puts_per_section, opts.value_size
    );
    out.push_str("  \"modes\": {\n");
    for (i, m) in modes.iter().enumerate() {
        let _ = writeln!(out, "    \"{}\": {{", m.key.name());
        let _ = writeln!(out, "      \"virtual_us\": {},", m.virtual_us);
        let _ = writeln!(out, "      \"sections\": {},", m.sections);
        let _ = writeln!(
            out,
            "      \"sections_per_vsec\": {},",
            rate(m.sections, m.virtual_us)
        );
        let _ = writeln!(out, "      \"protocol_ops\": {},", m.protocol_ops);
        let _ = writeln!(
            out,
            "      \"protocol_ops_per_vsec\": {},",
            rate(m.protocol_ops, m.virtual_us)
        );
        let _ = writeln!(out, "      \"sim_events\": {},", m.executor.events());
        let _ = writeln!(
            out,
            "      \"sim_events_per_vsec\": {},",
            rate(m.executor.events(), m.virtual_us)
        );
        let e = &m.executor;
        let _ = writeln!(
            out,
            "      \"executor\": {{\"tasks_spawned\": {}, \"task_polls\": {}, \
             \"timers_set\": {}, \"timers_fired\": {}, \"timers_cancelled\": {}, \
             \"max_ready_queue\": {}, \"max_timer_heap\": {}}},",
            e.tasks_spawned,
            e.task_polls,
            e.timers_set,
            e.timers_fired,
            e.timers_cancelled,
            e.max_ready_queue,
            e.max_timer_heap
        );
        out.push_str("      \"counters\": {");
        for (j, (cname, v)) in m.counters.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{cname}\": {v}");
        }
        out.push_str("},\n");
        out.push_str("      \"phases\": {\n");
        for (j, (pname, st)) in m.phases.iter().enumerate() {
            let _ = write!(
                out,
                "        \"{pname}\": {{\"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \
                 \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}}}",
                st.count, st.p50_us, st.p95_us, st.p99_us, st.p999_us, st.max_us
            );
            out.push_str(if j + 1 < m.phases.len() { ",\n" } else { "\n" });
        }
        out.push_str("      },\n");
        out.push_str("      \"site_grant_wait\": {\n");
        for (j, s) in m.sites.iter().enumerate() {
            let _ = write!(
                out,
                "        \"{}\": {{\"entered\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"p999_us\": {}, \"max_us\": {}}}",
                s.site, s.entered, s.wait.p50_us, s.wait.p99_us, s.wait.p999_us, s.wait.max_us
            );
            out.push_str(if j + 1 < m.sites.len() { ",\n" } else { "\n" });
        }
        out.push_str("      },\n");
        let _ = writeln!(
            out,
            "      \"spans\": {{\"total\": {}, \"unclosed\": {}, \"ok\": {}}},",
            m.span_report.spans,
            m.span_report.unclosed,
            m.span_report.ok()
        );
        let _ = writeln!(
            out,
            "      \"online\": {{\"ok\": {}, \"ecf_equal\": {}, \"queue_checked\": {}, \
             \"queue_violations\": {}}}",
            m.online.ok(),
            m.online_matches_offline,
            m.online.queue_checked,
            m.online.queue_violations.len()
        );
        out.push_str(if i + 1 < modes.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  }\n}\n");
    out
}

// ---------------------------------------------------------------------------
// The regression gate: flatten → compare.

/// Flattens every numeric leaf of a JSON document into `path → value`
/// (object keys joined with `.`, array elements indexed). A minimal
/// hand-rolled parser — the repo deliberately carries no JSON dependency.
pub fn flatten_numbers(src: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let mut out = BTreeMap::new();
    p.skip_ws();
    p.value("", &mut out)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => s.push(c as char),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            // \uXXXX — keep the raw escape; paths never
                            // need the decoded code point to stay unique.
                            s.push_str("\\u");
                            for _ in 0..4 {
                                self.pos += 1;
                                if let Some(h) = self.peek() {
                                    s.push(h as char);
                                }
                            }
                        }
                        other => return Err(format!("bad escape {other:?} at {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn value(&mut self, path: &str, out: &mut BTreeMap<String, f64>) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let sub = if path.is_empty() {
                        key
                    } else {
                        format!("{path}.{key}")
                    };
                    self.value(&sub, out)?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("bad object at {}: {other:?}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                let mut i = 0usize;
                loop {
                    self.value(&format!("{path}[{i}]"), out)?;
                    i += 1;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("bad array at {}: {other:?}", self.pos)),
                    }
                }
            }
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while self.peek().is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
                let v: f64 = text
                    .parse()
                    .map_err(|e| format!("bad number {text:?}: {e}"))?;
                out.insert(path.to_string(), v);
                Ok(())
            }
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

/// The CI regression gate: compares two BENCH artifacts and returns one
/// violation line per numeric leaf that is missing from `fresh` or
/// deviates from `baseline` by more than `tolerance` (a fraction:
/// `0.10` = ±10 % relative). Improvements fail too — they mean the
/// committed baseline is stale and should be regenerated.
pub fn compare_benches(baseline: &str, fresh: &str, tolerance: f64) -> Result<Vec<String>, String> {
    let base = flatten_numbers(baseline).map_err(|e| format!("baseline: {e}"))?;
    let new = flatten_numbers(fresh).map_err(|e| format!("fresh: {e}"))?;
    let mut violations = Vec::new();
    for (key, b) in &base {
        match new.get(key) {
            None => violations.push(format!("{key}: missing from fresh run (baseline {b})")),
            Some(f) => {
                let scale = b.abs().max(f.abs());
                if (b - f).abs() > tolerance * scale {
                    violations.push(format!(
                        "{key}: baseline {b} vs fresh {f} (> {:.1}% deviation)",
                        tolerance * 100.0
                    ));
                }
            }
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_stats_use_nearest_rank() {
        let st = PhaseStats::from_samples(vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(st.count, 10);
        assert_eq!(st.p50_us, 50);
        assert_eq!(st.p95_us, 100);
        assert_eq!(st.max_us, 100);
        assert_eq!(PhaseStats::from_samples(vec![]).count, 0);
    }

    #[test]
    fn flatten_walks_nested_objects_and_arrays() {
        let flat = flatten_numbers(
            "{\"a\": 1, \"b\": {\"c\": 2.5, \"d\": [3, {\"e\": -4}]}, \
             \"s\": \"text\", \"t\": true, \"n\": null}",
        )
        .unwrap();
        assert_eq!(flat["a"], 1.0);
        assert_eq!(flat["b.c"], 2.5);
        assert_eq!(flat["b.d[0]"], 3.0);
        assert_eq!(flat["b.d[1].e"], -4.0);
        assert_eq!(flat.len(), 4, "strings/bools/nulls are not leaves");
        assert!(flatten_numbers("{\"a\": }").is_err());
    }

    #[test]
    fn gate_accepts_within_tolerance_and_rejects_beyond() {
        let base = "{\"x\": 100, \"y\": 50}";
        assert!(compare_benches(base, "{\"x\": 105, \"y\": 50}", 0.10)
            .unwrap()
            .is_empty());
        let v = compare_benches(base, "{\"x\": 120, \"y\": 50}", 0.10).unwrap();
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("x:"));
        // A key vanishing from the fresh run is always a violation.
        let v = compare_benches(base, "{\"x\": 100}", 0.10).unwrap();
        assert!(v[0].contains("missing"));
        // Extra keys in the fresh run are fine (additive evolution).
        assert!(
            compare_benches(base, "{\"x\": 100, \"y\": 50, \"z\": 1}", 0.10)
                .unwrap()
                .is_empty()
        );
    }
}
