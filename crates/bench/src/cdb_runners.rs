//! CockroachDB-baseline runner (Fig. 7): the §X-B3 critical-section
//! pattern, each state update in its own exclusive transaction.

use bytes::Bytes;

use music_cdb::CdbCluster;
use music_simnet::executor::Sim;
use music_simnet::metrics::Histogram;
use music_simnet::net::Network;
use music_simnet::topology::{LatencyProfile, SiteId};
use music_workload::sweep::payload;

use crate::setup::bench_net_config;

/// Mean latency of one CockroachDB critical section (entry lock txn +
/// `batch` single-update exclusive txns + exit txn), single client thread
/// at site 0.
pub fn cdb_cs_latency(
    profile: LatencyProfile,
    batch: usize,
    value_size: usize,
    sections: usize,
    seed: u64,
) -> Histogram {
    let sim = Sim::new();
    let net = Network::new(sim.clone(), profile.clone(), bench_net_config(), seed);
    let servers: Vec<_> = (0..profile.site_count() as u32)
        .map(|s| net.add_node(SiteId(s)))
        .collect();
    let client_node = net.add_node(SiteId(0));
    let cluster = CdbCluster::new(net, servers);
    let value = Bytes::from(payload(value_size));

    let sim2 = sim.clone();
    let handle = sim.spawn(async move {
        let session = cluster.session(client_node);
        let mut hist = Histogram::new();
        for s in 0..sections {
            let lock_key = format!("lock-{s}");
            let state_key = format!("state-{s}");
            let t0 = sim2.now();
            // Entry: lock-acquisition transaction (§X-B3).
            let mut entry = session.transaction();
            let _ = entry.select(&lock_key).await.unwrap();
            entry
                .upsert(&lock_key, Bytes::from_static(b"ME"))
                .await
                .unwrap();
            entry.commit().await.unwrap();
            // Body: each state update in an exclusive transaction.
            for _ in 0..batch {
                let mut t = session.transaction();
                t.upsert(&state_key, value.clone()).await.unwrap();
                t.commit().await.unwrap();
            }
            // Exit: unlock transaction.
            let mut exit = session.transaction();
            exit.upsert(&lock_key, Bytes::from_static(b"NONE"))
                .await
                .unwrap();
            exit.commit().await.unwrap();
            hist.record(sim2.now() - t0);
        }
        hist
    });
    sim.run_until_complete(handle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdb_cs_latency_scales_linearly_with_batch() {
        let b1 = cdb_cs_latency(LatencyProfile::one_us(), 1, 10, 2, 1);
        let b10 = cdb_cs_latency(LatencyProfile::one_us(), 10, 10, 2, 1);
        let m1 = b1.mean().as_millis_f64();
        let m10 = b10.mean().as_millis_f64();
        // (1+2) txns vs (10+2) txns → roughly 4x.
        let r = m10 / m1;
        assert!((2.5..6.0).contains(&r), "scaling ratio {r} ({m1} → {m10})");
    }
}
