//! Fig. 4 — peak write throughput of CassaEV / MUSIC / MSCP.
//!
//! (a) across the Table II latency profiles (3-node cluster, batch 1,
//!     10-byte values);
//! (b) scaling the 1Us cluster from 3 to 9 nodes (RF = 3, sharded).
//!
//! Paper targets: CassaEV ≈ 41 K op/s; MUSIC ≈ 885 op/s (Fig. 6 caption);
//! MUSIC outperforms MSCP by ~30% on all profiles and ~30-36% across
//! cluster sizes, and both scale with nodes.

use music_bench::music_runners::{cassa_ev_throughput, music_write_throughput, ThroughputRun};
use music_bench::setup::{fast_mode, Mode};
use music_bench::{print_header, print_row, print_table, ratio};
use music_simnet::time::SimDuration;
use music_simnet::topology::LatencyProfile;

fn main() {
    let fast = fast_mode();
    let (threads, ev_threads, warmup, window) = if fast {
        (
            48,
            12,
            SimDuration::from_millis(500),
            SimDuration::from_secs(2),
        )
    } else {
        (
            384,
            48,
            SimDuration::from_secs(2),
            SimDuration::from_secs(8),
        )
    };

    print_header(
        "Fig. 4(a)",
        "peak write throughput (op/s) per latency profile, 3 nodes, batch 1, 10 B",
    );
    let mut rows = Vec::new();
    for profile in LatencyProfile::table_ii() {
        let ev = cassa_ev_throughput(profile.clone(), ev_threads, 10, warmup, window, 11);
        let mut run = ThroughputRun::new(profile.clone(), Mode::Music);
        run.threads = threads;
        run.warmup = warmup;
        run.window = window;
        let music = music_write_throughput(&run);
        run.mode = Mode::Mscp;
        let mscp = music_write_throughput(&run);
        rows.push(vec![
            profile.name().to_string(),
            format!("{ev:.0}"),
            format!("{music:.0}"),
            format!("{mscp:.0}"),
            format!("{:.2}x", ratio(music, mscp)),
        ]);
    }
    print_table(
        &["profile", "CassaEV", "MUSIC", "MSCP", "MUSIC/MSCP"],
        &rows,
    );
    print_row("paper: CassaEV ~41000; MUSIC ~885; MUSIC/MSCP ~1.3x on every profile");

    print_header(
        "Fig. 4(b)",
        "throughput scaling 3 -> 9 nodes (1Us, RF=3 sharded)",
    );
    // The scaling sweep needs the 3-node cluster to be genuinely
    // CPU-saturated or adding nodes cannot show: triple the offered load.
    let threads_b = threads * 3;
    let mut rows = Vec::new();
    for nodes_per_site in [1usize, 2, 3] {
        let mut run = ThroughputRun::new(LatencyProfile::one_us(), Mode::Music);
        run.nodes_per_site = nodes_per_site;
        run.threads = threads_b;
        run.warmup = warmup;
        run.window = window;
        let music = music_write_throughput(&run);
        run.mode = Mode::Mscp;
        let mscp = music_write_throughput(&run);
        rows.push(vec![
            format!("{}", nodes_per_site * 3),
            format!("{music:.0}"),
            format!("{mscp:.0}"),
            format!("{:.2}x", ratio(music, mscp)),
        ]);
    }
    print_table(&["nodes", "MUSIC", "MSCP", "MUSIC/MSCP"], &rows);
    print_row("paper: both scale with nodes; MUSIC leads MSCP by ~30-36%");
}
