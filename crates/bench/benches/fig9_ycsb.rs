//! Fig. 9 — YCSB workloads R / UR / U on 1Us, MUSIC vs. MSCP, with lock
//! collisions permitted (Zipfian key choice over a shared table).
//!
//! Paper targets: MUSIC leads MSCP by ~6-20% in throughput and ~0-20% in
//! latency; ~5.5% of the 10 000 operations contend for locks. On the
//! read-only workload the two systems coincide (reads are identical).

use music_bench::setup::{fast_mode, Mode};
use music_bench::ycsb_runner::run_ycsb;
use music_bench::{print_header, print_row, print_table, ratio};
use music_simnet::topology::LatencyProfile;
use music_workload::WorkloadKind;

fn main() {
    let fast = fast_mode();
    // The paper runs 10 000 ops; 2 000 keeps the simulation tractable
    // while leaving the collision rate and per-op structure unchanged
    // (both depend on thread count and key-space skew, not run length).
    let (threads, ops) = if fast { (8, 300) } else { (24, 2_000) };

    print_header(
        "Fig. 9",
        "YCSB R / UR / U on 1Us: throughput (op/s) and mean latency (ms)",
    );
    let mut rows = Vec::new();
    let mut collision_rates = Vec::new();
    for kind in WorkloadKind::ALL {
        let music = run_ycsb(
            LatencyProfile::one_us(),
            Mode::Music,
            kind,
            threads,
            ops,
            23,
        );
        let mscp = run_ycsb(LatencyProfile::one_us(), Mode::Mscp, kind, threads, ops, 23);
        let mean = |h: &music_simnet::metrics::Histogram| {
            if h.is_empty() {
                f64::NAN
            } else {
                h.mean().as_millis_f64()
            }
        };
        rows.push(vec![
            kind.to_string(),
            format!("{:.0}", music.throughput),
            format!("{:.0}", mscp.throughput),
            format!("{:.2}x", ratio(music.throughput, mscp.throughput)),
            format!("{:.0}", mean(&music.read_latency)),
            format!("{:.0}", mean(&mscp.read_latency)),
            format!("{:.0}", mean(&music.update_latency)),
            format!("{:.0}", mean(&mscp.update_latency)),
        ]);
        collision_rates.push(format!("{kind}: {:.1}%", music.collision_rate * 100.0));
    }
    print_table(
        &[
            "load",
            "MUSIC tput",
            "MSCP tput",
            "ratio",
            "M read",
            "S read",
            "M upd",
            "S upd",
        ],
        &rows,
    );
    print_row(&format!("lock collisions — {}", collision_rates.join(", ")));
    print_row("paper: MUSIC leads ~6-20% tput / ~0-20% latency; ~5.5% collisions");
}
