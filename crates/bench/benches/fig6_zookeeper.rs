//! Fig. 6 — MUSIC vs. MSCP vs. ZooKeeper peak write throughput on 1Us.
//!
//! (a) batch size sweep {10, 100, 1000} at 10-byte values: MUSIC's locking
//!     cost amortizes and its throughput roughly doubles; MUSIC beats
//!     ZooKeeper ~1.4-2.3x and MSCP ~2-3.5x.
//! (b) data size sweep {10B … 256KB} at batch 100: the gap over ZooKeeper
//!     widens (~2.45-17.17x) as every byte funnels through the single Zab
//!     leader while MUSIC's quorum writes spread across coordinators.

use music_bench::music_runners::{music_write_throughput, ThroughputRun};
use music_bench::setup::{fast_mode, Mode};
use music_bench::zk_runners::zk_write_throughput;
use music_bench::{print_header, print_row, print_table, ratio};
use music_simnet::time::SimDuration;
use music_simnet::topology::LatencyProfile;
use music_workload::sweep::{size_label, BATCH_SIZES, DATA_SIZES, DATA_SWEEP_BATCH};

fn cell(
    mode: Mode,
    threads: usize,
    batch: usize,
    vsize: usize,
    warmup: SimDuration,
    window: SimDuration,
) -> f64 {
    let mut run = ThroughputRun::new(LatencyProfile::one_us(), mode);
    run.threads = threads;
    run.batch = batch;
    run.value_size = vsize;
    run.warmup = warmup;
    run.window = window;
    music_write_throughput(&run)
}

fn main() {
    let fast = fast_mode();
    let (threads, warmup, window) = if fast {
        (24, SimDuration::from_millis(500), SimDuration::from_secs(2))
    } else {
        (192, SimDuration::from_secs(2), SimDuration::from_secs(8))
    };
    let batches: &[usize] = if fast { &[10, 100] } else { &BATCH_SIZES };
    let sizes: &[usize] = if fast { &[10, 16 * 1024] } else { &DATA_SIZES };

    print_header(
        "Fig. 6(a)",
        "write throughput (op/s) vs batch size, 1Us, 10 B values",
    );
    let mut rows = Vec::new();
    for &batch in batches {
        let music = cell(Mode::Music, threads, batch, 10, warmup, window);
        let piped = cell(Mode::MusicPipelined(16), threads, batch, 10, warmup, window);
        let leased = cell(
            Mode::MusicLeased(60_000_000),
            threads,
            batch,
            10,
            warmup,
            window,
        );
        let mscp = cell(Mode::Mscp, threads, batch, 10, warmup, window);
        let zk = zk_write_throughput(
            LatencyProfile::one_us(),
            threads,
            batch,
            10,
            warmup,
            window,
            13,
        );
        rows.push(vec![
            batch.to_string(),
            format!("{music:.0}"),
            format!("{piped:.0}"),
            format!("{leased:.0}"),
            format!("{mscp:.0}"),
            format!("{zk:.0}"),
            format!("{:.2}x", ratio(music, zk)),
            format!("{:.2}x", ratio(music, mscp)),
            format!("{:.2}x", ratio(leased, music)),
        ]);
    }
    print_table(
        &[
            "batch",
            "MUSIC",
            "MUSIC-P16",
            "MUSIC-L",
            "MSCP",
            "ZooKeeper",
            "MUSIC/ZK",
            "MUSIC/MSCP",
            "L/MUSIC",
        ],
        &rows,
    );
    print_row("paper: MUSIC/ZK ~1.4-2.3x, MUSIC/MSCP ~2-3.5x; MUSIC roughly doubles 10->1000");
    print_row("beyond the paper: MUSIC-P16 pipelines critical puts (window 16, flush on release)");
    print_row("beyond the paper: MUSIC-L retains a 60s lease per key, re-entering locally");

    print_header(
        "Fig. 6(b)",
        "write throughput (op/s) vs data size, 1Us, batch 100",
    );
    let mut rows = Vec::new();
    for &size in sizes {
        let music = cell(Mode::Music, threads, DATA_SWEEP_BATCH, size, warmup, window);
        let mscp = cell(Mode::Mscp, threads, DATA_SWEEP_BATCH, size, warmup, window);
        let zk = zk_write_throughput(
            LatencyProfile::one_us(),
            threads,
            DATA_SWEEP_BATCH,
            size,
            warmup,
            window,
            13,
        );
        rows.push(vec![
            size_label(size),
            format!("{music:.0}"),
            format!("{mscp:.0}"),
            format!("{zk:.0}"),
            format!("{:.2}x", ratio(music, zk)),
            format!("{:.2}x", ratio(music, mscp)),
        ]);
    }
    print_table(
        &[
            "size",
            "MUSIC",
            "MSCP",
            "ZooKeeper",
            "MUSIC/ZK",
            "MUSIC/MSCP",
        ],
        &rows,
    );
    print_row("paper: MUSIC/ZK widens to ~2.45-17.17x with data size");
}
