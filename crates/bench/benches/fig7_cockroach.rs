//! Fig. 7 — mean critical-section latency, MUSIC vs. a CockroachDB-style
//! critical section with identical guarantees (1Us, single thread).
//!
//! Every state update in the CockroachDB version runs in its own exclusive
//! transaction (2 consensus ops each, §X-B4), so its latency grows as
//! ~2·x·C while MUSIC's grows as 2C + (x+1)·Q — the paper measures MUSIC
//! ~2-4x faster across batch and data sizes.

use music_bench::cdb_runners::cdb_cs_latency;
use music_bench::music_runners::{music_cs_latency, music_reentry_latency};
use music_bench::setup::{fast_mode, Mode};
use music_bench::{print_header, print_row, print_table, ratio};
use music_simnet::topology::LatencyProfile;
use music_workload::sweep::{size_label, DATA_SIZES, DATA_SWEEP_BATCH};

fn main() {
    let fast = fast_mode();
    let sections = if fast { 2 } else { 5 };
    let batches: &[usize] = if fast { &[10, 100] } else { &[10, 100, 1000] };
    let sizes: &[usize] = if fast { &[10, 16 * 1024] } else { &DATA_SIZES };

    print_header(
        "Fig. 7(a)",
        "mean critical-section latency (s) vs batch size, 1Us, 10 B",
    );
    let mut rows = Vec::new();
    for &batch in batches {
        let music = music_cs_latency(
            LatencyProfile::one_us(),
            Mode::Music,
            batch,
            10,
            sections,
            9,
        )
        .section
        .mean()
        .as_secs_f64();
        let piped = music_cs_latency(
            LatencyProfile::one_us(),
            Mode::MusicPipelined(16),
            batch,
            10,
            sections,
            9,
        )
        .section
        .mean()
        .as_secs_f64();
        let leased = music_reentry_latency(
            LatencyProfile::one_us(),
            Mode::MusicLeased(600_000_000),
            batch,
            10,
            sections + 1,
            9,
        )
        .section
        .mean()
        .as_secs_f64();
        let cdb = cdb_cs_latency(LatencyProfile::one_us(), batch, 10, sections, 9)
            .mean()
            .as_secs_f64();
        rows.push(vec![
            batch.to_string(),
            format!("{music:.2}"),
            format!("{piped:.2}"),
            format!("{leased:.2}"),
            format!("{cdb:.2}"),
            format!("{:.2}x", ratio(cdb, music)),
            format!("{:.2}x", ratio(music, piped)),
            format!("{:.2}x", ratio(music, leased)),
        ]);
    }
    print_table(
        &[
            "batch",
            "MUSIC (s)",
            "MUSIC-P16 (s)",
            "MUSIC-L (s)",
            "CockroachDB (s)",
            "Cdb/MUSIC",
            "MUSIC/P16",
            "MUSIC/L",
        ],
        &rows,
    );
    print_row("paper: CockroachDB ~2-4x slower, widening with batch size");
    print_row("beyond the paper: MUSIC-P16 pipelines the batch's puts (flush on release)");
    print_row(
        "beyond the paper: MUSIC-L re-enters the same key under a 600s lease (warm sections)",
    );

    print_header(
        "Fig. 7(b)",
        "mean critical-section latency (s) vs data size, 1Us, batch 100",
    );
    let mut rows = Vec::new();
    for &size in sizes {
        let music = music_cs_latency(
            LatencyProfile::one_us(),
            Mode::Music,
            DATA_SWEEP_BATCH,
            size,
            sections,
            9,
        )
        .section
        .mean()
        .as_secs_f64();
        let cdb = cdb_cs_latency(
            LatencyProfile::one_us(),
            DATA_SWEEP_BATCH,
            size,
            sections,
            9,
        )
        .mean()
        .as_secs_f64();
        rows.push(vec![
            size_label(size),
            format!("{music:.2}"),
            format!("{cdb:.2}"),
            format!("{:.2}x", ratio(cdb, music)),
        ]);
    }
    print_table(
        &["size", "MUSIC (s)", "CockroachDB (s)", "Cdb/MUSIC"],
        &rows,
    );
    print_row("paper: ~2-4x across data sizes");
}
