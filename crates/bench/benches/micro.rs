//! Criterion micro-benchmarks of the building blocks: the `v2s` timestamp
//! mapping, Zipfian sampling, executor scheduling, and one simulated
//! quorum write.

use criterion::{criterion_group, criterion_main, Criterion};

use bytes::Bytes;
use music::{V2s, VectorTimestamp};
use music_lockstore::LockRef;
use music_quorumstore::{DataRow, Put, ReplicatedTable, TableConfig, WriteStamp};
use music_simnet::prelude::*;
use music_workload::Zipfian;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_v2s(c: &mut Criterion) {
    let v2s = V2s::new(SimDuration::from_secs(600));
    let ts = VectorTimestamp::new(LockRef::new(123_456), SimDuration::from_micros(777));
    c.bench_function("v2s/scalar", |b| {
        b.iter(|| std::hint::black_box(v2s.scalar(std::hint::black_box(ts))))
    });
}

fn bench_zipfian(c: &mut Criterion) {
    let zipf = Zipfian::new(1_000_000);
    let mut rng = SmallRng::seed_from_u64(1);
    c.bench_function("zipfian/sample_scrambled", |b| {
        b.iter(|| std::hint::black_box(zipf.sample_scrambled(&mut rng)))
    });
}

fn bench_executor(c: &mut Criterion) {
    c.bench_function("simnet/spawn_sleep_1000_tasks", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..1000u64 {
                let sim2 = sim.clone();
                sim.spawn(async move {
                    sim2.sleep(SimDuration::from_micros(i % 97)).await;
                });
            }
            sim.run();
        })
    });
}

fn bench_quorum_write(c: &mut Criterion) {
    c.bench_function("quorumstore/quorum_write_1us", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let net = Network::new(
                sim.clone(),
                LatencyProfile::one_us(),
                NetConfig::default(),
                1,
            );
            let nodes: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
            let client = net.add_node(SiteId(0));
            let table: ReplicatedTable<DataRow> =
                ReplicatedTable::new(net, nodes, 3, TableConfig::default());
            sim.block_on(async move {
                table
                    .write_quorum(
                        client,
                        "k",
                        Put::value(Bytes::from_static(b"v")),
                        WriteStamp::new(1),
                    )
                    .await
                    .unwrap();
            });
        })
    });
}

criterion_group!(
    benches,
    bench_v2s,
    bench_zipfian,
    bench_executor,
    bench_quorum_write
);
criterion_main!(benches);
