//! Fig. 8 — latency CDFs of MUSIC vs. MSCP critical sections on the 1l and
//! 1Us profiles (single client thread, batch 1).
//!
//! Paper target: near-identical CDFs on 1l; MUSIC ~30% to the left of MSCP
//! on the cross-region 1Us profile.

use music_bench::music_runners::music_cs_latency;
use music_bench::setup::{fast_mode, Mode};
use music_bench::{print_header, print_row, print_table};
use music_simnet::topology::LatencyProfile;

fn main() {
    let sections = if fast_mode() { 20 } else { 200 };
    for profile in [LatencyProfile::one_l(), LatencyProfile::one_us()] {
        print_header(
            "Fig. 8",
            &format!("critical-section latency CDF on {} (ms)", profile.name()),
        );
        let mut music = music_cs_latency(profile.clone(), Mode::Music, 1, 10, sections, 17).section;
        let mut mscp = music_cs_latency(profile.clone(), Mode::Mscp, 1, 10, sections, 17).section;
        let music_cdf = music.cdf(10);
        let mscp_cdf = mscp.cdf(10);
        let rows: Vec<Vec<String>> = music_cdf
            .iter()
            .zip(mscp_cdf.iter())
            .map(|((m_lat, frac), (s_lat, _))| {
                vec![
                    format!("{:.0}%", frac * 100.0),
                    format!("{:.1}", m_lat.as_millis_f64()),
                    format!("{:.1}", s_lat.as_millis_f64()),
                ]
            })
            .collect();
        print_table(&["percentile", "MUSIC", "MSCP"], &rows);
        let gap = 1.0 - music.mean().as_millis_f64() / mscp.mean().as_millis_f64();
        print_row(&format!(
            "mean gap: MUSIC is {:.0}% below MSCP (paper: ~0% on 1l, ~30% on 1Us)",
            gap * 100.0
        ));
    }
}
