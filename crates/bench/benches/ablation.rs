//! Ablations of MUSIC's design choices (beyond the paper's figures, but
//! quantifying the choices its §IV/§X-A1 argue for):
//!
//! 1. **Local vs. quorum peeks** — `acquireLock` polls a *local* lock-store
//!    replica precisely because waiting clients poll many times; polling a
//!    quorum instead floods the WAN and slows every waiter.
//! 2. **Lock amortization** — the per-write cost of a critical section
//!    collapses as more `criticalPut`s share one lock acquisition (the
//!    effect behind Fig. 6's batch sweep).
//! 3. **LWT retry back-off** — racing proposers must desynchronize;
//!    near-zero back-off livelocks the ballot race (why Cassandra, and this
//!    reproduction, randomize it).
//! 4. **Pipeline window** — how deep an in-flight put window pays off
//!    inside one critical section (the beyond-the-paper `WriteMode`
//!    series): returns diminish once the window covers the batch.
//! 5. **Lease window** — how long a release-time lease must be to cover
//!    a client's think time between sections (the beyond-the-paper
//!    `MUSIC-L` series): a window shorter than the idle gap expires
//!    before re-entry and every section pays the full lock protocol.

use bytes::Bytes;
use music::{OpKind, PeekMode};
use music_bench::music_runners::music_cs_latency;
use music_bench::setup::{bench_net_config, fast_mode, music_system, music_system_with, Mode};
use music_bench::{print_header, print_row, print_table, ratio};
use music_lockstore::LockStore;
use music_quorumstore::TableConfig;
use music_simnet::prelude::*;

/// Contended acquisition: `waiters` clients queue on one key; returns the
/// virtual makespan until everyone has held and released the lock, plus
/// total network messages.
fn contended_makespan(peek_mode: PeekMode, waiters: usize) -> (f64, u64) {
    let mut cfg = music_bench::setup::bench_music_config(Mode::Music);
    cfg.peek_mode = peek_mode;
    let sys = music_system_with(LatencyProfile::one_us(), cfg, 1, 17);
    let sim = sys.sim().clone();
    let mut handles = Vec::new();
    for w in 0..waiters {
        let client = sys.client_at_site(w % 3);
        handles.push(sim.spawn(async move {
            let cs = client.enter("hot").await.expect("enter");
            cs.put(Bytes::from_static(b"x")).await.expect("put");
            cs.release().await.expect("release");
        }));
    }
    for h in handles {
        sim.run_until_complete(h);
    }
    let (messages, _, _) = sys.net().stats();
    (sim.now().as_secs_f64(), messages)
}

/// Racing `createLockRef`s with a given LWT back-off base, bounded by a
/// virtual-time deadline (a livelocked race would otherwise never end —
/// which is the point of the ablation). Returns `(completions within the
/// deadline, client-level retries)`.
fn create_race_within(backoff: SimDuration, racers: usize, deadline: SimDuration) -> (u64, u64) {
    let sim = Sim::new();
    let net = Network::new(
        sim.clone(),
        LatencyProfile::one_us(),
        bench_net_config(),
        23,
    );
    let nodes: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
    let clients: Vec<_> = (0..racers)
        .map(|i| net.add_node(SiteId((i % 3) as u32)))
        .collect();
    let locks = LockStore::new(
        net,
        nodes,
        3,
        TableConfig {
            lwt_backoff: backoff,
            ..TableConfig::default()
        },
    );
    let retries = std::rc::Rc::new(std::cell::Cell::new(0u64));
    let completions = std::rc::Rc::new(std::cell::Cell::new(0u64));
    for &c in &clients {
        let locks = locks.clone();
        let retries = std::rc::Rc::clone(&retries);
        let completions = std::rc::Rc::clone(&completions);
        sim.spawn(async move {
            loop {
                if locks.generate_and_enqueue(c, "contested").await.is_ok() {
                    completions.set(completions.get() + 1);
                    break;
                }
                retries.set(retries.get() + 1);
            }
        });
    }
    sim.run_until(SimTime::ZERO + deadline);
    (completions.get(), retries.get())
}

/// Repeated one-put critical sections on one key with an idle gap between
/// them; a lease pays off only while it outlives the gap. Returns the mean
/// warm-section latency in ms and how many entries paid the full lock
/// protocol (`createLockRef` count; 1 = only the cold first entry).
fn lease_reentry_with_gap(window_us: u64, idle: SimDuration, sections: usize) -> (f64, u64) {
    let mode = if window_us == 0 {
        Mode::Music
    } else {
        Mode::MusicLeased(window_us)
    };
    let sys = music_system(LatencyProfile::one_us(), mode, 1, 41);
    let sim = sys.sim().clone();
    let client = sys.client_at_site(0);
    let total = std::rc::Rc::new(std::cell::Cell::new(0.0f64));
    let total2 = std::rc::Rc::clone(&total);
    let sim2 = sim.clone();
    let handle = sim.spawn(async move {
        for s in 0..sections {
            let t0 = sim2.now();
            let cs = client.enter("warm").await.expect("enter");
            cs.put(Bytes::from_static(b"x")).await.expect("put");
            cs.release().await.expect("release");
            if s > 0 {
                total2.set(total2.get() + (sim2.now() - t0).as_millis_f64());
            }
            sim2.sleep(idle).await;
        }
        let _ = client.relinquish("warm").await;
    });
    sim.run_until_complete(handle);
    let full = sys.stats().count(OpKind::CreateLockRef) as u64;
    (total.get() / (sections - 1) as f64, full)
}

fn main() {
    let fast = fast_mode();
    let waiters = if fast { 3 } else { 6 };

    print_header(
        "Ablation 1",
        "acquireLock peek mode under contention (1 hot key)",
    );
    let (local_s, local_msgs) = contended_makespan(PeekMode::Local, waiters);
    let (quorum_s, quorum_msgs) = contended_makespan(PeekMode::Quorum, waiters);
    print_table(
        &["peek", "makespan (s)", "messages"],
        &[
            vec![
                "local".into(),
                format!("{local_s:.2}"),
                local_msgs.to_string(),
            ],
            vec![
                "quorum".into(),
                format!("{quorum_s:.2}"),
                quorum_msgs.to_string(),
            ],
        ],
    );
    print_row(&format!(
        "quorum peeks send {:.1}x the messages and take {:.2}x as long",
        ratio(quorum_msgs as f64, local_msgs as f64),
        ratio(quorum_s, local_s)
    ));

    print_header(
        "Ablation 2",
        "lock amortization: effective per-write latency (ms) vs batch",
    );
    let sections = if fast { 2 } else { 5 };
    let mut rows = Vec::new();
    for batch in [1usize, 10, 100, 1000] {
        let cs = music_cs_latency(
            LatencyProfile::one_us(),
            Mode::Music,
            batch,
            10,
            sections,
            31,
        )
        .section
        .mean()
        .as_millis_f64();
        rows.push(vec![
            batch.to_string(),
            format!("{cs:.0}"),
            format!("{:.2}", cs / batch as f64),
        ]);
    }
    print_table(&["batch", "CS latency", "per-write"], &rows);
    print_row("per-write cost approaches one quorum RTT as locking amortizes");

    print_header(
        "Ablation 3",
        "LWT ballot-race back-off (6 racing createLockRefs, 60 s virtual budget)",
    );
    let mut rows = Vec::new();
    for (label, backoff) in [
        ("none", SimDuration::ZERO),
        ("5ms (default)", SimDuration::from_millis(5)),
        ("50ms", SimDuration::from_millis(50)),
    ] {
        let (completions, retries) = create_race_within(backoff, 6, SimDuration::from_secs(60));
        rows.push(vec![
            label.to_string(),
            format!("{completions}/6"),
            retries.to_string(),
        ]);
    }
    print_table(&["back-off", "completed", "client retries"], &rows);
    print_row("too little back-off livelocks the ballot race; too much wastes idle time");

    print_header(
        "Ablation 4",
        "pipeline window sweep: CS latency (s), batch 100, 1Us",
    );
    let mut rows = Vec::new();
    let mut sync_s = 0.0;
    for window in [1usize, 4, 16, 64] {
        let mode = if window == 1 {
            Mode::Music
        } else {
            Mode::MusicPipelined(window)
        };
        let cs = music_cs_latency(LatencyProfile::one_us(), mode, 100, 10, sections, 31)
            .section
            .mean()
            .as_secs_f64();
        if window == 1 {
            sync_s = cs;
        }
        rows.push(vec![
            window.to_string(),
            format!("{cs:.2}"),
            format!("{:.2}x", ratio(sync_s, cs)),
        ]);
    }
    print_table(&["window", "CS latency (s)", "speedup vs sync"], &rows);
    print_row("speedup saturates once the window covers the batch's quorum round-trips");

    print_header(
        "Ablation 5",
        "lease window vs. 1 s think time: warm re-entry latency, 1Us",
    );
    let warm_sections = if fast { 3 } else { 6 };
    let idle = SimDuration::from_secs(1);
    let mut rows = Vec::new();
    let mut off_ms = 0.0;
    for (label, window_us) in [
        ("off", 0u64),
        ("100ms", 100_000),
        ("10s", 10_000_000),
        ("60s", 60_000_000),
    ] {
        let (ms, full) = lease_reentry_with_gap(window_us, idle, warm_sections);
        if window_us == 0 {
            off_ms = ms;
        }
        rows.push(vec![
            label.to_string(),
            format!("{ms:.0}"),
            format!("{full}/{warm_sections}"),
            format!("{:.2}x", ratio(off_ms, ms)),
        ]);
    }
    print_table(
        &[
            "lease",
            "warm entry+CS (ms)",
            "full-protocol entries",
            "vs off",
        ],
        &rows,
    );
    print_row("a lease shorter than the think time is worse than none: every re-entry");
    print_row("falls back to the lock protocol AND must first break its own dead lease");
}
