//! Fig. 5 — mean operation latency.
//!
//! (a) CassaEV / MUSIC / MSCP mean latency per latency profile (single
//!     client thread);
//! (b) fine-grained breakdown of the MUSIC operations on 1Us:
//!     createLockRef, acquireLock peek ('L'), acquireLock grant ('Q'),
//!     criticalPut ('Q' / MSCP 'P'), releaseLock.
//!
//! Paper targets (1Us): createLockRef / releaseLock 219-230 ms (4 RTTs),
//! peek ~0.67 ms, grant ~55 ms, MUSIC criticalPut ~93 ms, MSCP
//! criticalPut ~270 ms — MUSIC ~30% below MSCP on cross-region profiles.

use music::OpKind;
use music_bench::music_runners::{cassa_ev_latency, music_cs_latency};
use music_bench::setup::{fast_mode, Mode};
use music_bench::{print_header, print_row, print_table};
use music_simnet::topology::LatencyProfile;

fn main() {
    let sections = if fast_mode() { 5 } else { 50 };

    print_header(
        "Fig. 5(a)",
        "mean write latency (ms), single thread, batch 1, 10 B",
    );
    let mut rows = Vec::new();
    for profile in LatencyProfile::table_ii() {
        let ev = cassa_ev_latency(profile.clone(), 10, sections, 5);
        let music = music_cs_latency(profile.clone(), Mode::Music, 1, 10, sections, 5);
        let mscp = music_cs_latency(profile.clone(), Mode::Mscp, 1, 10, sections, 5);
        rows.push(vec![
            profile.name().to_string(),
            format!("{:.2}", ev.mean().as_millis_f64()),
            format!("{:.1}", music.section.mean().as_millis_f64()),
            format!("{:.1}", mscp.section.mean().as_millis_f64()),
        ]);
    }
    print_table(&["profile", "CassaEV", "MUSIC CS", "MSCP CS"], &rows);
    print_row("paper: CassaEV flat across profiles; MUSIC ~30% below MSCP on 1Us/1UsEu");

    print_header("Fig. 5(b)", "operation latency breakdown on 1Us (ms)");
    let music = music_cs_latency(LatencyProfile::one_us(), Mode::Music, 1, 10, sections, 6);
    let mscp = music_cs_latency(LatencyProfile::one_us(), Mode::Mscp, 1, 10, sections, 6);
    let mean = |res: &music_bench::music_runners::LatencyResult, kind: OpKind| {
        let h = res.ops.histogram(kind);
        if h.is_empty() {
            f64::NAN
        } else {
            h.mean().as_millis_f64()
        }
    };
    let rows = vec![
        vec![
            "createLockRef (consensus)".to_string(),
            format!("{:.1}", mean(&music, OpKind::CreateLockRef)),
            "219-230".to_string(),
        ],
        vec![
            "acquireLock peek (L)".to_string(),
            format!("{:.2}", mean(&music, OpKind::AcquirePeek)),
            "~0.67".to_string(),
        ],
        vec![
            "acquireLock grant (Q)".to_string(),
            format!("{:.1}", mean(&music, OpKind::AcquireGrant)),
            "~55".to_string(),
        ],
        vec![
            "criticalPut MUSIC (Q)".to_string(),
            format!("{:.1}", mean(&music, OpKind::CriticalPut)),
            "~93".to_string(),
        ],
        vec![
            "criticalPut MSCP (P)".to_string(),
            format!("{:.1}", mean(&mscp, OpKind::MscpPut)),
            "~270".to_string(),
        ],
        vec![
            "releaseLock (consensus)".to_string(),
            format!("{:.1}", mean(&music, OpKind::ReleaseLock)),
            "219-230".to_string(),
        ],
    ];
    print_table(&["operation", "measured ms", "paper ms"], &rows);
    print_row("note: our criticalPut quorum reaches the nearest remote site (~54 ms);");
    print_row("the paper's driver-to-coordinator routing adds ~1 extra hop (~93 ms).");

    print_header("Fig. 5(b) counters", "protocol counters for the MUSIC run");
    music_bench::report::print_metrics(&music.counters);
}
