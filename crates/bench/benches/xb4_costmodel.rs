//! §X-B4 — the qualitative cost model, analytic and measured.
//!
//! MUSIC critical section with x criticalPuts: `2C + (x+1)·Q`
//! (createLockRef + releaseLock consensus; synchFlag read + x puts as
//! quorum ops). Spanner/CockroachDB-style per-update exclusive
//! transactions: `2·x·C`. With C ≈ 4 quorum RTTs (a Cassandra LWT) the
//! MUSIC solution approaches an 8x analytic advantage as x grows; with a
//! 1-RTT consensus (C = Q, the paper's generous assumption) the advantage
//! tends to 2x — "the MUSIC-based solution is nearly two times faster".

use music_bench::cdb_runners::cdb_cs_latency;
use music_bench::music_runners::music_cs_latency;
use music_bench::setup::{fast_mode, Mode};
use music_bench::{print_header, print_row, print_table, ratio};
use music_simnet::topology::LatencyProfile;

fn main() {
    let sections = if fast_mode() { 2 } else { 5 };
    // Unit costs on 1Us: Q = quorum RTT (Ohio–N.Cal), C_lwt = 4 Q,
    // C_raft = 1 Q (our CockroachDB baseline commits in one round).
    let q_ms = 53.79;
    let c_lwt = 4.0 * q_ms;
    let c_raft = 1.0 * q_ms;

    print_header(
        "§X-B4",
        "cost model: MUSIC 2C+(x+1)Q vs per-update exclusive txns 2xC (ms)",
    );
    let mut rows = Vec::new();
    for x in [1usize, 3, 10, 100] {
        let music_analytic = 2.0 * c_lwt + (x as f64 + 1.0) * q_ms;
        let spanner_analytic = 2.0 * x as f64 * c_raft;
        let music_measured =
            music_cs_latency(LatencyProfile::one_us(), Mode::Music, x, 10, sections, 29)
                .section
                .mean()
                .as_millis_f64();
        let cdb_measured = cdb_cs_latency(LatencyProfile::one_us(), x, 10, sections, 29)
            .mean()
            .as_millis_f64();
        rows.push(vec![
            x.to_string(),
            format!("{music_analytic:.0}"),
            format!("{spanner_analytic:.0}"),
            format!("{music_measured:.0}"),
            format!("{cdb_measured:.0}"),
            format!("{:.2}x", ratio(cdb_measured, music_measured)),
        ]);
    }
    print_table(
        &[
            "x",
            "MUSIC calc",
            "2xC calc",
            "MUSIC meas",
            "Cdb meas",
            "meas ratio",
        ],
        &rows,
    );
    print_row("paper: with C ~ Q the asymptotic advantage is ~2x; our Cdb commits in");
    print_row("2 Raft rounds + per-txn client hops, hence the measured ratio lands 2-4x.");
}
