//! Coordinator-side lock store operations.

use music_quorumstore::{ReplicatedTable, StoreError, TableApi, TableConfig, WriteStamp};
use music_runtime::Runtime;
use music_simnet::net::{Network, NodeId};
use music_simnet::time::SimTime;

use crate::partition::{LockEntry, LockMutation, LockPartition, LockRef};

/// Result of a lease-aware enqueue ([`LockStore::generate_and_enqueue_guarded`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EnqueueOutcome {
    /// A fresh reference was minted and enqueued (possibly breaking an
    /// authorized lease in the same LWT).
    Minted(LockRef),
    /// The queue head is an *unclaimed lease* the caller was not authorized
    /// to break: nothing was enqueued. The caller must force
    /// resynchronization (write the synch flag) and retry with this
    /// reference as the authorized break target.
    LeaseBlocked(LockRef),
}

/// Result of a combined (batched) enqueue
/// ([`LockStore::generate_and_enqueue_batch_guarded`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BatchOutcome {
    /// `count` consecutive references `first .. first + count` were minted
    /// and enqueued in one LWT round (possibly collecting an authorized
    /// lease in the same round). Waiter `i` of the round owns `first + i`.
    Minted {
        /// The round's first (lowest) minted reference.
        first: LockRef,
        /// How many references were minted.
        count: u32,
    },
    /// The queue head is an *unclaimed lease* the caller was not authorized
    /// to break: nothing was enqueued (same contract as
    /// [`EnqueueOutcome::LeaseBlocked`]).
    LeaseBlocked(LockRef),
}

/// The replicated lock store.
///
/// Generic over the backing table: the default `Tbl` is the in-simulation
/// [`ReplicatedTable`]; a remote deployment instantiates
/// `LockStore<RemoteTable<LockPartition, T>>` and the same coordinator
/// logic (the LWT decide closures below) runs over sockets.
///
/// One [`LockStore`] is shared by every MUSIC replica in the simulation;
/// operations take the calling replica's [`NodeId`] so messages originate
/// from (and queue at) the right place.
///
/// `generate_and_enqueue` is **idempotent per invocation**: every call
/// mints a unique client token included in the enqueue, and a retried LWT
/// whose first attempt actually committed recognizes its own row instead
/// of stranding an orphan reference in the queue (orphans still arise when
/// the *client* dies between calls — `forcedRelease` collects those,
/// §IV-B).
///
/// # Examples
///
/// ```
/// use music_lockstore::LockStore;
/// use music_quorumstore::TableConfig;
/// use music_simnet::prelude::*;
///
/// let sim = Sim::new();
/// let net = Network::new(sim.clone(), LatencyProfile::one_us(), NetConfig::default(), 1);
/// let nodes: Vec<_> = (0..3).map(|s| net.add_node(SiteId(s))).collect();
/// let me = net.add_node(SiteId(0));
/// let locks = LockStore::new(net, nodes, 3, TableConfig::default());
///
/// sim.block_on({
///     let locks = locks.clone();
///     async move {
///         let r1 = locks.generate_and_enqueue(me, "job").await.unwrap();
///         let r2 = locks.generate_and_enqueue(me, "job").await.unwrap();
///         assert!(r2 > r1);
///     }
/// });
/// ```
#[derive(Clone, Debug)]
pub struct LockStore<Tbl = ReplicatedTable<LockPartition>> {
    table: Tbl,
    next_token: std::rc::Rc<std::cell::Cell<u64>>,
}

impl LockStore<ReplicatedTable<LockPartition>> {
    /// Creates a lock store replicated over `nodes` with replication factor
    /// `rf` (simulated-network backing).
    pub fn new(net: Network, nodes: Vec<NodeId>, rf: usize, cfg: TableConfig) -> Self {
        Self::from_table(ReplicatedTable::new(net, nodes, rf, cfg))
    }
}

impl<Tbl: TableApi<LockPartition>> LockStore<Tbl> {
    /// Wraps an existing backing table (for sharing nodes with a data
    /// store in experiments, or for a remote deployment).
    pub fn from_table(table: Tbl) -> Self {
        LockStore {
            table,
            next_token: std::rc::Rc::new(std::cell::Cell::new(1)),
        }
    }

    /// The underlying table (instrumentation and tests).
    pub fn table(&self) -> &Tbl {
        &self.table
    }

    /// `lsGenerateAndEnqueue`: atomically mints the next per-key lock
    /// reference and enqueues it, in **one** LWT (the batch trick of §VI:
    /// increment the `guard` and insert the row in the same consensus
    /// write).
    ///
    /// Cost: one LWT = 4 WAN round trips.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] when a quorum is unreachable or the ballot
    /// race is lost repeatedly. Per §III-A the caller retries, possibly at
    /// another MUSIC replica; an enqueue that succeeded without the caller
    /// learning the reference leaves an *orphan* lockRef that
    /// `forcedRelease` eventually collects.
    pub async fn generate_and_enqueue(
        &self,
        coord: NodeId,
        key: &str,
    ) -> Result<LockRef, StoreError> {
        match self.enqueue_inner(coord, key, None, false).await? {
            EnqueueOutcome::Minted(r) => Ok(r),
            // Lease-oblivious enqueues never block: they queue up behind a
            // leased head like behind any other holder (safe — the lease
            // acts as a normal queue head until it expires or is claimed).
            EnqueueOutcome::LeaseBlocked(_) => unreachable!("lease-oblivious enqueue blocked"),
        }
    }

    /// Lease-aware `lsGenerateAndEnqueue`: like
    /// [`LockStore::generate_and_enqueue`], but when the queue head is an
    /// *unclaimed lease* the enqueue either **breaks** it (collects the
    /// leased row and enqueues the fresh reference in the same LWT — only
    /// when the caller passes that reference as `break_authorized`, proving
    /// it already forced resynchronization) or **declines** and reports
    /// [`EnqueueOutcome::LeaseBlocked`] so the caller can write the synch
    /// flag first. A *claimed* lease (start time set) is an active holder
    /// and is queued behind normally.
    ///
    /// Cost: one LWT = 4 WAN round trips (plus the caller's flag write on
    /// the blocked path).
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] exactly like
    /// [`LockStore::generate_and_enqueue`].
    pub async fn generate_and_enqueue_guarded(
        &self,
        coord: NodeId,
        key: &str,
        break_authorized: Option<LockRef>,
    ) -> Result<EnqueueOutcome, StoreError> {
        self.enqueue_inner(coord, key, break_authorized, true).await
    }

    async fn enqueue_inner(
        &self,
        coord: NodeId,
        key: &str,
        break_authorized: Option<LockRef>,
        lease_aware: bool,
    ) -> Result<EnqueueOutcome, StoreError> {
        // Unique per invocation (coordinator id in the high bits).
        let token = (u64::from(coord.0) << 40) | self.next_token.get();
        self.next_token.set(self.next_token.get() + 1);
        let minted = std::cell::Cell::new(LockRef::NONE);
        let blocked = std::cell::Cell::new(LockRef::NONE);
        let broke = std::cell::Cell::new(LockRef::NONE);
        self.table
            .lwt(coord, key, |snap, suggested| {
                // The closure may run once per ballot attempt: re-derive
                // every outcome cell from the latest snapshot.
                blocked.set(LockRef::NONE);
                broke.set(LockRef::NONE);
                if let Some(existing) = snap.find_token(token) {
                    // A previous ballot attempt of this very call already
                    // committed: adopt it rather than minting an orphan.
                    minted.set(existing);
                    return None;
                }
                if lease_aware {
                    if let Some((leased, _until)) = snap.lease_head() {
                        if break_authorized != Some(leased) {
                            minted.set(LockRef::NONE);
                            blocked.set(leased);
                            return None;
                        }
                        let next = LockRef::new(snap.guard() + 1);
                        minted.set(next);
                        broke.set(leased);
                        return Some((
                            LockMutation::BreakEnqueue {
                                broken: leased,
                                lock_ref: next,
                                token,
                            },
                            suggested,
                        ));
                    }
                }
                let next = LockRef::new(snap.guard() + 1);
                minted.set(next);
                Some((
                    LockMutation::Enqueue {
                        lock_ref: next,
                        token,
                        lease_until: None,
                    },
                    suggested,
                ))
            })
            .await?;
        if blocked.get() != LockRef::NONE {
            return Ok(EnqueueOutcome::LeaseBlocked(blocked.get()));
        }
        let rec = self.table.recorder();
        if rec.is_on() {
            if broke.get() != LockRef::NONE {
                rec.count(music_telemetry::Scope::Node(coord.0), "lease_breaks", 1);
            }
            if rec.is_tracing() {
                let rt = self.table.rt();
                if broke.get() != LockRef::NONE {
                    rec.record(
                        rt.now().as_micros(),
                        rt.trace(),
                        coord.0,
                        music_telemetry::EventKind::LeaseBreak {
                            key: key.to_string(),
                            lock_ref: broke.get().value(),
                        },
                    );
                }
                rec.record(
                    rt.now().as_micros(),
                    rt.trace(),
                    coord.0,
                    music_telemetry::EventKind::LockEnqueue {
                        key: key.to_string(),
                        lock_ref: minted.get().value(),
                    },
                );
            }
        }
        Ok(EnqueueOutcome::Minted(minted.get()))
    }

    /// Combined `lsGenerateAndEnqueue`: mints `count` consecutive
    /// references for `count` same-key waiters in **one** LWT round (the
    /// enqueue-combining optimization — under a flash crowd, `count`
    /// waiters pay one consensus write instead of `count`). References are
    /// assigned to waiters in arrival order, ascending, so the combined
    /// round preserves exactly the FIFO order a sequence of single
    /// enqueues would have produced.
    ///
    /// Lease-aware with the same contract as
    /// [`LockStore::generate_and_enqueue_guarded`]: an unclaimed leased
    /// head either blocks the round ([`BatchOutcome::LeaseBlocked`]) or,
    /// when `break_authorized` names it, is collected by the same LWT.
    /// When `lease_aware` is false the batch queues behind a leased head
    /// like behind any live holder (the bounded-break fallback).
    ///
    /// Cost: one LWT = 4 WAN round trips for the whole batch.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] exactly like
    /// [`LockStore::generate_and_enqueue`].
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub async fn generate_and_enqueue_batch_guarded(
        &self,
        coord: NodeId,
        key: &str,
        count: u32,
        break_authorized: Option<LockRef>,
        lease_aware: bool,
    ) -> Result<BatchOutcome, StoreError> {
        assert!(count > 0, "batch enqueue needs at least one waiter");
        // Consecutive tokens so waiter i of a retried (already committed)
        // round adopts its own row via `find_token(token + i)`.
        let token = (u64::from(coord.0) << 40) | self.next_token.get();
        self.next_token
            .set(self.next_token.get() + u64::from(count));
        let minted = std::cell::Cell::new(LockRef::NONE);
        let blocked = std::cell::Cell::new(LockRef::NONE);
        let broke = std::cell::Cell::new(LockRef::NONE);
        self.table
            .lwt(coord, key, |snap, suggested| {
                blocked.set(LockRef::NONE);
                broke.set(LockRef::NONE);
                if let Some(existing) = snap.find_token(token) {
                    // An earlier ballot of this very round already
                    // committed the whole batch: adopt it.
                    minted.set(existing);
                    return None;
                }
                let mut broken = LockRef::NONE;
                if let Some((leased, _until)) = snap.lease_head() {
                    if lease_aware {
                        if break_authorized != Some(leased) {
                            minted.set(LockRef::NONE);
                            blocked.set(leased);
                            return None;
                        }
                        broken = leased;
                        broke.set(leased);
                    }
                }
                let first = LockRef::new(snap.guard() + 1);
                minted.set(first);
                Some((
                    LockMutation::EnqueueBatch {
                        broken,
                        first,
                        count,
                        token,
                    },
                    suggested,
                ))
            })
            .await?;
        if blocked.get() != LockRef::NONE {
            return Ok(BatchOutcome::LeaseBlocked(blocked.get()));
        }
        let first = minted.get();
        let rec = self.table.recorder();
        if rec.is_on() {
            if broke.get() != LockRef::NONE {
                rec.count(music_telemetry::Scope::Node(coord.0), "lease_breaks", 1);
            }
            if count > 1 {
                rec.count(music_telemetry::Scope::Node(coord.0), "enqueue_combines", 1);
                rec.count(
                    music_telemetry::Scope::Node(coord.0),
                    "combined_refs",
                    u64::from(count),
                );
            }
            if rec.is_tracing() {
                let rt = self.table.rt();
                if broke.get() != LockRef::NONE {
                    rec.record(
                        rt.now().as_micros(),
                        rt.trace(),
                        coord.0,
                        music_telemetry::EventKind::LeaseBreak {
                            key: key.to_string(),
                            lock_ref: broke.get().value(),
                        },
                    );
                }
                rec.record(
                    rt.now().as_micros(),
                    rt.trace(),
                    coord.0,
                    music_telemetry::EventKind::EnqueueCombine {
                        key: key.to_string(),
                        first: first.value(),
                        count,
                    },
                );
                // One `lockEnqueue` per minted reference, in ascending
                // (queue) order — the stream the refinement checker sees is
                // indistinguishable from `count` well-ordered singles.
                for i in 0..u64::from(count) {
                    rec.record(
                        rt.now().as_micros(),
                        rt.trace(),
                        coord.0,
                        music_telemetry::EventKind::LockEnqueue {
                            key: key.to_string(),
                            lock_ref: first.value() + i,
                        },
                    );
                }
            }
        }
        Ok(BatchOutcome::Minted { first, count })
    }

    /// Current queue depth at the **closest** replica: a cheap, possibly
    /// stale contention signal (admission control reads this before paying
    /// the enqueue LWT).
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the local replica does not answer.
    pub async fn queue_depth_local(&self, coord: NodeId, key: &str) -> Result<usize, StoreError> {
        let snap = self.table.read_one(coord, key).await?;
        Ok(snap.queue().len())
    }

    /// The local view's queue position of `lock_ref` (0 = head), `None`
    /// if the reference is not in the local queue view. The same cheap
    /// intra-site peek as [`LockStore::queue_depth_local`]; the adaptive
    /// acquire loop uses it to pace its polls proportionally to how deep
    /// it is queued (tight near the head, stretched when deep).
    pub async fn queue_position_local(
        &self,
        coord: NodeId,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<Option<usize>, StoreError> {
        let snap = self.table.read_one(coord, key).await?;
        Ok(snap.queue().iter().position(|r| *r == lock_ref))
    }

    /// `releaseLock` with lease retention: dequeues `lock_ref`, and **iff**
    /// it was the only queued reference, pre-mints the successor reference
    /// as a lease (valid until `until`) in the same LWT. Returns the leased
    /// reference and deadline when one was granted, `None` when the queue
    /// had competitors (plain dequeue) or the reference was already
    /// collected (no-op).
    ///
    /// Cost: one LWT = 4 WAN round trips — the same release the caller
    /// already pays for; the lease rides along for free.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] when a quorum is unreachable or ballot
    /// contention persists.
    pub async fn release_with_lease(
        &self,
        coord: NodeId,
        key: &str,
        lock_ref: LockRef,
        until: SimTime,
    ) -> Result<Option<(LockRef, SimTime)>, StoreError> {
        let token = (u64::from(coord.0) << 40) | self.next_token.get();
        self.next_token.set(self.next_token.get() + 1);
        let granted = std::cell::Cell::new(LockRef::NONE);
        self.table
            .lwt(coord, key, |snap, suggested| {
                granted.set(LockRef::NONE);
                if let Some(existing) = snap.find_token(token) {
                    // An earlier ballot of this very call already committed
                    // the lease row: adopt it.
                    granted.set(existing);
                    return None;
                }
                if !snap.contains(lock_ref) {
                    return None; // already collected: no-op, no lease
                }
                if snap.queue() == [lock_ref] {
                    let next = LockRef::new(snap.guard() + 1);
                    granted.set(next);
                    Some((
                        LockMutation::ReleaseWithLease {
                            released: lock_ref,
                            next_ref: next,
                            token,
                            until,
                        },
                        suggested,
                    ))
                } else {
                    // Competitors queued behind: hand over normally.
                    Some((LockMutation::Dequeue { lock_ref }, suggested))
                }
            })
            .await?;
        if granted.get() == LockRef::NONE {
            return Ok(None);
        }
        let rec = self.table.recorder();
        if rec.is_on() {
            rec.count(music_telemetry::Scope::Node(coord.0), "lease_grants", 1);
            if rec.is_tracing() {
                let rt = self.table.rt();
                rec.record(
                    rt.now().as_micros(),
                    rt.trace(),
                    coord.0,
                    music_telemetry::EventKind::LeaseGrant {
                        key: key.to_string(),
                        lock_ref: granted.get().value(),
                        until_us: until.as_micros(),
                    },
                );
            }
        }
        Ok(Some((granted.get(), until)))
    }

    /// `lsPeek`: eventual read of the **closest** replica's queue head.
    /// Cheap (intra-site round trip), possibly stale — callers poll.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the local replica does not answer.
    pub async fn peek_local(
        &self,
        coord: NodeId,
        key: &str,
    ) -> Result<Option<(LockRef, LockEntry)>, StoreError> {
        let snap = self.table.read_one(coord, key).await?;
        Ok(snap.head())
    }

    /// Quorum peek: reconciled view of the queue head across a majority.
    /// Used by tests and by monitoring; the MUSIC algorithms themselves
    /// only need the cheap [`LockStore::peek_local`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if a majority does not answer.
    pub async fn peek_quorum(
        &self,
        coord: NodeId,
        key: &str,
    ) -> Result<Option<(LockRef, LockEntry)>, StoreError> {
        let snap = self.table.read_quorum(coord, key).await?;
        Ok(snap.head())
    }

    /// Queue heads of **all** keys at the closest replica, in one range
    /// scan (monitoring sweeps / failure detection). The view may be
    /// stale, exactly like a per-key [`LockStore::peek_local`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the replica does not answer.
    pub async fn scan_heads(
        &self,
        coord: NodeId,
    ) -> Result<Vec<(String, LockRef, LockEntry)>, StoreError> {
        let rows = self.table.scan_local(coord, |p| p.head()).await?;
        Ok(rows
            .into_iter()
            .filter_map(|(k, head)| head.map(|(r, e)| (k, r, e)))
            .collect())
    }

    /// Full queue (ascending) from the closest replica — `getAllKeys`-style
    /// monitoring helper.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the local replica does not answer.
    pub async fn queue_local(&self, coord: NodeId, key: &str) -> Result<Vec<LockRef>, StoreError> {
        let snap = self.table.read_one(coord, key).await?;
        Ok(snap.queue())
    }

    /// `lsDequeue`: removes `lock_ref` from the queue with an LWT delete.
    /// A no-op (still successful) if the reference is not queued.
    ///
    /// Cost: one LWT = 4 WAN round trips.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] when a quorum is unreachable or ballot
    /// contention persists.
    pub async fn dequeue(
        &self,
        coord: NodeId,
        key: &str,
        lock_ref: LockRef,
    ) -> Result<(), StoreError> {
        self.table
            .lwt(coord, key, |snap, suggested| {
                if snap.contains(lock_ref) {
                    Some((LockMutation::Dequeue { lock_ref }, suggested))
                } else {
                    None // already gone: no-op
                }
            })
            .await?;
        Ok(())
    }

    /// Records the critical-section start time for a just-granted
    /// reference (initialized by `acquireLock` when it returns true, §VI).
    ///
    /// A cheap CL=ONE write (acknowledged by the closest replica,
    /// propagated to the rest in the background): only the single lock
    /// holder writes this cell, it is advisory metadata for the duration
    /// bound `T`, and keeping it off the grant path preserves the paper's
    /// ~1-quorum-RTT `acquireLock` grant cost (Fig. 5(b)).
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if no replica acknowledges.
    pub async fn set_start_time(
        &self,
        coord: NodeId,
        key: &str,
        lock_ref: LockRef,
        at: SimTime,
    ) -> Result<(), StoreError> {
        // Stamped with the grant instant: unique per reference because a
        // reference is granted at most once.
        let stamp = WriteStamp::new(at.as_micros().max(1));
        self.table
            .write_one(
                coord,
                key,
                LockMutation::SetStartTime { lock_ref, at },
                stamp,
            )
            .await
    }
}
