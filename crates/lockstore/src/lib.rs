//! # music-lockstore
//!
//! The MUSIC **lock store**: a sequentially consistent, per-key queue of
//! *lock references*, replicated across sites (§III-B, §VI).
//!
//! Layout mirrors the paper's Cassandra lock table (Fig. 2): each key owns
//! a 64-bit `guard` counter whose increments mint per-key unique, increasing
//! lock references, plus one row per outstanding reference (with its
//! critical-section `startTime`). Every queue update flows through one
//! light-weight transaction (`music-quorumstore`'s 4-phase Paxos LWT), so
//! all replicas agree on the write order; `lsPeek` is an *eventual* read of
//! the closest replica — cheap enough to poll, and safe because MUSIC's
//! algorithms tolerate a stale peek (§IV-A).
//!
//! | Paper function | This crate |
//! |---|---|
//! | `lsGenerateAndEnqueue(key)` | [`LockStore::generate_and_enqueue`] |
//! | `lsPeek(key)` | [`LockStore::peek_local`] |
//! | `lsDequeue(key, lockRef)` | [`LockStore::dequeue`] |
//! | `startTime` column init | [`LockStore::set_start_time`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod partition;
pub mod store;

pub use partition::{LockEntry, LockMutation, LockPartition, LockRef};
pub use store::{BatchOutcome, EnqueueOutcome, LockStore};
